//! End-to-end tests for the sharded label store through the `labelgen`
//! binary: a cold run, a warm (fully cached) run, and a killed-and-resumed
//! run must all print the same corpus digest — bytewise-identical labels —
//! across thread counts, and a store full of corrupt records must be
//! detected, recomputed, and rewritten rather than served.
//!
//! Everything runs through subprocesses (`CARGO_BIN_EXE_labelgen`): the
//! work-stealing pool sizes itself from `MOSS_THREADS` once per process,
//! and an `--abort-after` exit is a process death by design.

use std::path::PathBuf;
use std::process::Command;

struct Run {
    stdout: String,
    stderr: String,
    code: i32,
}

impl Run {
    fn digest(&self) -> &str {
        self.stdout
            .lines()
            .find(|l| l.starts_with("labels digest:"))
            .unwrap_or_else(|| {
                panic!(
                    "no digest line in stdout:\n{}\n{}",
                    self.stdout, self.stderr
                )
            })
    }

    fn stat(&self, needle: &str) -> bool {
        self.stderr.contains(needle)
    }
}

/// Runs labelgen with a scrubbed environment plus `envs`.
fn labelgen(args: &[&str], envs: &[(&str, &str)]) -> Run {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_labelgen"));
    cmd.args(args);
    for k in [
        "MOSS_LABEL_STORE",
        "MOSS_FAULTS",
        "MOSS_THREADS",
        "MOSS_OBS",
    ] {
        cmd.env_remove(k);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn labelgen");
    Run {
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        code: out.status.code().unwrap_or(-1),
    }
}

fn temp_store(tag: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("moss_labelstore_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let s = dir.to_string_lossy().into_owned();
    (dir, s)
}

const QUICK: &[&str] = &[
    "--circuits",
    "10",
    "--shard-size",
    "4",
    "--cycles",
    "96",
    "--seed",
    "41",
];

#[test]
fn killed_and_resumed_run_is_bit_identical() {
    let (dir, store) = temp_store("resume");
    let (base_dir, base_store) = temp_store("resume_base");

    // Uninterrupted reference run on a fresh store.
    let reference = labelgen(&[QUICK, &["--store", &base_store]].concat(), &[]);
    assert_eq!(reference.code, 0, "{}", reference.stderr);

    // Kill mid-shard (7 of 10 circuits: shard 1 is cut short), then rerun.
    let killed = labelgen(
        &[QUICK, &["--store", &store, "--abort-after", "7"]].concat(),
        &[],
    );
    assert_eq!(killed.code, 3, "abort must exit 3: {}", killed.stderr);
    assert!(killed.stat("7 labeled"), "{}", killed.stderr);

    let resumed = labelgen(&[QUICK, &["--store", &store]].concat(), &[]);
    assert_eq!(resumed.code, 0, "{}", resumed.stderr);
    assert_eq!(
        resumed.digest(),
        reference.digest(),
        "resumed labels must match an uninterrupted run bytewise"
    );
    assert!(
        resumed.stat("(7 from cache)"),
        "resume must reuse the killed run's records: {}",
        resumed.stderr
    );

    // A further rerun is fully cached and still identical.
    let warm = labelgen(&[QUICK, &["--store", &store]].concat(), &[]);
    assert_eq!(warm.code, 0, "{}", warm.stderr);
    assert_eq!(warm.digest(), reference.digest());
    assert!(warm.stat("(10 from cache)"), "{}", warm.stderr);

    let _ = std::fs::remove_dir_all(dir);
    let _ = std::fs::remove_dir_all(base_dir);
}

#[test]
fn labels_identical_across_thread_counts_cold_and_warm() {
    let (dir1, store1) = temp_store("t1");
    let (dir4, store4) = temp_store("t4");

    let cold1 = labelgen(
        &[QUICK, &["--store", &store1]].concat(),
        &[("MOSS_THREADS", "1")],
    );
    let cold4 = labelgen(
        &[QUICK, &["--store", &store4]].concat(),
        &[("MOSS_THREADS", "4")],
    );
    assert_eq!(cold1.code, 0, "{}", cold1.stderr);
    assert_eq!(cold4.code, 0, "{}", cold4.stderr);
    assert_eq!(
        cold1.digest(),
        cold4.digest(),
        "cold labels must not depend on MOSS_THREADS"
    );

    // Cross-pollinated warm runs: records written by 1 thread served to 4
    // and vice versa.
    let warm4 = labelgen(
        &[QUICK, &["--store", &store1]].concat(),
        &[("MOSS_THREADS", "4")],
    );
    let warm1 = labelgen(
        &[QUICK, &["--store", &store4]].concat(),
        &[("MOSS_THREADS", "1")],
    );
    assert_eq!(warm4.code, 0, "{}", warm4.stderr);
    assert_eq!(warm1.code, 0, "{}", warm1.stderr);
    assert_eq!(warm4.digest(), cold1.digest());
    assert_eq!(warm1.digest(), cold1.digest());
    assert!(warm4.stat("(10 from cache)"), "{}", warm4.stderr);
    assert!(warm1.stat("(10 from cache)"), "{}", warm1.stderr);

    let _ = std::fs::remove_dir_all(dir1);
    let _ = std::fs::remove_dir_all(dir4);
}

#[test]
fn corrupt_records_are_recomputed_never_served() {
    let (dir, store) = temp_store("faults");

    // Cold run with every store write corrupted (truncations + bit flips
    // via the `store` fault site). The run itself must still succeed —
    // labels were computed before the records were poisoned.
    let poisoned = labelgen(
        &[QUICK, &["--store", &store]].concat(),
        &[("MOSS_FAULTS", "store:1.0")],
    );
    assert_eq!(poisoned.code, 0, "{}", poisoned.stderr);

    // Next run: every record fails its CRC, is evicted, recomputed, and
    // rewritten cleanly — same digest, zero served-from-cache.
    let recovered = labelgen(&[QUICK, &["--store", &store]].concat(), &[]);
    assert_eq!(recovered.code, 0, "{}", recovered.stderr);
    assert_eq!(recovered.digest(), poisoned.digest());
    assert!(recovered.stat("(0 from cache)"), "{}", recovered.stderr);
    assert!(recovered.stat("10 corrupt"), "{}", recovered.stderr);

    // Third run proves the rewrite took: full cache hits, same labels.
    let warm = labelgen(&[QUICK, &["--store", &store]].concat(), &[]);
    assert_eq!(warm.code, 0, "{}", warm.stderr);
    assert_eq!(warm.digest(), poisoned.digest());
    assert!(warm.stat("(10 from cache)"), "{}", warm.stderr);
    assert!(warm.stat("0 corrupt"), "{}", warm.stderr);

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn bench_mode_self_checks_and_writes_artifact() {
    let out = std::env::temp_dir().join(format!("BENCH_labels_it_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let run = labelgen(&["--bench", "--quick", "--out", out.to_str().unwrap()], &[]);
    assert_eq!(run.code, 0, "{}", run.stderr);
    let json = std::fs::read_to_string(&out).expect("bench artifact written");
    assert!(json.contains("\"labels/cold_per_circuit\""), "{json}");
    assert!(json.contains("\"labels/warm_per_circuit\""), "{json}");
    assert!(json.contains("\"circuits_per_sec\""), "{json}");
    let _ = std::fs::remove_file(&out);
}

#[test]
fn no_store_flag_still_labels() {
    let run = labelgen(&[QUICK, &["--no-store"]].concat(), &[]);
    assert_eq!(run.code, 0, "{}", run.stderr);
    assert!(run.stat("(0 from cache)"), "{}", run.stderr);

    // And matches the store-backed digest: the store must be transparent.
    let (dir, store) = temp_store("transparent");
    let stored = labelgen(&[QUICK, &["--store", &store]].concat(), &[]);
    assert_eq!(stored.code, 0, "{}", stored.stderr);
    assert_eq!(run.digest(), stored.digest());
    let _ = std::fs::remove_dir_all(dir);
}
