//! End-to-end integration tests: RTL → synthesis → ground truth → training
//! → evaluation, across the whole workspace.

use moss::MossVariant;
use moss_bench::pipeline::{
    averages, build_samples, build_world, evaluate_baseline, evaluate_variant, fep_of,
    train_baseline, train_variant, ExperimentConfig,
};
use moss_bench::run::RunManifest;
use moss_datagen::{random_module, SizeClass};

fn manifest() -> RunManifest {
    RunManifest::new("pipeline_integration")
}

fn tiny_world() -> moss_bench::pipeline::World {
    build_world(ExperimentConfig::tiny())
}

#[test]
fn full_moss_trains_end_to_end_and_beats_chance() {
    let world = tiny_world();
    let modules = vec![
        moss_datagen::max_selector(3, 6),
        moss_datagen::prbs_generator(2, 8),
        moss_datagen::shift_reg(6, 6),
    ];
    let mut m = manifest();
    let samples = build_samples(&world, &modules, &mut m).unwrap();
    let run = train_variant(&world, MossVariant::Full, &samples, &mut m).unwrap();
    // Pre-training must actually reduce the loss…
    let first = run.pretrain.first().expect("epochs ran").total;
    let last = run.pretrain.last().expect("epochs ran").total;
    assert!(last < first, "pretrain loss {first} → {last}");
    // …and alignment curves must exist for the full variant.
    assert!(!run.align.is_empty(), "alignment phase ran");
    // Scores are well-formed percentages.
    let scores = evaluate_variant(&run);
    assert_eq!(scores.len(), samples.len());
    for s in &scores {
        assert!((0.0..=100.0).contains(&s.atp), "{}: atp {}", s.name, s.atp);
        assert!((0.0..=100.0).contains(&s.trp), "{}: trp {}", s.name, s.trp);
        assert!((0.0..=100.0).contains(&s.pp), "{}: pp {}", s.name, s.pp);
    }
    let (_, _, pp) = averages(&scores).expect("non-empty score table");
    assert!(pp > 50.0, "power accuracy should be well above zero: {pp}");
}

#[test]
fn baseline_trains_and_evaluates() {
    let world = tiny_world();
    let modules = vec![
        moss_datagen::pipeline_reg(3, 6),
        moss_datagen::error_logger(4, 4),
    ];
    let mut m = manifest();
    let samples = build_samples(&world, &modules, &mut m).unwrap();
    let run = train_baseline(&world, &samples, &mut m).unwrap();
    let first = run.pretrain.first().expect("epochs ran").total;
    let last = run.pretrain.last().expect("epochs ran").total;
    assert!(last < first, "baseline loss {first} → {last}");
    let scores = evaluate_baseline(&run);
    assert_eq!(scores.len(), 2);
}

#[test]
fn alignment_lifts_fep_above_unaligned_variants() {
    let mut config = ExperimentConfig::tiny();
    config.train.pretrain_epochs = 6;
    config.train.align_epochs = 20;
    let world = build_world(config);
    let modules: Vec<_> = (0..5u64)
        .map(|s| random_module(0xfe9 + s, SizeClass::Small))
        .collect();
    let mut m = manifest();
    let samples = build_samples(&world, &modules, &mut m).unwrap();

    let full = train_variant(&world, MossVariant::Full, &samples, &mut m).unwrap();
    let fep_full = fep_of(&world, &full, &full.preps).expect("non-empty group");

    let unaligned = train_variant(&world, MossVariant::WithoutAlignment, &samples, &mut m).unwrap();
    let fep_unaligned = fep_of(&world, &unaligned, &unaligned.preps).expect("non-empty group");

    // The full model aligns its own training set essentially perfectly;
    // the unaligned variant's shared space is an untrained projection.
    assert!(
        fep_full > fep_unaligned,
        "alignment must help: full {fep_full}% vs unaligned {fep_unaligned}%"
    );
    assert!(fep_full >= 60.0, "aligned retrieval strong: {fep_full}%");
}

#[test]
fn every_variant_prepares_and_predicts_every_benchmark() {
    let world = tiny_world();
    // One representative benchmark, all four variants.
    let mut m = manifest();
    let samples = build_samples(&world, &[moss_datagen::max_selector(3, 6)], &mut m).unwrap();
    for variant in MossVariant::ALL {
        let run = train_variant(&world, variant, &samples, &mut m).unwrap();
        let pred = run.model.predict(&run.store, &run.preps[0]);
        assert_eq!(pred.toggle.len(), run.preps[0].cell_nodes.len());
        assert_eq!(pred.arrival_ns.len(), run.preps[0].dff_nodes.len());
        assert!(pred.power_nw.is_finite() && pred.power_nw > 0.0);
    }
}

#[test]
fn ground_truth_pipeline_is_deterministic_across_worlds() {
    let w1 = tiny_world();
    let w2 = tiny_world();
    let m = moss_datagen::prbs_generator(2, 8);
    let mut mf1 = manifest();
    let mut mf2 = manifest();
    let s1 = build_samples(&w1, std::slice::from_ref(&m), &mut mf1).unwrap();
    let s2 = build_samples(&w2, std::slice::from_ref(&m), &mut mf2).unwrap();
    assert_eq!(s1[0].labels.toggle, s2[0].labels.toggle);
    assert_eq!(s1[0].labels.total_power_nw, s2[0].labels.total_power_nw);
    assert_eq!(s1[0].rtl_text, s2[0].rtl_text);
}
