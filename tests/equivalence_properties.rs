//! Cross-crate property tests: the synthesis flow preserves RTL semantics.
//!
//! These are the load-bearing correctness checks for the whole ground-truth
//! pipeline — if synthesis, the gate-level simulator and the RTL
//! interpreter ever disagree, every label in the experiments is suspect.

use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};
use moss_rtl::{Interpreter, Module};
use moss_sim::{CompiledSim, GateSim};
use moss_synth::{lower_to_aig, synthesize, SynthOptions, SynthResult};

/// Cases per property. The former proptest config ran 12 random cases;
/// these are now deterministic draws from a seeded generator (the
/// workspace builds offline, so no proptest).
const CASES: u64 = 12;

/// Drives the RTL interpreter and the synthesized gate-level netlist with
/// identical random stimulus and asserts bit-exact outputs every cycle.
fn assert_equivalent(module: &Module, synth: &SynthResult, cycles: u32, seed: u64) {
    let mut interp = Interpreter::new(module).expect("valid module");
    let mut sim = GateSim::new(&synth.netlist).expect("valid netlist");
    for b in &synth.dffs {
        sim.set_state(b.dff, b.reset);
    }
    sim.full_settle();

    let inputs: Vec<_> = module
        .inputs()
        .into_iter()
        .map(|id| {
            let s = module.signal(id);
            let pins: Vec<_> = (0..s.width)
                .map(|i| {
                    let name = if s.width == 1 {
                        s.name.clone()
                    } else {
                        format!("{}[{i}]", s.name)
                    };
                    synth.netlist.find(&name).expect("input pin exists")
                })
                .collect();
            (id, s.width, pins)
        })
        .collect();
    let outputs: Vec<_> = module
        .outputs()
        .into_iter()
        .map(|id| {
            let s = module.signal(id);
            let pins: Vec<_> = (0..s.width)
                .map(|i| {
                    let name = if s.width == 1 {
                        s.name.clone()
                    } else {
                        format!("{}[{i}]", s.name)
                    };
                    synth.netlist.find(&name).expect("output pin exists")
                })
                .collect();
            (id, s.name.clone(), pins)
        })
        .collect();

    let mut state = seed | 1;
    for cycle in 0..cycles {
        let mut drive: Vec<(moss_rtl::SignalId, u64)> = Vec::new();
        for (id, width, pins) in &inputs {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let value = moss_rtl::mask(state, *width);
            drive.push((*id, value));
            for (i, &pin) in pins.iter().enumerate() {
                sim.set_input(pin, (value >> i) & 1 == 1);
            }
        }
        interp.step(&drive);
        sim.step();
        for (id, name, pins) in &outputs {
            let expect = interp.peek(*id);
            let mut got = 0u64;
            for (i, &pin) in pins.iter().enumerate() {
                got |= (sim.value(pin) as u64) << i;
            }
            assert_eq!(
                got, expect,
                "output '{name}' diverged at cycle {cycle}: netlist {got:#x} vs rtl {expect:#x} ({})",
                module.name()
            );
        }
    }
}

#[test]
fn benchmark_suite_synthesizes_equivalently() {
    for module in moss_datagen::benchmark_suite() {
        // The multiplier is large; fewer cycles keep the test fast.
        let cycles = if module.signals().len() > 40 { 16 } else { 64 };
        let synth = synthesize(&module, &SynthOptions::default()).expect("synthesizes");
        assert_equivalent(&module, &synth, cycles, 0xabcd);
    }
}

#[test]
fn all_mapping_variants_are_equivalent() {
    let module = moss_datagen::error_logger(6, 6);
    for seed in 0..6u64 {
        let synth = synthesize(&module, &SynthOptions::variant(seed)).expect("synthesizes");
        assert_equivalent(&module, &synth, 48, seed ^ 0x77);
    }
}

#[test]
fn aig_lowering_preserves_sequential_behaviour() {
    for seed in 0..5u64 {
        let module = moss_datagen::random_module(seed + 400, moss_datagen::SizeClass::Small);
        let synth = synthesize(&module, &SynthOptions::default()).expect("synthesizes");
        let aig = lower_to_aig(&synth.netlist).expect("lowers");
        // Remap the DFF bindings through the node map so the checker can
        // apply reset state to the AIG.
        let dffs: Vec<_> = synth
            .dffs
            .iter()
            .map(|b| {
                let mut nb = b.clone();
                nb.dff = aig.node_map[b.dff.index()].expect("dff mapped");
                nb
            })
            .collect();
        let wrapped = SynthResult {
            netlist: aig.netlist,
            dffs,
        };
        assert_equivalent(&module, &wrapped, 48, seed ^ 0x99);
    }
}

/// The regression case recorded in
/// `tests/equivalence_properties.proptest-regressions` (shrunk to
/// `seed = 206, variant = 0` by the original proptest run): kept as an
/// explicit test so the historical failure stays pinned.
#[test]
fn regression_seed_206_variant_0_synthesizes_equivalently() {
    let module = moss_datagen::random_module(206, moss_datagen::SizeClass::Small);
    let synth = synthesize(&module, &SynthOptions::variant(0)).expect("synthesizes");
    assert_equivalent(&module, &synth, 24, 206 ^ 0x5a5a);
}

/// Any valid random design synthesizes to a bit-exact netlist.
#[test]
fn random_designs_synthesize_equivalently() {
    let mut rng = StdRng::seed_from_u64(0x51f7);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..5000);
        let variant = rng.gen_range(0u64..8);
        let module = moss_datagen::random_module(seed, moss_datagen::SizeClass::Small);
        let synth = synthesize(&module, &SynthOptions::variant(variant)).expect("synthesizes");
        assert_equivalent(&module, &synth, 24, seed ^ 0x5a5a);
    }
}

/// Levelization of any synthesized netlist is a valid topological order.
#[test]
fn levelization_is_topological() {
    let mut rng = StdRng::seed_from_u64(0x1e51);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..5000);
        let module = moss_datagen::random_module(seed, moss_datagen::SizeClass::Small);
        let synth = synthesize(&module, &SynthOptions::default()).expect("synthesizes");
        let nl = &synth.netlist;
        let lv = moss_netlist::Levelization::of(nl).expect("acyclic");
        for id in nl.node_ids() {
            if nl.kind(id).is_combinational_cell() {
                for &f in nl.fanins(id) {
                    let flevel = if nl.kind(f).is_dff() { 0 } else { lv.level(f) };
                    assert!(flevel < lv.level(id), "fanin level must be lower");
                }
            }
        }
    }
}

/// Structural-Verilog round trips preserve structure and behaviour
/// (netlist-vs-netlist: identical positional stimulus, identical
/// positional outputs; port names are escaped by the writer).
#[test]
fn verilog_round_trip_preserves_behaviour() {
    let mut rng = StdRng::seed_from_u64(0x0e21);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..3000);
        let module = moss_datagen::random_module(seed, moss_datagen::SizeClass::Small);
        let synth = synthesize(&module, &SynthOptions::default()).expect("synthesizes");
        let text = moss_netlist::write_verilog(&synth.netlist);
        let parsed = moss_netlist::parse_verilog(&text).expect("parses back");
        // Node-exact: same PI/PO/cell counts, no placeholder leak, and the
        // same canonical hash (the serve-cache and label-store key).
        assert_eq!(parsed.cell_count(), synth.netlist.cell_count());
        assert_eq!(parsed.dff_count(), synth.netlist.dff_count());
        assert_eq!(
            parsed.primary_inputs().len(),
            synth.netlist.primary_inputs().len()
        );
        assert_eq!(
            moss_netlist::canonical_hash(&parsed),
            moss_netlist::canonical_hash(&synth.netlist)
        );

        let mut sim_a = GateSim::new(&synth.netlist).expect("valid");
        let mut sim_b = GateSim::new(&parsed).expect("valid");
        let ins_a = synth.netlist.primary_inputs();
        let ins_b = parsed.primary_inputs();
        let outs_a = synth.netlist.primary_outputs();
        let outs_b = parsed.primary_outputs();
        assert_eq!(outs_a.len(), outs_b.len());
        let mut state = seed | 1;
        for cycle in 0..16u32 {
            for (i, &pa) in ins_a.iter().enumerate() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let bit = state & 1 == 1;
                sim_a.set_input(pa, bit);
                sim_b.set_input(ins_b[i], bit);
            }
            sim_a.step();
            sim_b.step();
            for (j, (&oa, &ob)) in outs_a.iter().zip(&outs_b).enumerate() {
                assert_eq!(
                    sim_a.value(oa),
                    sim_b.value(ob),
                    "output {j} diverged at cycle {cycle}"
                );
            }
        }
    }
}

/// The RTL optimizer preserves behaviour end-to-end: optimized RTL,
/// synthesized, matches the *original* interpreter bit-for-bit.
#[test]
fn rtl_optimizer_preserves_synthesized_behaviour() {
    let mut rng = StdRng::seed_from_u64(0x0b70);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..4000);
        let module = moss_datagen::random_module(seed, moss_datagen::SizeClass::Small);
        let (optimized, _) = moss_rtl::optimize(&module);
        let synth = synthesize(&optimized, &SynthOptions::default()).expect("synthesizes");
        // Port names/order survive optimization, so the original module's
        // interpreter can be compared against the optimized netlist.
        assert_equivalent(&module, &synth, 20, seed ^ 0x0b7);
    }
}

/// The compiled engine honours RTL semantics end-to-end: synthesized
/// netlists driven through `CompiledSim` (lane 0) match the RTL interpreter
/// bit-for-bit, with every node cross-checked against `GateSim` each cycle.
#[test]
fn compiled_sim_matches_interpreter_and_gatesim() {
    let mut rng = StdRng::seed_from_u64(0xc512);
    for case in 0..CASES {
        let seed = rng.gen_range(0u64..4000);
        let module = moss_datagen::random_module(seed, moss_datagen::SizeClass::Small);
        let synth = synthesize(&module, &SynthOptions::default()).expect("synthesizes");
        let nl = &synth.netlist;

        let mut interp = Interpreter::new(&module).expect("valid module");
        let mut gate = GateSim::new(nl).expect("valid netlist");
        let mut compiled = CompiledSim::new(nl).expect("valid netlist");
        for b in &synth.dffs {
            gate.set_state(b.dff, b.reset);
            compiled.set_state(b.dff, b.reset);
        }
        gate.full_settle();
        compiled.settle();

        let inputs: Vec<_> = module
            .inputs()
            .into_iter()
            .map(|id| {
                let s = module.signal(id);
                let pins: Vec<_> = (0..s.width)
                    .map(|i| {
                        let name = if s.width == 1 {
                            s.name.clone()
                        } else {
                            format!("{}[{i}]", s.name)
                        };
                        nl.find(&name).expect("input pin exists")
                    })
                    .collect();
                (id, s.width, pins)
            })
            .collect();

        let mut state = (seed ^ 0xc0de) | 1;
        for cycle in 0..24u32 {
            let mut drive: Vec<(moss_rtl::SignalId, u64)> = Vec::new();
            for (id, width, pins) in &inputs {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let value = moss_rtl::mask(state, *width);
                drive.push((*id, value));
                for (i, &pin) in pins.iter().enumerate() {
                    let bit = (value >> i) & 1 == 1;
                    gate.set_input(pin, bit);
                    compiled.set_input(pin, bit);
                }
            }
            interp.step(&drive);
            gate.step();
            compiled.step();
            for id in nl.node_ids() {
                assert_eq!(
                    compiled.value(id),
                    gate.value(id),
                    "case {case}: node {id:?} diverged at cycle {cycle}"
                );
            }
        }
    }
}

/// Toggle rates stay in [0, 1]: no node toggles more than once per cycle.
#[test]
fn toggle_rates_are_bounded() {
    let mut rng = StdRng::seed_from_u64(0x706c);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..2000);
        let module = moss_datagen::random_module(seed, moss_datagen::SizeClass::Small);
        let synth = synthesize(&module, &SynthOptions::default()).expect("synthesizes");
        let resets: Vec<_> = synth.dffs.iter().map(|b| (b.dff, b.reset)).collect();
        let report = moss_sim::toggle_rates(&synth.netlist, &resets, 64, seed).expect("simulates");
        for id in synth.netlist.node_ids() {
            let r = report.rate(id);
            assert!((0.0..=1.0).contains(&r), "rate {r} out of range");
        }
    }
}
