//! End-to-end ingestion: the committed b01-class benchmark fixture flows
//! text → typed parse → store-keyed labeling, and the whole pipeline is
//! bit-identical between a cold run and a warm (store-served) run — the
//! same guarantee the synthesis pipeline has, now for netlists that
//! arrive as files.

use moss::{bindings_from_design, LabeledCircuit, SampleOptions};
use moss_netlist::{canonical_hash, parse_verilog_design, CellLibrary};
use moss_store::LabelStore;

const B01_NET: &str = include_str!("../crates/netlist/tests/fixtures/b01_net.v");

fn quick_options() -> SampleOptions {
    SampleOptions {
        sim_cycles: 512,
        ..SampleOptions::default()
    }
}

/// A collision-free temp store rooted under the target dir.
fn temp_store(tag: &str) -> LabelStore {
    let dir = std::env::temp_dir().join(format!("moss-ingestion-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    LabelStore::open(&dir).expect("open temp store")
}

#[test]
fn fixture_labels_are_bit_identical_cold_vs_warm() {
    let lib = CellLibrary::default();
    let options = quick_options();
    let store = temp_store("coldwarm");

    let cold = LabeledCircuit::from_verilog(B01_NET, &lib, &options, Some(&store))
        .expect("cold ingestion");
    assert!(!cold.cache_hit, "first run must compute");
    assert_eq!(cold.netlist.name(), "b01_net");
    assert_eq!(cold.bindings.len(), 5, "b01 has five state flops");

    let warm = LabeledCircuit::from_verilog(B01_NET, &lib, &options, Some(&store))
        .expect("warm ingestion");
    assert!(warm.cache_hit, "second run must be served from the store");
    assert_eq!(cold.key, warm.key, "store key must be stable");

    // Bit-identical labels, not approximately-equal ones: the store
    // round-trip and the recompute path may not disagree in any bit.
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&cold.labels.toggle), bits(&warm.labels.toggle));
    assert_eq!(
        bits(&cold.labels.probability),
        bits(&warm.labels.probability)
    );
    assert_eq!(bits(&cold.labels.dynamic_nw), bits(&warm.labels.dynamic_nw));
    assert_eq!(cold.labels.arrival_ns.len(), 5);
    for (a, b) in cold.labels.arrival_ns.iter().zip(&warm.labels.arrival_ns) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1.to_bits(), b.1.to_bits());
    }
    assert_eq!(
        cold.labels.total_power_nw.to_bits(),
        warm.labels.total_power_nw.to_bits()
    );
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn fixture_reset_metadata_reaches_the_bindings() {
    let design = parse_verilog_design(B01_NET).expect("parse fixture");
    assert_eq!(design.dffs.len(), 5);
    let bindings = bindings_from_design(&design);
    for (dff, b) in design.dffs.iter().zip(&bindings) {
        assert_eq!(dff.clock.as_deref(), Some("clock"));
        assert!(!b.reset, "active-low RN flops clear to 0");
        assert_eq!(
            design.netlist.node(b.dff).name(),
            b.register_name,
            "register name must be the DFF instance name"
        );
    }
}

#[test]
fn reingesting_the_written_fixture_hits_the_same_store_entry() {
    // write_verilog(parse_verilog(fixture)) is a different *text* but the
    // same circuit: it must land on the same store key and be served warm.
    let lib = CellLibrary::default();
    let options = quick_options();
    let store = temp_store("rewrite");

    let original =
        LabeledCircuit::from_verilog(B01_NET, &lib, &options, Some(&store)).expect("ingest");
    let rewritten = moss_netlist::write_verilog(&original.netlist);
    assert_ne!(rewritten, B01_NET, "the writer normalizes formatting");

    let again = LabeledCircuit::from_verilog(&rewritten, &lib, &options, Some(&store))
        .expect("re-ingest written form");
    assert!(again.cache_hit, "identical circuit must hit the store");
    assert_eq!(original.key, again.key);
    assert_eq!(
        canonical_hash(&original.netlist),
        canonical_hash(&again.netlist)
    );
    assert_eq!(
        original.labels.total_power_nw.to_bits(),
        again.labels.total_power_nw.to_bits()
    );
    let _ = std::fs::remove_dir_all(store.root());
}
