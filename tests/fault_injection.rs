//! Rehearsed-failure integration tests: with fault sites armed, the
//! pipeline degrades per circuit (skip + manifest record) instead of
//! panicking, and the failure budget turns excessive degradation into a
//! clean abort.
//!
//! The fault override is process-global, so every scenario runs inside one
//! `#[test]` — the default test harness would race overrides across
//! threads.

use moss_bench::pipeline::{build_samples, build_world, ExperimentConfig};
use moss_bench::run::{PipelineError, RunManifest};
use moss_faults::{fire, key, override_for_tests, Site};
use moss_rtl::Module;

fn modules() -> Vec<Module> {
    vec![
        moss_datagen::max_selector(3, 6),
        moss_datagen::prbs_generator(2, 8),
        moss_datagen::shift_reg(6, 6),
        moss_datagen::pipeline_reg(3, 6),
        moss_datagen::error_logger(4, 4),
        moss_datagen::signed_mac(4, 6),
    ]
}

#[test]
fn faulted_pipeline_degrades_per_circuit_and_respects_the_budget() {
    let world = build_world(ExperimentConfig::tiny());
    let modules = modules();

    // Everything fails: the budget (default 25%) must abort the run with
    // a structured error, never a panic, and the manifest must hold every
    // skip flagged as injected.
    override_for_tests(Some("synth:1.0"));
    let mut m = RunManifest::new("fault_injection");
    let err = build_samples(&world, &modules, &mut m).unwrap_err();
    let PipelineError::BudgetExceeded {
        failed, attempted, ..
    } = err;
    assert_eq!(failed, modules.len());
    assert_eq!(attempted, modules.len());
    assert_eq!(m.skips().len(), modules.len());
    assert!(m.skips().iter().all(|s| s.error.is_fault_injected()));
    assert!(m.skips().iter().all(|s| s.stage == "build"));

    // A partial rate skips exactly the circuits the fault oracle says it
    // will — `fire` is deterministic per (config, site, name) — and the
    // survivors keep flowing.
    let spec = "synth:0.3:11";
    override_for_tests(Some(spec));
    let fired: Vec<String> = modules
        .iter()
        .map(|md| md.name().to_owned())
        .filter(|n| fire(Site::Synth, key(n)))
        .collect();
    assert!(
        !fired.is_empty() && fired.len() * 4 <= modules.len(),
        "fault spec {spec} fires {}/{} — retune the seed so the scenario \
         skips some circuits yet stays inside the 25% budget",
        fired.len(),
        modules.len()
    );
    let mut m = RunManifest::new("fault_injection");
    let samples = build_samples(&world, &modules, &mut m).unwrap();
    assert_eq!(samples.len(), modules.len() - fired.len());
    let skipped: Vec<&str> = m.skips().iter().map(|s| s.circuit.as_str()).collect();
    assert_eq!(
        skipped,
        fired.iter().map(String::as_str).collect::<Vec<_>>()
    );
    assert!(m.skips().iter().all(|s| s.error.is_fault_injected()));
    assert!(samples.iter().all(|s| !fired.contains(&s.name)));
    // Survivors carry real (finite) labels.
    assert!(samples.iter().all(|s| s.labels.total_power_nw.is_finite()));
    let json = m.to_json();
    assert!(json.contains("\"fault_injected\": true"));

    // The sim site fails circuits during ground-truth simulation; the skip
    // surfaces through the same per-circuit path.
    override_for_tests(Some("sim:1.0"));
    let mut m = RunManifest::new("fault_injection");
    let err = build_samples(&world, &modules[..2], &mut m).unwrap_err();
    assert!(err.to_string().contains("failure budget exceeded"), "{err}");
    assert!(m
        .skips()
        .iter()
        .all(|s| s.error.to_string().contains("sim")));

    // Disarmed, the same inputs sail through with an empty manifest.
    override_for_tests(None);
    let mut m = RunManifest::new("fault_injection");
    let samples = build_samples(&world, &modules, &mut m).unwrap();
    assert_eq!(samples.len(), modules.len());
    assert!(m.skips().is_empty());
}
