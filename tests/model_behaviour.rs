//! Behavioural integration tests of the models: determinism, checkpoint
//! round-trips, thread-safety bounds, and variant-specific gradient flow.

use moss::{CircuitSample, MossConfig, MossModel, MossVariant, Prepared, SampleOptions};
use moss_llm::{EncoderConfig, TextEncoder};
use moss_netlist::CellLibrary;
use moss_tensor::{load_params, save_params, Graph, ParamStore};

fn setup(variant: MossVariant) -> (MossModel, TextEncoder, ParamStore, Prepared) {
    let module = moss_datagen::max_selector(3, 6);
    let lib = CellLibrary::default();
    let sample = CircuitSample::build(
        &module,
        &lib,
        &SampleOptions {
            sim_cycles: 128,
            ..SampleOptions::default()
        },
    )
    .expect("builds");
    let mut store = ParamStore::new();
    let encoder = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
    let model = MossModel::new(MossConfig::small(16, variant), &mut store, 2);
    let prep = model
        .prepare(&sample, &encoder, &store, &lib, 500.0)
        .expect("prepares");
    (model, encoder, store, prep)
}

#[test]
fn predictions_are_deterministic() {
    let (model, _enc, store, prep) = setup(MossVariant::Full);
    let a = model.predict(&store, &prep);
    let b = model.predict(&store, &prep);
    assert_eq!(a.toggle, b.toggle);
    assert_eq!(a.arrival_ns, b.arrival_ns);
    assert_eq!(a.power_nw, b.power_nw);
    assert_eq!(a.netlist_align, b.netlist_align);
}

#[test]
fn checkpoint_round_trip_preserves_predictions() {
    let (model, _enc, store, prep) = setup(MossVariant::Full);
    let before = model.predict(&store, &prep);

    let mut bytes = Vec::new();
    save_params(&mut bytes, &store).expect("saves");
    let restored = load_params(bytes.as_slice()).expect("loads");
    assert_eq!(restored.len(), store.len());
    assert_eq!(restored.scalar_count(), store.scalar_count());

    let after = model.predict(&restored, &prep);
    assert_eq!(before.toggle, after.toggle);
    assert_eq!(before.arrival_ns, after.arrival_ns);
}

#[test]
fn core_types_are_send_and_sync() {
    fn assert_bounds<T: Send + Sync>() {}
    assert_bounds::<MossModel>();
    assert_bounds::<ParamStore>();
    assert_bounds::<Prepared>();
    assert_bounds::<moss_netlist::Netlist>();
    assert_bounds::<moss_rtl::Module>();
    assert_bounds::<moss_sim::GateSim>();
}

#[test]
fn adaptive_variant_clusters_within_budget_and_ablation_is_uniform() {
    let (model, _, _, prep_full) = setup(MossVariant::Full);
    // Cluster count depends on the encoder's embedding geometry (a tiny
    // untuned encoder may legitimately place every cell kind in one
    // DBSCAN cluster); the hard invariants are the aggregator budget and
    // that the ablation is exactly uniform.
    assert!(prep_full.circuit.clusters.count >= 1);
    assert!(prep_full.circuit.clusters.count <= model.config().aggregators);
    let (_, _, _, prep_uniform) = setup(MossVariant::WithoutAdaptiveAggregator);
    assert_eq!(
        prep_uniform.circuit.clusters.count, 1,
        "ablation is uniform"
    );
}

#[test]
fn alignment_gradients_only_exist_for_full_variant() {
    for variant in MossVariant::ALL {
        let (model, _enc, store, prep) = setup(variant);
        let mut g = Graph::new();
        let losses = model.local_losses(&mut g, &store, &prep);
        assert_eq!(
            losses.rrndm.is_some(),
            variant.alignment(),
            "RrNdM presence must track the variant ({variant:?})"
        );
    }
}

#[test]
fn llm_features_change_the_prepared_matrix() {
    let (_, _, _, with_llm) = setup(MossVariant::Full);
    let (_, _, _, without_llm) = setup(MossVariant::WithoutFeatureEnhancement);
    // Same circuit, same width; different content in the LLM slots.
    assert_eq!(
        with_llm.circuit.features.shape(),
        without_llm.circuit.features.shape()
    );
    assert_ne!(
        with_llm.circuit.features.data(),
        without_llm.circuit.features.data()
    );
}
