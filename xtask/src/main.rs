fn main() {
    println!("xtask: no tasks defined; see crates/bench for experiment binaries");
}
