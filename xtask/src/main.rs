//! Workspace tasks. `cargo xtask bench-check` is the perf-regression gate:
//! it runs the kernels and sim bench suites plus the serve load generator
//! with quick budgets (`MOSS_BENCH_QUICK=1`), redirects their reports
//! under `target/` via `MOSS_BENCH_OUT`, and compares each benchmark's
//! `mean_ns` against the committed `BENCH_kernels.json` / `BENCH_sim.json`
//! / `BENCH_serve.json` baselines, failing if any benchmark slowed beyond
//! the tolerance.
//!
//! Tolerance is a fraction of the baseline: `--tolerance 0.5` (or
//! `MOSS_BENCH_TOLERANCE=0.5`; default 0.5) fails a benchmark that is
//! more than 1.5× its baseline mean. CI uses a looser tolerance because its
//! runners differ from the machine the baselines were recorded on — the
//! gate exists to catch order-of-magnitude regressions before they merge,
//! not percent-level drift.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

// `kernels` and `sim` run through `cargo bench`; `serve` runs the
// loadgen binary from `moss-serve` and `labels` the labelgen binary from
// moss-bench (their reports have the same shape).
const SUITES: &[&str] = &["kernels", "sim", "serve", "labels"];
// Quick-budget runs are noisy (the naive large matmul swings ±30% on a
// busy host); the default tolerance is wide enough to absorb that while
// still catching a regression back to the pre-pool / pre-SIMD kernels
// (those are 5x+ slower, far outside any plausible noise band). CI
// overrides it looser via MOSS_BENCH_TOLERANCE because its runners differ
// from the baseline machine.
const DEFAULT_TOLERANCE: f64 = 0.5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-check") => bench_check(&args[1..]),
        Some("fault-check") => fault_check(),
        Some("chaos-check") => chaos_check(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::SUCCESS
        }
    }
}

fn usage() {
    eprintln!("tasks:");
    eprintln!("  bench-check [--tolerance FRACTION]   compare a fresh quick bench run");
    eprintln!("                                       against the committed BENCH_*.json");
    eprintln!("                                       baselines; fail on regression");
    eprintln!("  fault-check                          run the table1 pipeline with fault");
    eprintln!("                                       injection armed; fail unless it");
    eprintln!("                                       degrades gracefully (exit 0, skips");
    eprintln!("                                       recorded, no NaN in the table)");
    eprintln!("  chaos-check [--quick] [--schedules N]  soak moss-serve under randomized");
    eprintln!("              [--seed N]                 MOSS_FAULTS schedules + concurrent");
    eprintln!("                                       hot-reloads; fail on any panic,");
    eprintln!("                                       wrong bytes, accepted-corrupt");
    eprintln!("                                       checkpoint, or blown error budget");
    eprintln!("(experiment binaries live in crates/bench)");
}

fn bench_check(args: &[String]) -> ExitCode {
    let tolerance = match parse_tolerance(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = workspace_root();
    let scratch = root.join("target").join("bench-check");
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!(
            "xtask bench-check: cannot create {}: {e}",
            scratch.display()
        );
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for suite in SUITES {
        let baseline_path = root.join(format!("BENCH_{suite}.json"));
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "xtask bench-check: missing baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        };

        let fresh_path = scratch.join(format!("BENCH_{suite}.json"));
        eprintln!("# bench-check: running quick `{suite}` suite…");
        let mut cmd = Command::new(env!("CARGO"));
        if *suite == "serve" {
            // The serving numbers come from the load generator, not a
            // benchkit bench: real sockets, concurrent clients.
            cmd.args(["run", "--release", "-p", "moss-serve", "--bin", "loadgen"]);
        } else if *suite == "labels" {
            // Cold-vs-warm labeling throughput through the sharded label
            // store; labelgen self-checks digest equality and the warm
            // speedup floor before writing its report.
            cmd.args([
                "run",
                "--release",
                "-p",
                "moss-bench",
                "--bin",
                "labelgen",
                "--",
                "--bench",
            ]);
        } else {
            cmd.args(["bench", "-p", "moss-bench", "--bench", suite]);
        }
        let status = cmd
            .current_dir(&root)
            .env("MOSS_BENCH_QUICK", "1")
            .env("MOSS_BENCH_OUT", &fresh_path)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask bench-check: `{suite}` suite failed: {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask bench-check: cannot spawn cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
        let fresh = match std::fs::read_to_string(&fresh_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "xtask bench-check: bench wrote no report at {}: {e}",
                    fresh_path.display()
                );
                return ExitCode::FAILURE;
            }
        };

        let report = compare(&parse_bench(&baseline), &parse_bench(&fresh), tolerance);
        print!("{}", render(suite, &report, tolerance));
        failures += report.iter().filter(|r| r.regressed()).count();
    }

    if failures > 0 {
        eprintln!("xtask bench-check: FAIL — {failures} benchmark(s) regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        eprintln!("xtask bench-check: OK — no regressions beyond tolerance");
        ExitCode::SUCCESS
    }
}

/// Fault spec for the robustness gate. The seed is pinned so the same
/// circuits fail on every run — the gate must be deterministic, and at
/// least one skip must actually fire for the check to mean anything.
const FAULT_CHECK_SPEC: &str = "synth:0.1:3,sim:0.1:5";

fn fault_check() -> ExitCode {
    let root = workspace_root();
    let scratch = root.join("target").join("fault-check");
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!(
            "xtask fault-check: cannot create {}: {e}",
            scratch.display()
        );
        return ExitCode::FAILURE;
    }
    let manifest_path = scratch.join("manifest.json");
    let _ = std::fs::remove_file(&manifest_path);

    eprintln!("# fault-check: running table1 --tiny with MOSS_FAULTS={FAULT_CHECK_SPEC}…");
    let output = Command::new(env!("CARGO"))
        .args([
            "run",
            "--release",
            "-p",
            "moss-bench",
            "--bin",
            "table1",
            "--",
            "--tiny",
        ])
        .current_dir(&root)
        .env("MOSS_FAULTS", FAULT_CHECK_SPEC)
        .env("MOSS_MAX_FAILED_FRAC", "0.5")
        .env("MOSS_RUN_MANIFEST", &manifest_path)
        .output();
    let output = match output {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask fault-check: cannot spawn cargo: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);

    let mut failures = Vec::new();
    if !output.status.success() {
        failures.push(format!(
            "pipeline exited with {} under injected faults (wanted graceful degradation)",
            output.status
        ));
    }
    match std::fs::read_to_string(&manifest_path) {
        Ok(manifest) => {
            let skips = manifest.matches("\"circuit\":").count();
            if skips == 0 {
                failures.push(format!(
                    "manifest records no skipped circuits — the armed fault sites \
                     never fired (retune {FAULT_CHECK_SPEC})"
                ));
            } else {
                eprintln!("# fault-check: {skips} circuit(s) skipped and recorded");
            }
        }
        Err(e) => failures.push(format!(
            "run wrote no manifest at {}: {e}",
            manifest_path.display()
        )),
    }
    if stdout.contains("NaN") {
        failures.push("table output contains NaN — degraded averages leaked".to_string());
    }
    if !stdout.contains("Table I") {
        failures.push("table output missing — the run never reached rendering".to_string());
    }

    if failures.is_empty() {
        eprintln!("xtask fault-check: OK — pipeline degraded gracefully under injected faults");
        ExitCode::SUCCESS
    } else {
        eprint!("{stderr}");
        print!("{stdout}");
        for f in &failures {
            eprintln!("xtask fault-check: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}

/// The chaos gate: build the soak harness once, then run it under a
/// battery of randomized-but-reproducible `MOSS_FAULTS` schedules
/// (serve/io/net/store sites at varied rates and seeds) crossed with
/// varied server tuning (tiny and large queues, batching on and off).
/// The harness checks the hard invariants itself (bit-identical
/// successes, corrupt checkpoints rejected, clean drain, error budget);
/// this gate additionally treats *any* "panicked" in the output as
/// failure — a respawned thread during a soak means an organic panic
/// slipped in, which the harness would also flag at drain, but belt and
/// suspenders are the point of a chaos gate. Finally it proves the
/// bench client survives a lossy network: one `loadgen --quick` run
/// under a `net` fault schedule must still exit 0.
fn chaos_check(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut schedules: Option<usize> = None;
    let mut seed: u64 = 0xC4A0_5EED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--schedules" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => schedules = Some(n),
                None => {
                    eprintln!("xtask chaos-check: --schedules needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => {
                    eprintln!("xtask chaos-check: --seed needs a number");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("xtask chaos-check: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let schedules = schedules.unwrap_or(if quick { 8 } else { 25 });
    let root = workspace_root();
    let scratch = root.join("target").join("chaos-check");
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        eprintln!(
            "xtask chaos-check: cannot create {}: {e}",
            scratch.display()
        );
        return ExitCode::FAILURE;
    }

    eprintln!("# chaos-check: building the soak harness…");
    let status = Command::new(env!("CARGO"))
        .args([
            "build",
            "--release",
            "-p",
            "moss-serve",
            "--bin",
            "chaos",
            "--bin",
            "loadgen",
        ])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("xtask chaos-check: build failed: {s}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("xtask chaos-check: cannot spawn cargo: {e}");
            return ExitCode::FAILURE;
        }
    }
    let chaos_bin = root.join("target").join("release").join("chaos");
    let loadgen_bin = root.join("target").join("release").join("loadgen");

    // xorshift64: deterministic schedule generation from --seed.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for i in 0..schedules {
        // Each fault site joins the schedule with ~55% probability; the
        // serve site (deterministic per-circuit request poisoning) gets
        // a lower rate ceiling so the corpus is never fully poisoned.
        let mut spec = Vec::new();
        for site in ["serve", "io", "net", "store"] {
            if next() % 100 < 55 {
                let ceiling = if site == "serve" { 0.20 } else { 0.25 };
                let rate = 0.02 + (next() % 1000) as f64 / 1000.0 * (ceiling - 0.02);
                let site_seed = next() % 10_000;
                spec.push(format!("{site}:{rate:.3}:{site_seed}"));
            }
        }
        if spec.is_empty() {
            // A chaos schedule with no chaos proves nothing.
            spec.push(format!("net:0.100:{}", next() % 10_000));
        }
        let faults = spec.join(",");
        let queue_cap = ["2", "4", "64", "256"][(next() % 4) as usize];
        let batch_ms = ["0", "1", "2", "8"][(next() % 4) as usize];
        let max_batch = ["1", "4", "16"][(next() % 3) as usize];
        eprintln!(
            "# chaos-check: schedule {}/{schedules}: MOSS_FAULTS={faults} \
             queue_cap={queue_cap} batch_ms={batch_ms} max_batch={max_batch}",
            i + 1
        );
        let mut cmd = Command::new(&chaos_bin);
        if quick {
            cmd.arg("--quick");
        }
        let output = cmd
            .current_dir(&root)
            .env("MOSS_FAULTS", &faults)
            .env("MOSS_SERVE_QUEUE_CAP", queue_cap)
            .env("MOSS_SERVE_BATCH_MS", batch_ms)
            .env("MOSS_SERVE_MAX_BATCH", max_batch)
            .output();
        let output = match output {
            Ok(o) => o,
            Err(e) => {
                eprintln!(
                    "xtask chaos-check: cannot spawn {}: {e}",
                    chaos_bin.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let stderr = String::from_utf8_lossy(&output.stderr);
        let stdout = String::from_utf8_lossy(&output.stdout);
        let panicked = stderr.contains("panicked") || stdout.contains("panicked");
        if !output.status.success() || panicked {
            eprint!("{stderr}");
            print!("{stdout}");
            if panicked {
                eprintln!(
                    "xtask chaos-check: FAIL — a thread panicked under schedule \
                     MOSS_FAULTS={faults} (zero-panic invariant)"
                );
            } else {
                eprintln!(
                    "xtask chaos-check: FAIL — harness exited {} under schedule \
                     MOSS_FAULTS={faults}",
                    output.status
                );
            }
            return ExitCode::FAILURE;
        }
    }

    // The bench client must shrug off a lossy network, not abort on it.
    eprintln!("# chaos-check: loadgen --quick under MOSS_FAULTS=net:0.05:7…");
    let output = Command::new(&loadgen_bin)
        .arg("--quick")
        .current_dir(&root)
        .env("MOSS_FAULTS", "net:0.05:7")
        .env("MOSS_BENCH_OUT", scratch.join("BENCH_serve.json"))
        .output();
    match output {
        Ok(o) if o.status.success() => {}
        Ok(o) => {
            eprint!("{}", String::from_utf8_lossy(&o.stderr));
            eprintln!(
                "xtask chaos-check: FAIL — loadgen exited {} under net faults \
                 (the resilient client must absorb them)",
                o.status
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!(
                "xtask chaos-check: cannot spawn {}: {e}",
                loadgen_bin.display()
            );
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "xtask chaos-check: OK — {schedules} schedule(s), zero panics, zero wrong bytes, \
         corrupt checkpoints rejected, clean drains"
    );
    ExitCode::SUCCESS
}

fn parse_tolerance(args: &[String]) -> Result<f64, String> {
    let mut tolerance: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--tolerance needs a value".to_string())?;
                tolerance = Some(
                    v.parse::<f64>()
                        .map_err(|_| format!("bad tolerance `{v}`"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if tolerance.is_none() {
        if let Ok(v) = std::env::var("MOSS_BENCH_TOLERANCE") {
            tolerance = Some(
                v.parse::<f64>()
                    .map_err(|_| format!("bad MOSS_BENCH_TOLERANCE `{v}`"))?,
            );
        }
    }
    let t = tolerance.unwrap_or(DEFAULT_TOLERANCE);
    if t.is_finite() && t >= 0.0 {
        Ok(t)
    } else {
        Err(format!(
            "tolerance must be a non-negative fraction, got {t}"
        ))
    }
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level under the workspace root")
        .to_path_buf()
}

/// One benchmark's baseline-vs-fresh comparison.
#[derive(Debug, Clone, PartialEq)]
struct Comparison {
    name: String,
    baseline_ns: f64,
    /// `None` when the benchmark disappeared from the fresh run.
    fresh_ns: Option<f64>,
    /// `fresh / baseline`; > 1 means slower than baseline.
    ratio: Option<f64>,
    over_tolerance: bool,
}

impl Comparison {
    fn regressed(&self) -> bool {
        self.over_tolerance || self.fresh_ns.is_none()
    }
}

/// Compares every baseline benchmark against the fresh run. A benchmark
/// missing from the fresh run counts as a regression (a rename must update
/// the baseline in the same change); extra fresh benchmarks are ignored
/// (they have no baseline yet).
fn compare(baseline: &[(String, f64)], fresh: &[(String, f64)], tolerance: f64) -> Vec<Comparison> {
    baseline
        .iter()
        .map(|(name, base_ns)| {
            let fresh_ns = fresh.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
            let ratio = fresh_ns.map(|f| f / base_ns.max(f64::MIN_POSITIVE));
            Comparison {
                name: name.clone(),
                baseline_ns: *base_ns,
                fresh_ns,
                ratio,
                over_tolerance: ratio.is_some_and(|r| r > 1.0 + tolerance),
            }
        })
        .collect()
}

fn render(suite: &str, report: &[Comparison], tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\nbench-check `{suite}` (tolerance +{:.0}%)\n",
        tolerance * 100.0
    ));
    out.push_str(&format!(
        "{:<40} {:>14} {:>14} {:>8}  status\n",
        "benchmark", "baseline ns", "fresh ns", "ratio"
    ));
    for c in report {
        let (fresh, ratio, status) = match (c.fresh_ns, c.ratio) {
            (Some(f), Some(r)) => (
                format!("{f:.0}"),
                format!("{r:.2}x"),
                if c.over_tolerance { "REGRESSED" } else { "ok" },
            ),
            _ => ("-".to_string(), "-".to_string(), "MISSING"),
        };
        out.push_str(&format!(
            "{:<40} {:>14.0} {:>14} {:>8}  {status}\n",
            c.name, c.baseline_ns, fresh, ratio
        ));
    }
    out
}

/// Extracts `(name, mean_ns)` pairs from a `moss-benchkit` JSON report.
/// The format is machine-written and flat, so a hand-rolled scan (no JSON
/// dependency) is sufficient: each result object carries `"name"` then
/// `"mean_ns"`.
fn parse_bench(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\": \"") {
        rest = &rest[pos + "\"name\": \"".len()..];
        let Some(end) = rest.find('"') else { break };
        let name = rest[..end].to_string();
        rest = &rest[end..];
        let Some(mpos) = rest.find("\"mean_ns\": ") else {
            continue;
        };
        let tail = &rest[mpos + "\"mean_ns\": ".len()..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bench": "kernels",
  "results": [
    {"name": "matmul/naive/256x16x16", "iters": 100, "mean_ns": 1000.0, "min_batch_ns": 900.0, "gflops": 0.1},
    {"name": "matmul/parallel/256x16x16", "iters": 400, "mean_ns": 250.0, "min_batch_ns": 240.0, "items_per_sec": 123.0}
  ]
}
"#;

    #[test]
    fn parses_benchkit_reports() {
        let parsed = parse_bench(SAMPLE);
        assert_eq!(
            parsed,
            vec![
                ("matmul/naive/256x16x16".to_string(), 1000.0),
                ("matmul/parallel/256x16x16".to_string(), 250.0),
            ]
        );
    }

    #[test]
    fn within_tolerance_passes() {
        let base = vec![("a".to_string(), 100.0)];
        let fresh = vec![("a".to_string(), 140.0)];
        let r = compare(&base, &fresh, 0.5);
        assert!(!r[0].regressed());
        assert!((r[0].ratio.unwrap() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 100.0)];
        let fresh = vec![("a".to_string(), 151.0), ("b".to_string(), 99.0)];
        let r = compare(&base, &fresh, 0.5);
        assert!(r[0].regressed(), "51% over on a +50% tolerance must fail");
        assert!(!r[1].regressed(), "faster than baseline passes");
    }

    #[test]
    fn missing_benchmark_counts_as_regression() {
        let base = vec![("gone".to_string(), 100.0)];
        let r = compare(&base, &[], 0.5);
        assert!(r[0].regressed());
        assert!(r[0].fresh_ns.is_none());
    }

    #[test]
    fn extra_fresh_benchmarks_are_ignored() {
        let base = vec![("a".to_string(), 100.0)];
        let fresh = vec![("a".to_string(), 100.0), ("new".to_string(), 5.0)];
        let r = compare(&base, &fresh, 0.5);
        assert_eq!(r.len(), 1);
        assert!(!r[0].regressed());
    }

    #[test]
    fn render_marks_status() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 100.0)];
        let fresh = vec![("a".to_string(), 400.0), ("b".to_string(), 100.0)];
        let r = compare(&base, &fresh, 0.5);
        let table = render("kernels", &r, 0.5);
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("ok"));
        assert!(table.contains("4.00x"));
    }
}
