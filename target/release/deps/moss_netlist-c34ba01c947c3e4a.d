/root/repo/target/release/deps/moss_netlist-c34ba01c947c3e4a.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/cone.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/level.rs crates/netlist/src/library.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libmoss_netlist-c34ba01c947c3e4a.rlib: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/cone.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/level.rs crates/netlist/src/library.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libmoss_netlist-c34ba01c947c3e4a.rmeta: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/cone.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/level.rs crates/netlist/src/library.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/cone.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/level.rs:
crates/netlist/src/library.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
