/root/repo/target/release/deps/moss_synth-45f7bb959b3b3afe.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs

/root/repo/target/release/deps/libmoss_synth-45f7bb959b3b3afe.rlib: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs

/root/repo/target/release/deps/libmoss_synth-45f7bb959b3b3afe.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/builder.rs:
crates/synth/src/error.rs:
crates/synth/src/lower.rs:
crates/synth/src/synth.rs:
