/root/repo/target/release/deps/ablation-fe556da03ef526ec.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-fe556da03ef526ec: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
