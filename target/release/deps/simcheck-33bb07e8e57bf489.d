/root/repo/target/release/deps/simcheck-33bb07e8e57bf489.d: crates/bench/src/bin/simcheck.rs

/root/repo/target/release/deps/simcheck-33bb07e8e57bf489: crates/bench/src/bin/simcheck.rs

crates/bench/src/bin/simcheck.rs:
