/root/repo/target/release/deps/fig1a-2299b732845d366d.d: crates/bench/src/bin/fig1a.rs

/root/repo/target/release/deps/fig1a-2299b732845d366d: crates/bench/src/bin/fig1a.rs

crates/bench/src/bin/fig1a.rs:
