/root/repo/target/release/deps/moss-a1ceadb2ce626f78.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/deepseq2.rs crates/core/src/features.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/sample.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/libmoss-a1ceadb2ce626f78.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/deepseq2.rs crates/core/src/features.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/sample.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/libmoss-a1ceadb2ce626f78.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/deepseq2.rs crates/core/src/features.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/sample.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/deepseq2.rs:
crates/core/src/features.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/sample.rs:
crates/core/src/trainer.rs:
