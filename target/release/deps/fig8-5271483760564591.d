/root/repo/target/release/deps/fig8-5271483760564591.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-5271483760564591: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
