/root/repo/target/release/deps/sim-5dacaf4d9b81b6f2.d: crates/bench/benches/sim.rs

/root/repo/target/release/deps/sim-5dacaf4d9b81b6f2: crates/bench/benches/sim.rs

crates/bench/benches/sim.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
