/root/repo/target/release/deps/xtask-7170774e5811cd28.d: xtask/src/main.rs

/root/repo/target/release/deps/xtask-7170774e5811cd28: xtask/src/main.rs

xtask/src/main.rs:
