/root/repo/target/release/deps/kernels-679faa8597b7dcfe.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-679faa8597b7dcfe: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
