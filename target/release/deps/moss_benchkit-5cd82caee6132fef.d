/root/repo/target/release/deps/moss_benchkit-5cd82caee6132fef.d: crates/benchkit/src/lib.rs

/root/repo/target/release/deps/libmoss_benchkit-5cd82caee6132fef.rlib: crates/benchkit/src/lib.rs

/root/repo/target/release/deps/libmoss_benchkit-5cd82caee6132fef.rmeta: crates/benchkit/src/lib.rs

crates/benchkit/src/lib.rs:
