/root/repo/target/release/deps/moss_datagen-151648bde3cbd124.d: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs

/root/repo/target/release/deps/libmoss_datagen-151648bde3cbd124.rlib: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs

/root/repo/target/release/deps/libmoss_datagen-151648bde3cbd124.rmeta: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs

crates/datagen/src/lib.rs:
crates/datagen/src/benchmarks.rs:
crates/datagen/src/corpus.rs:
crates/datagen/src/expr.rs:
crates/datagen/src/extras.rs:
crates/datagen/src/random.rs:
