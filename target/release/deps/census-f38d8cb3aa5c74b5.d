/root/repo/target/release/deps/census-f38d8cb3aa5c74b5.d: crates/bench/src/bin/census.rs

/root/repo/target/release/deps/census-f38d8cb3aa5c74b5: crates/bench/src/bin/census.rs

crates/bench/src/bin/census.rs:
