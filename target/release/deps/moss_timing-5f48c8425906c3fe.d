/root/repo/target/release/deps/moss_timing-5f48c8425906c3fe.d: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs

/root/repo/target/release/deps/libmoss_timing-5f48c8425906c3fe.rlib: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs

/root/repo/target/release/deps/libmoss_timing-5f48c8425906c3fe.rmeta: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs

crates/timing/src/lib.rs:
crates/timing/src/hold.rs:
crates/timing/src/slack.rs:
crates/timing/src/sta.rs:
