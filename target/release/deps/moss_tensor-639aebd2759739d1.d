/root/repo/target/release/deps/moss_tensor-639aebd2759739d1.d: crates/tensor/src/lib.rs crates/tensor/src/backend.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/optim.rs crates/tensor/src/params.rs crates/tensor/src/serialize.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libmoss_tensor-639aebd2759739d1.rlib: crates/tensor/src/lib.rs crates/tensor/src/backend.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/optim.rs crates/tensor/src/params.rs crates/tensor/src/serialize.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libmoss_tensor-639aebd2759739d1.rmeta: crates/tensor/src/lib.rs crates/tensor/src/backend.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/optim.rs crates/tensor/src/params.rs crates/tensor/src/serialize.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/backend.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/params.rs:
crates/tensor/src/serialize.rs:
crates/tensor/src/tensor.rs:
