/root/repo/target/release/deps/moss_llm-4111b3b6ab2b4ec3.d: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs

/root/repo/target/release/deps/libmoss_llm-4111b3b6ab2b4ec3.rlib: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs

/root/repo/target/release/deps/libmoss_llm-4111b3b6ab2b4ec3.rmeta: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs

crates/llm/src/lib.rs:
crates/llm/src/encoder.rs:
crates/llm/src/finetune.rs:
crates/llm/src/tokenizer.rs:
