/root/repo/target/release/deps/fig7-8a427b04d1c04a77.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-8a427b04d1c04a77: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
