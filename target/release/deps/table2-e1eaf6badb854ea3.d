/root/repo/target/release/deps/table2-e1eaf6badb854ea3.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e1eaf6badb854ea3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
