/root/repo/target/release/deps/moss_prng-a945ec2e6e1e51c3.d: crates/prng/src/lib.rs

/root/repo/target/release/deps/libmoss_prng-a945ec2e6e1e51c3.rlib: crates/prng/src/lib.rs

/root/repo/target/release/deps/libmoss_prng-a945ec2e6e1e51c3.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
