/root/repo/target/release/deps/moss_bench-053a95e46334282a.d: crates/bench/src/lib.rs crates/bench/src/pipeline.rs

/root/repo/target/release/deps/libmoss_bench-053a95e46334282a.rlib: crates/bench/src/lib.rs crates/bench/src/pipeline.rs

/root/repo/target/release/deps/libmoss_bench-053a95e46334282a.rmeta: crates/bench/src/lib.rs crates/bench/src/pipeline.rs

crates/bench/src/lib.rs:
crates/bench/src/pipeline.rs:
