/root/repo/target/release/deps/table1-92a8438399828cf5.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-92a8438399828cf5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
