/root/repo/target/release/deps/moss_gnn-2440cf9db26e5ecf.d: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs

/root/repo/target/release/deps/libmoss_gnn-2440cf9db26e5ecf.rlib: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs

/root/repo/target/release/deps/libmoss_gnn-2440cf9db26e5ecf.rmeta: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs

crates/gnn/src/lib.rs:
crates/gnn/src/circuit.rs:
crates/gnn/src/clustering.rs:
crates/gnn/src/model.rs:
crates/gnn/src/state_table.rs:
