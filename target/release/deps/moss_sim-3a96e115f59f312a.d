/root/repo/target/release/deps/moss_sim-3a96e115f59f312a.d: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/libmoss_sim-3a96e115f59f312a.rlib: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs

/root/repo/target/release/deps/libmoss_sim-3a96e115f59f312a.rmeta: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/compiled.rs:
crates/sim/src/saif.rs:
crates/sim/src/sim.rs:
crates/sim/src/toggle.rs:
crates/sim/src/vcd.rs:
