/root/repo/target/release/deps/moss_rtl-a95673050637fc6f.d: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs

/root/repo/target/release/deps/libmoss_rtl-a95673050637fc6f.rlib: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs

/root/repo/target/release/deps/libmoss_rtl-a95673050637fc6f.rmeta: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs

crates/rtl/src/lib.rs:
crates/rtl/src/ast.rs:
crates/rtl/src/describe.rs:
crates/rtl/src/error.rs:
crates/rtl/src/interp.rs:
crates/rtl/src/lexer.rs:
crates/rtl/src/optimize.rs:
crates/rtl/src/parser.rs:
crates/rtl/src/printer.rs:
