/root/repo/target/release/deps/moss_power-150edec5f10ab926.d: crates/power/src/lib.rs crates/power/src/power.rs

/root/repo/target/release/deps/libmoss_power-150edec5f10ab926.rlib: crates/power/src/lib.rs crates/power/src/power.rs

/root/repo/target/release/deps/libmoss_power-150edec5f10ab926.rmeta: crates/power/src/lib.rs crates/power/src/power.rs

crates/power/src/lib.rs:
crates/power/src/power.rs:
