/root/repo/target/release/libmoss_prng.rlib: /root/repo/crates/prng/src/lib.rs
