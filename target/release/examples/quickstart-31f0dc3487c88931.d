/root/repo/target/release/examples/quickstart-31f0dc3487c88931.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-31f0dc3487c88931: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
