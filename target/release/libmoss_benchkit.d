/root/repo/target/release/libmoss_benchkit.rlib: /root/repo/crates/benchkit/src/lib.rs
