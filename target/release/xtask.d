/root/repo/target/release/xtask: /root/repo/xtask/src/main.rs
