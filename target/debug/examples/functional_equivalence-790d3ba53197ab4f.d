/root/repo/target/debug/examples/functional_equivalence-790d3ba53197ab4f.d: crates/bench/../../examples/functional_equivalence.rs Cargo.toml

/root/repo/target/debug/examples/libfunctional_equivalence-790d3ba53197ab4f.rmeta: crates/bench/../../examples/functional_equivalence.rs Cargo.toml

crates/bench/../../examples/functional_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
