/root/repo/target/debug/examples/power_estimation-3c497e41027bfb50.d: crates/bench/../../examples/power_estimation.rs

/root/repo/target/debug/examples/power_estimation-3c497e41027bfb50: crates/bench/../../examples/power_estimation.rs

crates/bench/../../examples/power_estimation.rs:
