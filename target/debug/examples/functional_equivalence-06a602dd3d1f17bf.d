/root/repo/target/debug/examples/functional_equivalence-06a602dd3d1f17bf.d: crates/bench/../../examples/functional_equivalence.rs

/root/repo/target/debug/examples/functional_equivalence-06a602dd3d1f17bf: crates/bench/../../examples/functional_equivalence.rs

crates/bench/../../examples/functional_equivalence.rs:
