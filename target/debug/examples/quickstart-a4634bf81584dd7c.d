/root/repo/target/debug/examples/quickstart-a4634bf81584dd7c.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a4634bf81584dd7c: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
