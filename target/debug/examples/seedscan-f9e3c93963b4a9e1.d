/root/repo/target/debug/examples/seedscan-f9e3c93963b4a9e1.d: crates/datagen/examples/seedscan.rs

/root/repo/target/debug/examples/seedscan-f9e3c93963b4a9e1: crates/datagen/examples/seedscan.rs

crates/datagen/examples/seedscan.rs:
