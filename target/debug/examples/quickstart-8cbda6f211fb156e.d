/root/repo/target/debug/examples/quickstart-8cbda6f211fb156e.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8cbda6f211fb156e.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
