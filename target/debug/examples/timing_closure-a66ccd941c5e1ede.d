/root/repo/target/debug/examples/timing_closure-a66ccd941c5e1ede.d: crates/bench/../../examples/timing_closure.rs Cargo.toml

/root/repo/target/debug/examples/libtiming_closure-a66ccd941c5e1ede.rmeta: crates/bench/../../examples/timing_closure.rs Cargo.toml

crates/bench/../../examples/timing_closure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
