/root/repo/target/debug/examples/timing_closure-ae104a59f0f31e29.d: crates/bench/../../examples/timing_closure.rs

/root/repo/target/debug/examples/timing_closure-ae104a59f0f31e29: crates/bench/../../examples/timing_closure.rs

crates/bench/../../examples/timing_closure.rs:
