/root/repo/target/debug/examples/power_estimation-01db6d44d9abd7da.d: crates/bench/../../examples/power_estimation.rs Cargo.toml

/root/repo/target/debug/examples/libpower_estimation-01db6d44d9abd7da.rmeta: crates/bench/../../examples/power_estimation.rs Cargo.toml

crates/bench/../../examples/power_estimation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
