/root/repo/target/debug/xtask: /root/repo/xtask/src/main.rs
