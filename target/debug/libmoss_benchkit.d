/root/repo/target/debug/libmoss_benchkit.rlib: /root/repo/crates/benchkit/src/lib.rs
