/root/repo/target/debug/deps/moss_gnn-f465b23f714ca60d.d: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_gnn-f465b23f714ca60d.rmeta: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs Cargo.toml

crates/gnn/src/lib.rs:
crates/gnn/src/circuit.rs:
crates/gnn/src/clustering.rs:
crates/gnn/src/model.rs:
crates/gnn/src/state_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
