/root/repo/target/debug/deps/moss_tensor-ba46966d4da42973.d: crates/tensor/src/lib.rs crates/tensor/src/backend.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/optim.rs crates/tensor/src/params.rs crates/tensor/src/serialize.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libmoss_tensor-ba46966d4da42973.rlib: crates/tensor/src/lib.rs crates/tensor/src/backend.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/optim.rs crates/tensor/src/params.rs crates/tensor/src/serialize.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libmoss_tensor-ba46966d4da42973.rmeta: crates/tensor/src/lib.rs crates/tensor/src/backend.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/optim.rs crates/tensor/src/params.rs crates/tensor/src/serialize.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/backend.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/params.rs:
crates/tensor/src/serialize.rs:
crates/tensor/src/tensor.rs:
