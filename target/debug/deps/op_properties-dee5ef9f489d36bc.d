/root/repo/target/debug/deps/op_properties-dee5ef9f489d36bc.d: crates/tensor/tests/op_properties.rs

/root/repo/target/debug/deps/op_properties-dee5ef9f489d36bc: crates/tensor/tests/op_properties.rs

crates/tensor/tests/op_properties.rs:
