/root/repo/target/debug/deps/xtask-899090500c87c63c.d: xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-899090500c87c63c.rmeta: xtask/src/main.rs Cargo.toml

xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
