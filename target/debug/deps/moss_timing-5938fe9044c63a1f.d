/root/repo/target/debug/deps/moss_timing-5938fe9044c63a1f.d: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_timing-5938fe9044c63a1f.rmeta: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs Cargo.toml

crates/timing/src/lib.rs:
crates/timing/src/hold.rs:
crates/timing/src/slack.rs:
crates/timing/src/sta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
