/root/repo/target/debug/deps/ablations-c1563e4f1049b31e.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-c1563e4f1049b31e.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
