/root/repo/target/debug/deps/moss_bench-7f8d2044455bede6.d: crates/bench/src/lib.rs crates/bench/src/pipeline.rs

/root/repo/target/debug/deps/libmoss_bench-7f8d2044455bede6.rlib: crates/bench/src/lib.rs crates/bench/src/pipeline.rs

/root/repo/target/debug/deps/libmoss_bench-7f8d2044455bede6.rmeta: crates/bench/src/lib.rs crates/bench/src/pipeline.rs

crates/bench/src/lib.rs:
crates/bench/src/pipeline.rs:
