/root/repo/target/debug/deps/moss_prng-859f8fd4e8a697c4.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libmoss_prng-859f8fd4e8a697c4.rlib: crates/prng/src/lib.rs

/root/repo/target/debug/deps/libmoss_prng-859f8fd4e8a697c4.rmeta: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
