/root/repo/target/debug/deps/simcheck-d6015fce0e671bdd.d: crates/bench/src/bin/simcheck.rs Cargo.toml

/root/repo/target/debug/deps/libsimcheck-d6015fce0e671bdd.rmeta: crates/bench/src/bin/simcheck.rs Cargo.toml

crates/bench/src/bin/simcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
