/root/repo/target/debug/deps/moss_bench-55791ca5382e0292.d: crates/bench/src/lib.rs crates/bench/src/pipeline.rs

/root/repo/target/debug/deps/moss_bench-55791ca5382e0292: crates/bench/src/lib.rs crates/bench/src/pipeline.rs

crates/bench/src/lib.rs:
crates/bench/src/pipeline.rs:
