/root/repo/target/debug/deps/census-a19b31cee32979c4.d: crates/bench/src/bin/census.rs

/root/repo/target/debug/deps/census-a19b31cee32979c4: crates/bench/src/bin/census.rs

crates/bench/src/bin/census.rs:
