/root/repo/target/debug/deps/moss_datagen-0fdc27c39f94249c.d: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs

/root/repo/target/debug/deps/moss_datagen-0fdc27c39f94249c: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs

crates/datagen/src/lib.rs:
crates/datagen/src/benchmarks.rs:
crates/datagen/src/corpus.rs:
crates/datagen/src/expr.rs:
crates/datagen/src/extras.rs:
crates/datagen/src/random.rs:
