/root/repo/target/debug/deps/moss_llm-739dcd2e839e06af.d: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_llm-739dcd2e839e06af.rmeta: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs Cargo.toml

crates/llm/src/lib.rs:
crates/llm/src/encoder.rs:
crates/llm/src/finetune.rs:
crates/llm/src/tokenizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
