/root/repo/target/debug/deps/moss_power-f0fe69c0ec18ce0a.d: crates/power/src/lib.rs crates/power/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_power-f0fe69c0ec18ce0a.rmeta: crates/power/src/lib.rs crates/power/src/power.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
