/root/repo/target/debug/deps/simcheck-0ca9bf97480f2c4c.d: crates/bench/src/bin/simcheck.rs Cargo.toml

/root/repo/target/debug/deps/libsimcheck-0ca9bf97480f2c4c.rmeta: crates/bench/src/bin/simcheck.rs Cargo.toml

crates/bench/src/bin/simcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
