/root/repo/target/debug/deps/table1-14f75106cc0a373b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-14f75106cc0a373b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
