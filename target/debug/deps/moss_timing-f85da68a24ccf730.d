/root/repo/target/debug/deps/moss_timing-f85da68a24ccf730.d: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs

/root/repo/target/debug/deps/libmoss_timing-f85da68a24ccf730.rlib: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs

/root/repo/target/debug/deps/libmoss_timing-f85da68a24ccf730.rmeta: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs

crates/timing/src/lib.rs:
crates/timing/src/hold.rs:
crates/timing/src/slack.rs:
crates/timing/src/sta.rs:
