/root/repo/target/debug/deps/moss_prng-41891b2de4b68c17.d: crates/prng/src/lib.rs

/root/repo/target/debug/deps/moss_prng-41891b2de4b68c17: crates/prng/src/lib.rs

crates/prng/src/lib.rs:
