/root/repo/target/debug/deps/moss_benchkit-2a1477ee65fa7ad6.d: crates/benchkit/src/lib.rs

/root/repo/target/debug/deps/libmoss_benchkit-2a1477ee65fa7ad6.rlib: crates/benchkit/src/lib.rs

/root/repo/target/debug/deps/libmoss_benchkit-2a1477ee65fa7ad6.rmeta: crates/benchkit/src/lib.rs

crates/benchkit/src/lib.rs:
