/root/repo/target/debug/deps/substrates-c4d1eeacc2bbcc3d.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-c4d1eeacc2bbcc3d.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
