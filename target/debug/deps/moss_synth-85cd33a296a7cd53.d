/root/repo/target/debug/deps/moss_synth-85cd33a296a7cd53.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_synth-85cd33a296a7cd53.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/builder.rs:
crates/synth/src/error.rs:
crates/synth/src/lower.rs:
crates/synth/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
