/root/repo/target/debug/deps/moss_rtl-5b1e80930702a0a3.d: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_rtl-5b1e80930702a0a3.rmeta: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs Cargo.toml

crates/rtl/src/lib.rs:
crates/rtl/src/ast.rs:
crates/rtl/src/describe.rs:
crates/rtl/src/error.rs:
crates/rtl/src/interp.rs:
crates/rtl/src/lexer.rs:
crates/rtl/src/optimize.rs:
crates/rtl/src/parser.rs:
crates/rtl/src/printer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
