/root/repo/target/debug/deps/moss-01323c180543a70c.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/deepseq2.rs crates/core/src/features.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/sample.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/moss-01323c180543a70c: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/deepseq2.rs crates/core/src/features.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/sample.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/deepseq2.rs:
crates/core/src/features.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/sample.rs:
crates/core/src/trainer.rs:
