/root/repo/target/debug/deps/ablation-7d847173c9cef3c8.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-7d847173c9cef3c8.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
