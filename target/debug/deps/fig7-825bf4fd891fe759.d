/root/repo/target/debug/deps/fig7-825bf4fd891fe759.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-825bf4fd891fe759: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
