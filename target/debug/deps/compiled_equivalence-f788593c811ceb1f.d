/root/repo/target/debug/deps/compiled_equivalence-f788593c811ceb1f.d: crates/sim/tests/compiled_equivalence.rs

/root/repo/target/debug/deps/compiled_equivalence-f788593c811ceb1f: crates/sim/tests/compiled_equivalence.rs

crates/sim/tests/compiled_equivalence.rs:
