/root/repo/target/debug/deps/moss_benchkit-156d4267142921f0.d: crates/benchkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_benchkit-156d4267142921f0.rmeta: crates/benchkit/src/lib.rs Cargo.toml

crates/benchkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
