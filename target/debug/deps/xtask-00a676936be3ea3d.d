/root/repo/target/debug/deps/xtask-00a676936be3ea3d.d: xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-00a676936be3ea3d.rmeta: xtask/src/main.rs Cargo.toml

xtask/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
