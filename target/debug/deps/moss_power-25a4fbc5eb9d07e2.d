/root/repo/target/debug/deps/moss_power-25a4fbc5eb9d07e2.d: crates/power/src/lib.rs crates/power/src/power.rs

/root/repo/target/debug/deps/libmoss_power-25a4fbc5eb9d07e2.rlib: crates/power/src/lib.rs crates/power/src/power.rs

/root/repo/target/debug/deps/libmoss_power-25a4fbc5eb9d07e2.rmeta: crates/power/src/lib.rs crates/power/src/power.rs

crates/power/src/lib.rs:
crates/power/src/power.rs:
