/root/repo/target/debug/deps/equivalence_properties-a9140592ccef4585.d: crates/bench/../../tests/equivalence_properties.rs

/root/repo/target/debug/deps/equivalence_properties-a9140592ccef4585: crates/bench/../../tests/equivalence_properties.rs

crates/bench/../../tests/equivalence_properties.rs:
