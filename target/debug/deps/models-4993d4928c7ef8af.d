/root/repo/target/debug/deps/models-4993d4928c7ef8af.d: crates/bench/benches/models.rs Cargo.toml

/root/repo/target/debug/deps/libmodels-4993d4928c7ef8af.rmeta: crates/bench/benches/models.rs Cargo.toml

crates/bench/benches/models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
