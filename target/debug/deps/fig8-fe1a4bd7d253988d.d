/root/repo/target/debug/deps/fig8-fe1a4bd7d253988d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-fe1a4bd7d253988d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
