/root/repo/target/debug/deps/moss_tensor-d121bf559716f7b6.d: crates/tensor/src/lib.rs crates/tensor/src/backend.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/optim.rs crates/tensor/src/params.rs crates/tensor/src/serialize.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_tensor-d121bf559716f7b6.rmeta: crates/tensor/src/lib.rs crates/tensor/src/backend.rs crates/tensor/src/gradcheck.rs crates/tensor/src/graph.rs crates/tensor/src/optim.rs crates/tensor/src/params.rs crates/tensor/src/serialize.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/backend.rs:
crates/tensor/src/gradcheck.rs:
crates/tensor/src/graph.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/params.rs:
crates/tensor/src/serialize.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
