/root/repo/target/debug/deps/xtask-0319332da3483a8b.d: xtask/src/main.rs

/root/repo/target/debug/deps/xtask-0319332da3483a8b: xtask/src/main.rs

xtask/src/main.rs:
