/root/repo/target/debug/deps/backend_equivalence-f1387e8897f26da4.d: crates/tensor/tests/backend_equivalence.rs

/root/repo/target/debug/deps/backend_equivalence-f1387e8897f26da4: crates/tensor/tests/backend_equivalence.rs

crates/tensor/tests/backend_equivalence.rs:
