/root/repo/target/debug/deps/moss_gnn-32b285c84b08daf9.d: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs

/root/repo/target/debug/deps/libmoss_gnn-32b285c84b08daf9.rlib: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs

/root/repo/target/debug/deps/libmoss_gnn-32b285c84b08daf9.rmeta: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs

crates/gnn/src/lib.rs:
crates/gnn/src/circuit.rs:
crates/gnn/src/clustering.rs:
crates/gnn/src/model.rs:
crates/gnn/src/state_table.rs:
