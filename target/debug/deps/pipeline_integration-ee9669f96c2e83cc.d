/root/repo/target/debug/deps/pipeline_integration-ee9669f96c2e83cc.d: crates/bench/../../tests/pipeline_integration.rs

/root/repo/target/debug/deps/pipeline_integration-ee9669f96c2e83cc: crates/bench/../../tests/pipeline_integration.rs

crates/bench/../../tests/pipeline_integration.rs:
