/root/repo/target/debug/deps/model_behaviour-61f1d956af6aa639.d: crates/bench/../../tests/model_behaviour.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_behaviour-61f1d956af6aa639.rmeta: crates/bench/../../tests/model_behaviour.rs Cargo.toml

crates/bench/../../tests/model_behaviour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
