/root/repo/target/debug/deps/kernels-ecd613ec03658fcb.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/kernels-ecd613ec03658fcb: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
