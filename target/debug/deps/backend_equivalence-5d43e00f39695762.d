/root/repo/target/debug/deps/backend_equivalence-5d43e00f39695762.d: crates/tensor/tests/backend_equivalence.rs

/root/repo/target/debug/deps/backend_equivalence-5d43e00f39695762: crates/tensor/tests/backend_equivalence.rs

crates/tensor/tests/backend_equivalence.rs:
