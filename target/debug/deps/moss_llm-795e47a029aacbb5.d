/root/repo/target/debug/deps/moss_llm-795e47a029aacbb5.d: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs

/root/repo/target/debug/deps/libmoss_llm-795e47a029aacbb5.rlib: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs

/root/repo/target/debug/deps/libmoss_llm-795e47a029aacbb5.rmeta: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs

crates/llm/src/lib.rs:
crates/llm/src/encoder.rs:
crates/llm/src/finetune.rs:
crates/llm/src/tokenizer.rs:
