/root/repo/target/debug/deps/moss_power-f444092b71809850.d: crates/power/src/lib.rs crates/power/src/power.rs

/root/repo/target/debug/deps/moss_power-f444092b71809850: crates/power/src/lib.rs crates/power/src/power.rs

crates/power/src/lib.rs:
crates/power/src/power.rs:
