/root/repo/target/debug/deps/moss_bench-59f171f630ca5194.d: crates/bench/src/lib.rs crates/bench/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_bench-59f171f630ca5194.rmeta: crates/bench/src/lib.rs crates/bench/src/pipeline.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
