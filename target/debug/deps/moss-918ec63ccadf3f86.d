/root/repo/target/debug/deps/moss-918ec63ccadf3f86.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/deepseq2.rs crates/core/src/features.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/sample.rs crates/core/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libmoss-918ec63ccadf3f86.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/deepseq2.rs crates/core/src/features.rs crates/core/src/metrics.rs crates/core/src/model.rs crates/core/src/sample.rs crates/core/src/trainer.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/deepseq2.rs:
crates/core/src/features.rs:
crates/core/src/metrics.rs:
crates/core/src/model.rs:
crates/core/src/sample.rs:
crates/core/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
