/root/repo/target/debug/deps/kernels-4044321b17eacdee.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-4044321b17eacdee.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
