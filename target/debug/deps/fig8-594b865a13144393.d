/root/repo/target/debug/deps/fig8-594b865a13144393.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-594b865a13144393: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
