/root/repo/target/debug/deps/moss_sim-41449b1779b76592.d: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_sim-41449b1779b76592.rmeta: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/compiled.rs:
crates/sim/src/saif.rs:
crates/sim/src/sim.rs:
crates/sim/src/toggle.rs:
crates/sim/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
