/root/repo/target/debug/deps/fig1a-93e77aae84e96bfb.d: crates/bench/src/bin/fig1a.rs Cargo.toml

/root/repo/target/debug/deps/libfig1a-93e77aae84e96bfb.rmeta: crates/bench/src/bin/fig1a.rs Cargo.toml

crates/bench/src/bin/fig1a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
