/root/repo/target/debug/deps/fig1a-ec69345e40b2355a.d: crates/bench/src/bin/fig1a.rs

/root/repo/target/debug/deps/fig1a-ec69345e40b2355a: crates/bench/src/bin/fig1a.rs

crates/bench/src/bin/fig1a.rs:
