/root/repo/target/debug/deps/op_properties-51f4942b12443ff7.d: crates/tensor/tests/op_properties.rs

/root/repo/target/debug/deps/op_properties-51f4942b12443ff7: crates/tensor/tests/op_properties.rs

crates/tensor/tests/op_properties.rs:
