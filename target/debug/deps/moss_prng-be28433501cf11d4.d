/root/repo/target/debug/deps/moss_prng-be28433501cf11d4.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_prng-be28433501cf11d4.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
