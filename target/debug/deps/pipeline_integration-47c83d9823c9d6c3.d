/root/repo/target/debug/deps/pipeline_integration-47c83d9823c9d6c3.d: crates/bench/../../tests/pipeline_integration.rs

/root/repo/target/debug/deps/pipeline_integration-47c83d9823c9d6c3: crates/bench/../../tests/pipeline_integration.rs

crates/bench/../../tests/pipeline_integration.rs:
