/root/repo/target/debug/deps/census-e57c538d8c9a88db.d: crates/bench/src/bin/census.rs Cargo.toml

/root/repo/target/debug/deps/libcensus-e57c538d8c9a88db.rmeta: crates/bench/src/bin/census.rs Cargo.toml

crates/bench/src/bin/census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
