/root/repo/target/debug/deps/backend_equivalence-d8040db17083f210.d: crates/tensor/tests/backend_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libbackend_equivalence-d8040db17083f210.rmeta: crates/tensor/tests/backend_equivalence.rs Cargo.toml

crates/tensor/tests/backend_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
