/root/repo/target/debug/deps/table2-7083e27b47eea9af.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-7083e27b47eea9af: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
