/root/repo/target/debug/deps/moss_netlist-357d75c9ea66e4cb.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/cone.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/level.rs crates/netlist/src/library.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/moss_netlist-357d75c9ea66e4cb: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/cone.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/level.rs crates/netlist/src/library.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/cone.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/level.rs:
crates/netlist/src/library.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
