/root/repo/target/debug/deps/moss_benchkit-9228f4bf34465751.d: crates/benchkit/src/lib.rs

/root/repo/target/debug/deps/moss_benchkit-9228f4bf34465751: crates/benchkit/src/lib.rs

crates/benchkit/src/lib.rs:
