/root/repo/target/debug/deps/fig1a-e7da75ac0967c086.d: crates/bench/src/bin/fig1a.rs

/root/repo/target/debug/deps/fig1a-e7da75ac0967c086: crates/bench/src/bin/fig1a.rs

crates/bench/src/bin/fig1a.rs:
