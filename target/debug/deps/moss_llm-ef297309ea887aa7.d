/root/repo/target/debug/deps/moss_llm-ef297309ea887aa7.d: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs

/root/repo/target/debug/deps/moss_llm-ef297309ea887aa7: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs

crates/llm/src/lib.rs:
crates/llm/src/encoder.rs:
crates/llm/src/finetune.rs:
crates/llm/src/tokenizer.rs:
