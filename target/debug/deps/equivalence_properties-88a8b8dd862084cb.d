/root/repo/target/debug/deps/equivalence_properties-88a8b8dd862084cb.d: crates/bench/../../tests/equivalence_properties.rs

/root/repo/target/debug/deps/equivalence_properties-88a8b8dd862084cb: crates/bench/../../tests/equivalence_properties.rs

crates/bench/../../tests/equivalence_properties.rs:
