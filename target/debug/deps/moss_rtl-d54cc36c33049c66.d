/root/repo/target/debug/deps/moss_rtl-d54cc36c33049c66.d: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs

/root/repo/target/debug/deps/moss_rtl-d54cc36c33049c66: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs

crates/rtl/src/lib.rs:
crates/rtl/src/ast.rs:
crates/rtl/src/describe.rs:
crates/rtl/src/error.rs:
crates/rtl/src/interp.rs:
crates/rtl/src/lexer.rs:
crates/rtl/src/optimize.rs:
crates/rtl/src/parser.rs:
crates/rtl/src/printer.rs:
