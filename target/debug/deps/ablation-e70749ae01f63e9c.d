/root/repo/target/debug/deps/ablation-e70749ae01f63e9c.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-e70749ae01f63e9c.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
