/root/repo/target/debug/deps/moss_bench-15e515577d6a3708.d: crates/bench/src/lib.rs crates/bench/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_bench-15e515577d6a3708.rmeta: crates/bench/src/lib.rs crates/bench/src/pipeline.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
