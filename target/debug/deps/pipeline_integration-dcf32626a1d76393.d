/root/repo/target/debug/deps/pipeline_integration-dcf32626a1d76393.d: crates/bench/../../tests/pipeline_integration.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_integration-dcf32626a1d76393.rmeta: crates/bench/../../tests/pipeline_integration.rs Cargo.toml

crates/bench/../../tests/pipeline_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
