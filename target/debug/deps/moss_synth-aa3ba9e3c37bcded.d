/root/repo/target/debug/deps/moss_synth-aa3ba9e3c37bcded.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs

/root/repo/target/debug/deps/moss_synth-aa3ba9e3c37bcded: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/builder.rs:
crates/synth/src/error.rs:
crates/synth/src/lower.rs:
crates/synth/src/synth.rs:
