/root/repo/target/debug/deps/fig7-d418511afbd22761.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-d418511afbd22761: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
