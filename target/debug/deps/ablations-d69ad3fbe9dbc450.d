/root/repo/target/debug/deps/ablations-d69ad3fbe9dbc450.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-d69ad3fbe9dbc450: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
