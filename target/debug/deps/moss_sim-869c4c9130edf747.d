/root/repo/target/debug/deps/moss_sim-869c4c9130edf747.d: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/moss_sim-869c4c9130edf747: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/compiled.rs:
crates/sim/src/saif.rs:
crates/sim/src/sim.rs:
crates/sim/src/toggle.rs:
crates/sim/src/vcd.rs:
