/root/repo/target/debug/deps/table1-53b79f6abcd2caf6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-53b79f6abcd2caf6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
