/root/repo/target/debug/deps/model_behaviour-dba340f81223092a.d: crates/bench/../../tests/model_behaviour.rs

/root/repo/target/debug/deps/model_behaviour-dba340f81223092a: crates/bench/../../tests/model_behaviour.rs

crates/bench/../../tests/model_behaviour.rs:
