/root/repo/target/debug/deps/moss_gnn-12332b9d89af8259.d: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs

/root/repo/target/debug/deps/moss_gnn-12332b9d89af8259: crates/gnn/src/lib.rs crates/gnn/src/circuit.rs crates/gnn/src/clustering.rs crates/gnn/src/model.rs crates/gnn/src/state_table.rs

crates/gnn/src/lib.rs:
crates/gnn/src/circuit.rs:
crates/gnn/src/clustering.rs:
crates/gnn/src/model.rs:
crates/gnn/src/state_table.rs:
