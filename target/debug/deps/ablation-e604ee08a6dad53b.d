/root/repo/target/debug/deps/ablation-e604ee08a6dad53b.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-e604ee08a6dad53b: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
