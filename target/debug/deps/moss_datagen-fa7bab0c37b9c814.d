/root/repo/target/debug/deps/moss_datagen-fa7bab0c37b9c814.d: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_datagen-fa7bab0c37b9c814.rmeta: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs Cargo.toml

crates/datagen/src/lib.rs:
crates/datagen/src/benchmarks.rs:
crates/datagen/src/corpus.rs:
crates/datagen/src/expr.rs:
crates/datagen/src/extras.rs:
crates/datagen/src/random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
