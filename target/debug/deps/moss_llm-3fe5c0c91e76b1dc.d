/root/repo/target/debug/deps/moss_llm-3fe5c0c91e76b1dc.d: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_llm-3fe5c0c91e76b1dc.rmeta: crates/llm/src/lib.rs crates/llm/src/encoder.rs crates/llm/src/finetune.rs crates/llm/src/tokenizer.rs Cargo.toml

crates/llm/src/lib.rs:
crates/llm/src/encoder.rs:
crates/llm/src/finetune.rs:
crates/llm/src/tokenizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
