/root/repo/target/debug/deps/simcheck-3435a56e07e7c779.d: crates/bench/src/bin/simcheck.rs

/root/repo/target/debug/deps/simcheck-3435a56e07e7c779: crates/bench/src/bin/simcheck.rs

crates/bench/src/bin/simcheck.rs:
