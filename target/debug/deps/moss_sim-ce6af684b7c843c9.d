/root/repo/target/debug/deps/moss_sim-ce6af684b7c843c9.d: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libmoss_sim-ce6af684b7c843c9.rlib: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs

/root/repo/target/debug/deps/libmoss_sim-ce6af684b7c843c9.rmeta: crates/sim/src/lib.rs crates/sim/src/compiled.rs crates/sim/src/saif.rs crates/sim/src/sim.rs crates/sim/src/toggle.rs crates/sim/src/vcd.rs

crates/sim/src/lib.rs:
crates/sim/src/compiled.rs:
crates/sim/src/saif.rs:
crates/sim/src/sim.rs:
crates/sim/src/toggle.rs:
crates/sim/src/vcd.rs:
