/root/repo/target/debug/deps/moss_synth-f87e65ea0a1f130a.d: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs

/root/repo/target/debug/deps/libmoss_synth-f87e65ea0a1f130a.rlib: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs

/root/repo/target/debug/deps/libmoss_synth-f87e65ea0a1f130a.rmeta: crates/synth/src/lib.rs crates/synth/src/aig.rs crates/synth/src/builder.rs crates/synth/src/error.rs crates/synth/src/lower.rs crates/synth/src/synth.rs

crates/synth/src/lib.rs:
crates/synth/src/aig.rs:
crates/synth/src/builder.rs:
crates/synth/src/error.rs:
crates/synth/src/lower.rs:
crates/synth/src/synth.rs:
