/root/repo/target/debug/deps/compiled_equivalence-fd407fe6608459ae.d: crates/sim/tests/compiled_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libcompiled_equivalence-fd407fe6608459ae.rmeta: crates/sim/tests/compiled_equivalence.rs Cargo.toml

crates/sim/tests/compiled_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
