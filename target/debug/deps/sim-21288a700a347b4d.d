/root/repo/target/debug/deps/sim-21288a700a347b4d.d: crates/bench/benches/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsim-21288a700a347b4d.rmeta: crates/bench/benches/sim.rs Cargo.toml

crates/bench/benches/sim.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
