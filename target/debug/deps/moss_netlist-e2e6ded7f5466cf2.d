/root/repo/target/debug/deps/moss_netlist-e2e6ded7f5466cf2.d: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/cone.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/level.rs crates/netlist/src/library.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_netlist-e2e6ded7f5466cf2.rmeta: crates/netlist/src/lib.rs crates/netlist/src/cell.rs crates/netlist/src/cone.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/level.rs crates/netlist/src/library.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/cell.rs:
crates/netlist/src/cone.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/level.rs:
crates/netlist/src/library.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
