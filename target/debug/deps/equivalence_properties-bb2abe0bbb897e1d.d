/root/repo/target/debug/deps/equivalence_properties-bb2abe0bbb897e1d.d: crates/bench/../../tests/equivalence_properties.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence_properties-bb2abe0bbb897e1d.rmeta: crates/bench/../../tests/equivalence_properties.rs Cargo.toml

crates/bench/../../tests/equivalence_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
