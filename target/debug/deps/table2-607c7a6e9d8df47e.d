/root/repo/target/debug/deps/table2-607c7a6e9d8df47e.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-607c7a6e9d8df47e.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
