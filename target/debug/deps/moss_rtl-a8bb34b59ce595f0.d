/root/repo/target/debug/deps/moss_rtl-a8bb34b59ce595f0.d: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs

/root/repo/target/debug/deps/libmoss_rtl-a8bb34b59ce595f0.rlib: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs

/root/repo/target/debug/deps/libmoss_rtl-a8bb34b59ce595f0.rmeta: crates/rtl/src/lib.rs crates/rtl/src/ast.rs crates/rtl/src/describe.rs crates/rtl/src/error.rs crates/rtl/src/interp.rs crates/rtl/src/lexer.rs crates/rtl/src/optimize.rs crates/rtl/src/parser.rs crates/rtl/src/printer.rs

crates/rtl/src/lib.rs:
crates/rtl/src/ast.rs:
crates/rtl/src/describe.rs:
crates/rtl/src/error.rs:
crates/rtl/src/interp.rs:
crates/rtl/src/lexer.rs:
crates/rtl/src/optimize.rs:
crates/rtl/src/parser.rs:
crates/rtl/src/printer.rs:
