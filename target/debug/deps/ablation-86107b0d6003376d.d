/root/repo/target/debug/deps/ablation-86107b0d6003376d.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-86107b0d6003376d: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
