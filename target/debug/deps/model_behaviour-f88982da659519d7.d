/root/repo/target/debug/deps/model_behaviour-f88982da659519d7.d: crates/bench/../../tests/model_behaviour.rs

/root/repo/target/debug/deps/model_behaviour-f88982da659519d7: crates/bench/../../tests/model_behaviour.rs

crates/bench/../../tests/model_behaviour.rs:
