/root/repo/target/debug/deps/moss_prng-4e892013493e8f68.d: crates/prng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmoss_prng-4e892013493e8f68.rmeta: crates/prng/src/lib.rs Cargo.toml

crates/prng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
