/root/repo/target/debug/deps/models-fdd1335ec846355a.d: crates/bench/benches/models.rs

/root/repo/target/debug/deps/models-fdd1335ec846355a: crates/bench/benches/models.rs

crates/bench/benches/models.rs:
