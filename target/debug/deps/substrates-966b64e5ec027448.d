/root/repo/target/debug/deps/substrates-966b64e5ec027448.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/substrates-966b64e5ec027448: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
