/root/repo/target/debug/deps/census-11886bea2dfe08f3.d: crates/bench/src/bin/census.rs

/root/repo/target/debug/deps/census-11886bea2dfe08f3: crates/bench/src/bin/census.rs

crates/bench/src/bin/census.rs:
