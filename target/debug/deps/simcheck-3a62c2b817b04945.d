/root/repo/target/debug/deps/simcheck-3a62c2b817b04945.d: crates/bench/src/bin/simcheck.rs

/root/repo/target/debug/deps/simcheck-3a62c2b817b04945: crates/bench/src/bin/simcheck.rs

crates/bench/src/bin/simcheck.rs:
