/root/repo/target/debug/deps/table2-30c21245f72434c4.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-30c21245f72434c4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
