/root/repo/target/debug/deps/xtask-54450d6bf96ad32d.d: xtask/src/main.rs

/root/repo/target/debug/deps/xtask-54450d6bf96ad32d: xtask/src/main.rs

xtask/src/main.rs:
