/root/repo/target/debug/deps/census-313acdb9b120f357.d: crates/bench/src/bin/census.rs Cargo.toml

/root/repo/target/debug/deps/libcensus-313acdb9b120f357.rmeta: crates/bench/src/bin/census.rs Cargo.toml

crates/bench/src/bin/census.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
