/root/repo/target/debug/deps/moss_timing-be04b221291a0e7f.d: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs

/root/repo/target/debug/deps/moss_timing-be04b221291a0e7f: crates/timing/src/lib.rs crates/timing/src/hold.rs crates/timing/src/slack.rs crates/timing/src/sta.rs

crates/timing/src/lib.rs:
crates/timing/src/hold.rs:
crates/timing/src/slack.rs:
crates/timing/src/sta.rs:
