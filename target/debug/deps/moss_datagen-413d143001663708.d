/root/repo/target/debug/deps/moss_datagen-413d143001663708.d: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs

/root/repo/target/debug/deps/libmoss_datagen-413d143001663708.rlib: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs

/root/repo/target/debug/deps/libmoss_datagen-413d143001663708.rmeta: crates/datagen/src/lib.rs crates/datagen/src/benchmarks.rs crates/datagen/src/corpus.rs crates/datagen/src/expr.rs crates/datagen/src/extras.rs crates/datagen/src/random.rs

crates/datagen/src/lib.rs:
crates/datagen/src/benchmarks.rs:
crates/datagen/src/corpus.rs:
crates/datagen/src/expr.rs:
crates/datagen/src/extras.rs:
crates/datagen/src/random.rs:
