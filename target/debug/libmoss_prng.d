/root/repo/target/debug/libmoss_prng.rlib: /root/repo/crates/prng/src/lib.rs
