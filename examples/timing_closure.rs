//! Timing-closure scenario: use MOSS's arrival-time predictions to screen
//! design variants before running full STA — the downstream EDA use the
//! paper's intro motivates.
//!
//! Synthesizes several structurally different netlists of the same RTL
//! (different mapping styles, as Design Compiler optimization rounds would
//! produce), predicts each variant's worst DFF arrival with a trained MOSS
//! model, and compares the predicted ranking against exact STA.
//!
//! Run with: `cargo run -p moss-bench --example timing_closure --release`

use moss::{
    CircuitSample, MossConfig, MossModel, MossVariant, SampleOptions, TrainConfig, Trainer,
};
use moss_llm::{EncoderConfig, TextEncoder};
use moss_netlist::CellLibrary;
use moss_synth::SynthOptions;
use moss_tensor::ParamStore;
use moss_timing::{SlackReport, TimingReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = moss_datagen::signed_mac(8, 10);
    let lib = CellLibrary::default();

    // Build samples for four mapping variants of the same RTL.
    let samples: Vec<CircuitSample> = (0..4u64)
        .map(|seed| {
            CircuitSample::build(
                &module,
                &lib,
                &SampleOptions {
                    synth: SynthOptions::variant(seed),
                    sim_cycles: 1024,
                    ..SampleOptions::default()
                },
            )
        })
        .collect::<Result<_, _>>()?;

    let mut store = ParamStore::new();
    let encoder = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
    let model = MossModel::new(MossConfig::small(16, MossVariant::Full), &mut store, 2);
    let preps: Vec<_> = samples
        .iter()
        .map(|s| model.prepare(s, &encoder, &store, &lib, 500.0))
        .collect::<Result<_, _>>()?;

    let mut trainer = Trainer::new(TrainConfig {
        pretrain_epochs: 25,
        align_epochs: 0,
        learning_rate: 3e-3,
        ..TrainConfig::default()
    });
    trainer.pretrain(&model, &mut store, &preps);

    println!("variant  cells  predicted worst AT   exact STA worst AT   min clock period");
    let mut ranked: Vec<(usize, f64, f64)> = Vec::new();
    for (i, (sample, prep)) in samples.iter().zip(&preps).enumerate() {
        let pred = model.predict(&store, prep);
        let predicted_worst = pred.arrival_ns.iter().copied().fold(0.0f32, f32::max) as f64;
        let sta = TimingReport::analyze(&sample.netlist, &lib)?;
        let exact_worst = sta
            .dff_arrivals()
            .iter()
            .map(|&(_, ps)| ps / 1000.0)
            .fold(0.0, f64::max);
        println!(
            "{:>7}  {:>5}  {:>17.3}ns  {:>17.3}ns  {:>13.3}ns",
            i,
            sample.cell_count(),
            predicted_worst,
            exact_worst,
            sta.min_clock_period_ps() / 1000.0,
        );
        ranked.push((i, predicted_worst, exact_worst));
    }

    // Full slack report for the first variant at a 2 ns clock, as a
    // signoff engineer would read it.
    let sta0 = TimingReport::analyze(&samples[0].netlist, &lib)?;
    let slack = SlackReport::against(&sta0, 2_000.0, 30.0);
    println!(
        "\nvariant 0 endpoint report @ 2 ns:\n{}",
        slack.render(&samples[0].netlist, 5)
    );

    // Does the predicted ranking agree with STA's?
    let mut by_pred = ranked.clone();
    by_pred.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let mut by_truth = ranked;
    by_truth.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    let fastest_pred = by_pred[0].0;
    let fastest_true = by_truth[0].0;
    println!(
        "\nfastest variant: predicted #{fastest_pred}, STA #{fastest_true} — {}",
        if fastest_pred == fastest_true {
            "screening agrees with full STA"
        } else {
            "screening disagrees (more training would tighten this)"
        }
    );
    Ok(())
}
