//! Early power estimation without simulation: predict circuit power from
//! structure + RTL context, then validate against the full
//! simulate-then-PrimePower-style flow.
//!
//! Run with: `cargo run -p moss-bench --example power_estimation --release`

use moss::{
    metrics, CircuitSample, MossConfig, MossModel, MossVariant, SampleOptions, TrainConfig, Trainer,
};
use moss_llm::{EncoderConfig, TextEncoder};
use moss_netlist::CellLibrary;
use moss_power::{total_area_um2, PowerReport};
use moss_sim::toggle_rates;
use moss_tensor::ParamStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::default();
    let designs = vec![
        moss_datagen::max_selector(4, 8),
        moss_datagen::prbs_generator(3, 8),
        moss_datagen::error_logger(8, 8),
    ];

    // Reference flow: simulate → activity → power (the "slow" path).
    println!("reference flow (simulate 2k cycles → activity-based power):");
    let mut samples = Vec::new();
    for m in &designs {
        let sample = CircuitSample::build(&m.clone(), &lib, &SampleOptions::default())?;
        let resets: Vec<_> = sample.bindings.iter().map(|b| (b.dff, b.reset)).collect();
        let toggles = toggle_rates(&sample.netlist, &resets, 2048, 7)?;
        let report = PowerReport::estimate(&sample.netlist, &lib, &toggles, 500.0);
        println!(
            "  {:<16} {:>5} cells  {:>8.1} µm²  dyn {:>9.1} nW  leak {:>8.1} nW  total {:>9.1} nW",
            sample.name,
            sample.cell_count(),
            total_area_um2(&sample.netlist, &lib),
            report.total_dynamic_nw(),
            report.total_leakage_nw(),
            report.total_nw(),
        );
        samples.push(sample);
    }

    // Learned flow: train MOSS, predict power with no new simulation.
    let mut store = ParamStore::new();
    let encoder = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
    let model = MossModel::new(MossConfig::small(16, MossVariant::Full), &mut store, 2);
    let preps: Vec<_> = samples
        .iter()
        .map(|s| model.prepare(s, &encoder, &store, &lib, 500.0))
        .collect::<Result<_, _>>()?;
    let mut trainer = Trainer::new(TrainConfig {
        pretrain_epochs: 25,
        align_epochs: 0,
        learning_rate: 3e-3,
        ..TrainConfig::default()
    });
    trainer.pretrain(&model, &mut store, &preps);

    println!("\nlearned flow (MOSS power head):");
    for prep in &preps {
        let pred = model.predict(&store, prep);
        println!(
            "  {:<16} predicted {:>9.1} nW  true {:>9.1} nW  accuracy {:>5.1} %",
            prep.name,
            pred.power_nw,
            prep.true_power_nw,
            metrics::pp_accuracy(&pred, prep) * 100.0,
        );
    }
    Ok(())
}
