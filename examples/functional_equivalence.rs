//! Functional-equivalence screening: the paper's FEP task (Table II).
//!
//! Given a pile of RTL files and a pile of netlists with the pairing lost,
//! recover which netlist implements which RTL by embedding both modalities
//! into MOSS's shared alignment space — the multimodal capability that
//! separates the full model from its ablations.
//!
//! Run with: `cargo run -p moss-bench --example functional_equivalence --release`

use moss::{metrics, MossVariant};
use moss_bench::pipeline::{build_samples, build_world, train_variant, ExperimentConfig};
use moss_bench::run::RunManifest;
use moss_datagen::{random_module, SizeClass};

fn main() {
    let mut manifest = RunManifest::new("functional_equivalence");
    let mut config = ExperimentConfig::tiny();
    config.train.pretrain_epochs = 8;
    config.train.align_epochs = 25;
    let world = build_world(config);

    // Train the alignment on a small corpus…
    let train_modules: Vec<moss_rtl::Module> = (0..6u64)
        .map(|s| random_module(0xa11 + s, SizeClass::Small))
        .collect();
    let train_samples =
        build_samples(&world, &train_modules, &mut manifest).expect("within failure budget");
    println!(
        "training full MOSS with alignment on {} designs…",
        train_samples.len()
    );
    let run = train_variant(&world, MossVariant::Full, &train_samples, &mut manifest)
        .expect("within failure budget");

    // …then shuffle the *training* pairs and recover the pairing.
    let rtl_embs: Vec<Vec<f32>> = run
        .preps
        .iter()
        .map(|p| run.model.rtl_align_vec(&run.store, &world.encoder, p))
        .collect();
    let net_embs: Vec<Vec<f32>> = run
        .preps
        .iter()
        .map(|p| run.model.predict(&run.store, p).netlist_align)
        .collect();

    // Center each modality within the group (as the alignment losses and the
    // FEP metric do) so the similarity structure is visible.
    let center = |embs: &[Vec<f32>]| -> Vec<Vec<f32>> {
        let n = embs.len() as f32;
        let d = embs[0].len();
        let mut mean = vec![0.0f32; d];
        for e in embs {
            for (m, &v) in mean.iter_mut().zip(e) {
                *m += v / n;
            }
        }
        embs.iter()
            .map(|e| e.iter().zip(&mean).map(|(&v, &m)| v - m).collect())
            .collect()
    };
    let rtl_c = center(&rtl_embs);
    let net_c = center(&net_embs);

    println!("\nRTL ↔ netlist centered cosine similarity (rows: RTL, cols: netlists):");
    print!("{:>12}", "");
    for p in &run.preps {
        print!("{:>10}", &p.name[..p.name.len().min(9)]);
    }
    println!();
    for (i, r) in rtl_c.iter().enumerate() {
        print!(
            "{:>12}",
            &run.preps[i].name[..run.preps[i].name.len().min(11)]
        );
        for n in &net_c {
            print!("{:>10.3}", metrics::cosine(r, n));
        }
        println!();
    }

    let acc = metrics::fep_accuracy(&rtl_embs, &net_embs) * 100.0;
    println!(
        "\ntop-1 retrieval accuracy: {acc:.1} % (chance = {:.1} %)",
        100.0 / rtl_embs.len() as f64
    );

    // RNM matching scores confirm the diagonal.
    let s_match = run.model.rnm_score(&run.store, &rtl_embs[0], &net_embs[0]);
    let s_mismatch = run
        .model
        .rnm_score(&run.store, &rtl_embs[0], &net_embs[1 % net_embs.len()]);
    println!("RNM matching head: pair score {s_match:.3} vs non-pair score {s_mismatch:.3}");
}
