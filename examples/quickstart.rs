//! Quickstart: the full MOSS pipeline on one small design.
//!
//! Parses RTL, synthesizes it to a standard-cell netlist, collects ground
//! truth (simulation, timing, power), trains a tiny MOSS model, and prints
//! predictions next to the truth.
//!
//! Run with: `cargo run -p moss-bench --example quickstart --release`

use moss::{
    metrics, CircuitSample, MossConfig, MossModel, MossVariant, SampleOptions, TrainConfig, Trainer,
};
use moss_llm::{EncoderConfig, TextEncoder};
use moss_netlist::{CellLibrary, NetlistStats};
use moss_tensor::ParamStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. RTL in, netlist out. (An LFSR keeps every bit active, which makes
    // the toggle-rate demo legible; see `power_estimation` for a design
    // with skewed activity.)
    let module = moss_rtl::parse(
        "module scrambler(input clk, input [7:0] din, output [7:0] dout);
           reg [7:0] lfsr = 1;
           always @(posedge clk) lfsr <= {lfsr[6:0], lfsr[7] ^ lfsr[5] ^ lfsr[4] ^ lfsr[3]};
           assign dout = din ^ lfsr;
         endmodule",
    )?;
    let lib = CellLibrary::default();
    let sample = CircuitSample::build(&module, &lib, &SampleOptions::default())?;
    println!(
        "synthesized '{}': {}",
        sample.name,
        NetlistStats::of(&sample.netlist)
    );

    // 2. Ground truth came along for free.
    println!(
        "ground truth: total power {:.1} nW, worst DFF arrival {:.3} ns",
        sample.labels.total_power_nw,
        sample
            .labels
            .arrival_ns
            .iter()
            .map(|&(_, a)| a)
            .fold(0.0f32, f32::max),
    );

    // 3. A text encoder (stand-in for the paper's fine-tuned Yi-Coder).
    let mut store = ParamStore::new();
    let encoder = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);

    // 4. The MOSS model: LLM-enhanced features, adaptive aggregation,
    //    two-phase propagation.
    let model = MossModel::new(MossConfig::small(16, MossVariant::Full), &mut store, 2);
    let prep = model.prepare(&sample, &encoder, &store, &lib, 500.0)?;
    println!(
        "prepared: {} cells, {} DFF anchors, {} aggregator clusters",
        prep.cell_nodes.len(),
        prep.dff_nodes.len(),
        prep.circuit.clusters.count,
    );

    // 5. Train briefly and predict.
    let mut trainer = Trainer::new(TrainConfig {
        pretrain_epochs: 60,
        align_epochs: 0,
        learning_rate: 3e-3,
        ..TrainConfig::default()
    });
    let history = trainer.pretrain(&model, &mut store, std::slice::from_ref(&prep));
    println!(
        "pre-training loss: {:.4} → {:.4}",
        history.first().map(|h| h.total).unwrap_or(0.0),
        history.last().map(|h| h.total).unwrap_or(0.0),
    );

    let pred = model.predict(&store, &prep);
    println!(
        "toggle-rate accuracy:  {:5.1} %",
        metrics::trp_accuracy(&pred, &prep) * 100.0
    );
    println!(
        "arrival-time accuracy: {:5.1} %",
        metrics::atp_accuracy(&pred, &prep) * 100.0
    );
    println!(
        "power: predicted {:.1} nW vs true {:.1} nW ({:4.1} % accuracy)",
        pred.power_nw,
        prep.true_power_nw,
        metrics::pp_accuracy(&pred, &prep) * 100.0
    );
    Ok(())
}
