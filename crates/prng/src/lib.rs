//! # moss-prng
//!
//! Deterministic, dependency-free pseudo-random number generation for the
//! MOSS workspace. The API mirrors the subset of the `rand` crate the
//! workspace uses (`StdRng::seed_from_u64`, `gen_range`, `gen_bool`,
//! `shuffle`) so call sites read identically, but the implementation is
//! fully in-repo: seeded experiments must reproduce bit-for-bit on any
//! machine, with no external crate in the supply chain.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the standard
//! construction recommended by its authors. Streams are stable across
//! platforms and releases; checked-in experiment results depend on them.
//!
//! ## Example
//!
//! ```
//! use moss_prng::rngs::StdRng;
//! use moss_prng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a = rng.gen_range(0..10);
//! assert!((0..10).contains(&a));
//! let b = rng.gen_range(-1.0f32..=1.0);
//! assert!((-1.0..=1.0).contains(&b));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// Constructs a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type (the `gen_range` argument).
///
/// Generic over the output type — like `rand`'s trait of the same name —
/// so a `let w: u32 = rng.gen_range(1..=8)` annotation types the literals.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Core random-value interface.
pub trait Rng {
    /// The next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        // 53 uniform mantissa bits, exactly representable in f64.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, and high quality; the exact output stream is part of
    /// the workspace's reproducibility contract.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors; an all-zero state (the
            // one invalid state) cannot be produced this way.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a stream
        /// mid-sequence. Restoring via [`StdRng::from_state`] continues the
        /// exact output sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] output.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro256++ cannot leave
        /// (and [`SeedableRng::seed_from_u64`] cannot produce).
        pub fn from_state(s: [u64; 4]) -> StdRng {
            assert!(s != [0; 4], "the all-zero state is invalid");
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every u64 is valid.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Slice utilities (the `rand::seq` subset the workspace uses).
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(1..=8);
            assert!((1..=8).contains(&w));
            let u = rng.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&v));
            let w = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values drawn");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "order changed");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "same elements");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5..5);
    }
}
