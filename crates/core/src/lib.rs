//! # moss
//!
//! The core MOSS framework (DAC 2025): multi-modal representation learning
//! on sequential circuits, fusing a fine-tuned text encoder (the LLM
//! modality over RTL code and cell descriptions) with a circuit GNN (the
//! netlist modality) through LLM-enhanced DFF node features, an adaptive
//! clustering-based aggregator, two-phase asynchronous temporal
//! propagation, and a local + global alignment strategy.
//!
//! Main pieces:
//!
//! - [`CircuitSample`]: the data pipeline — RTL → synthesis → simulated /
//!   analyzed ground truth (toggle rates, signal probabilities, per-DFF
//!   arrival times, power);
//! - [`build_node_features`]: structural ⊕ LLM features with register-
//!   prompt overlays on DFF anchor points (Fig. 2A);
//! - [`MossModel`]: the GNN with task heads, RrNdM register-DFF matching,
//!   and the CLIP-style RNC/RNM global alignment of Fig. 6;
//! - [`MossVariant`]: the paper's ablations (w/o A, w/o AA, w/o FAA);
//! - [`DeepSeq2`]: the reimplemented baseline;
//! - [`Trainer`]: two-phase multi-task training with dynamic loss balancing
//!   (Eq. 2), producing the Fig. 7 / Fig. 8 loss curves;
//! - [`metrics`]: accuracy = 1 − mean relative error (Eq. 3) plus FEP
//!   retrieval accuracy.
//!
//! ## Example
//!
//! ```no_run
//! use moss::{CircuitSample, MossConfig, MossModel, MossVariant, SampleOptions,
//!            TrainConfig, Trainer};
//! use moss_llm::{EncoderConfig, TextEncoder};
//! use moss_netlist::CellLibrary;
//! use moss_tensor::ParamStore;
//!
//! let module = moss_rtl::parse(
//!     "module cnt(input clk, output [3:0] q);
//!        reg [3:0] s = 0;
//!        always @(posedge clk) s <= s + 4'd1;
//!        assign q = s;
//!      endmodule")?;
//! let lib = CellLibrary::default();
//! let sample = CircuitSample::build(&module, &lib, &SampleOptions::default())?;
//!
//! let mut store = ParamStore::new();
//! let encoder = TextEncoder::new(EncoderConfig::small(), &mut store, 1);
//! let model = MossModel::new(MossConfig::small(32, MossVariant::Full), &mut store, 2);
//! let prep = model.prepare(&sample, &encoder, &store, &lib, 500.0)?;
//!
//! let mut trainer = Trainer::new(TrainConfig::default());
//! let curves = trainer.pretrain(&model, &mut store, &[prep]);
//! println!("final pre-training loss: {}", curves.last().unwrap().total);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod deepseq2;
mod embedder;
mod features;
mod ingest;
pub mod metrics;
mod model;
mod sample;
mod trainer;

pub use checkpoint::{
    load_checkpoint, load_checkpoint_file, load_checkpoint_file_validated,
    load_training_checkpoint, load_training_checkpoint_file, save_checkpoint, save_checkpoint_file,
    save_training_checkpoint, save_training_checkpoint_file, validate_params_finite,
};
pub use deepseq2::{DeepSeq2, DeepSeq2Config, DeepSeq2Losses};
pub use embedder::NetlistEmbedder;
pub use features::{build_node_features, FeatureOptions, NodeFeatures, STRUCT_DIM};
pub use ingest::bindings_from_design;
pub use model::{LocalLosses, MossConfig, MossModel, MossVariant, Predictions, Prepared};
pub use sample::{
    canonical_reset_hash, labels_from_record, labels_to_record, CircuitSample, LabeledCircuit,
    Labels, SampleOptions,
};
pub use trainer::{AlignEpoch, DynamicWeights, PretrainEpoch, TrainConfig, Trainer};
