//! Evaluation metrics: `accuracy = 1 − mean relative error` (paper Eq. 3)
//! for the regression tasks, and retrieval accuracy for functional
//! equivalence prediction (FEP).

use crate::model::{Predictions, Prepared};

/// `1 − mean(|pred − true| / max(|true|, floor))`, clamped to `[0, 1]`.
///
/// The floor keeps near-zero targets (an idle cell's toggle rate) from
/// blowing the relative error up, matching how commercial accuracy reports
/// treat tiny denominators. A non-finite prediction — a diverged model
/// emitting NaN/∞ — counts as maximal error (relative error 1, accuracy
/// contribution 0) instead of propagating NaN through the mean, so one bad
/// node (or one diverged model) cannot poison a whole accuracy table.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn relative_accuracy(pred: &[f32], truth: &[f32], floor: f32) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    if pred.is_empty() {
        return 1.0;
    }
    let mean_err: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            // A non-finite prediction counts as maximal error (accuracy
            // contribution 0) rather than poisoning the whole mean with
            // NaN. Finite errors stay uncapped — seed-metric semantics.
            let err = ((p - t).abs() / t.abs().max(floor)) as f64;
            if err.is_finite() {
                err
            } else {
                1.0
            }
        })
        .sum::<f64>()
        / pred.len() as f64;
    (1.0 - mean_err).clamp(0.0, 1.0)
}

/// Arrival-time prediction accuracy (per-DFF, floor 0.05 ns).
pub fn atp_accuracy(pred: &Predictions, prep: &Prepared) -> f64 {
    relative_accuracy(&pred.arrival_ns, prep.arrival_target.data(), 0.05)
}

/// Toggle-rate prediction accuracy (per-cell, floor 0.05).
pub fn trp_accuracy(pred: &Predictions, prep: &Prepared) -> f64 {
    relative_accuracy(&pred.toggle, prep.toggle_target.data(), 0.05)
}

/// Power prediction accuracy (circuit-level).
pub fn pp_accuracy(pred: &Predictions, prep: &Prepared) -> f64 {
    power_accuracy(pred.power_nw, prep.true_power_nw)
}

/// Scalar core of [`pp_accuracy`]: `1 − |pred − true| / true`, clamped to
/// `[0, 1]`; a non-finite prediction scores 0 rather than NaN.
pub fn power_accuracy(pred_nw: f64, true_nw: f64) -> f64 {
    if true_nw <= 0.0 {
        return 1.0;
    }
    let err = (pred_nw - true_nw).abs() / true_nw;
    if !err.is_finite() {
        return 0.0;
    }
    (1.0 - err).clamp(0.0, 1.0)
}

/// Functional-equivalence prediction accuracy: top-1 retrieval.
///
/// For each RTL embedding, the matching netlist is predicted as the highest
/// cosine-similarity candidate; the score is the fraction of correct
/// matches (paper Table II: "the rate of correctly identifying functionally
/// equivalent RTL-netlist pairs").
///
/// # Panics
///
/// Panics if the two sets have different sizes.
pub fn fep_accuracy(rtl_embs: &[Vec<f32>], netlist_embs: &[Vec<f32>]) -> f64 {
    assert_eq!(rtl_embs.len(), netlist_embs.len(), "paired sets");
    let n = rtl_embs.len();
    if n == 0 {
        return 1.0;
    }
    // Center each modality within the evaluation group, mirroring the
    // batch-centering the alignment losses train with (and standard
    // gallery-mean centering in retrieval).
    let rtl_embs = center(rtl_embs);
    let netlist_embs = center(netlist_embs);
    let mut correct = 0usize;
    for (i, r) in rtl_embs.iter().enumerate() {
        let best = netlist_embs
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| cosine(r, a).total_cmp(&cosine(r, b)))
            .map(|(j, _)| j)
            .expect("nonempty");
        if best == i {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

fn center(embs: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let d = embs.first().map_or(0, Vec::len);
    // The gallery mean is computed per dimension over *finite* values only:
    // a diverged embedding (NaN/∞ from a broken model) must not poison the
    // centering of every other embedding in the evaluation group.
    let mut mean = vec![0.0f32; d];
    let mut count = vec![0u32; d];
    for e in embs {
        for ((m, c), &v) in mean.iter_mut().zip(&mut count).zip(e) {
            if v.is_finite() {
                *m += v;
                *c += 1;
            }
        }
    }
    for (m, &c) in mean.iter_mut().zip(&count) {
        *m /= c.max(1) as f32;
    }
    embs.iter()
        .map(|e| e.iter().zip(&mean).map(|(&v, &m)| v - m).collect())
        .collect()
}

/// Cosine similarity of two equal-length vectors. Total: non-finite inputs
/// yield −1 (the worst similarity) instead of NaN, so retrieval over a set
/// containing one diverged embedding neither panics nor prefers it.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    let c = dot / (na * nb).max(1e-12);
    if c.is_finite() {
        c
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_one() {
        let t = [0.5f32, 0.2, 0.9];
        assert_eq!(relative_accuracy(&t, &t, 0.05), 1.0);
    }

    #[test]
    fn accuracy_decreases_with_error() {
        let truth = [1.0f32, 1.0];
        let close = [0.9f32, 1.1];
        let far = [0.5f32, 1.5];
        let a_close = relative_accuracy(&close, &truth, 0.05);
        let a_far = relative_accuracy(&far, &truth, 0.05);
        assert!(a_close > a_far);
        assert!((a_close - 0.9).abs() < 1e-6);
        assert!((a_far - 0.5).abs() < 1e-6);
    }

    #[test]
    fn floor_guards_zero_targets() {
        let truth = [0.0f32];
        let pred = [0.01f32];
        let a = relative_accuracy(&pred, &truth, 0.05);
        assert!(a > 0.7, "small absolute error on zero target: {a}");
    }

    #[test]
    fn accuracy_clamped_to_unit_interval() {
        let truth = [0.1f32];
        let pred = [10.0f32];
        assert_eq!(relative_accuracy(&pred, &truth, 0.05), 0.0);
    }

    #[test]
    fn fep_identity_embeddings_score_one() {
        let embs: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..4).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        assert_eq!(fep_accuracy(&embs, &embs), 1.0);
    }

    #[test]
    fn fep_shuffled_embeddings_score_low() {
        let rtl: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..4).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        let mut net = rtl.clone();
        net.rotate_left(1);
        assert_eq!(fep_accuracy(&rtl, &net), 0.0);
    }

    #[test]
    fn nan_predictions_score_zero_not_nan() {
        // A diverged model emitting NaN/∞ must score 0, not poison the
        // whole mean with NaN.
        let truth = [1.0f32, 1.0];
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let a = relative_accuracy(&[bad, bad], &truth, 0.05);
            assert_eq!(a, 0.0, "non-finite predictions must score 0, got {a}");
            // One bad element costs exactly its share of the mean.
            let mixed = relative_accuracy(&[bad, 1.0], &truth, 0.05);
            assert!((mixed - 0.5).abs() < 1e-9, "mixed accuracy {mixed}");
            assert!(mixed.is_finite());
        }
    }

    #[test]
    fn nan_power_scores_zero() {
        assert_eq!(power_accuracy(f64::NAN, 10.0), 0.0);
        assert_eq!(power_accuracy(f64::INFINITY, 10.0), 0.0);
        assert!((power_accuracy(9.0, 10.0) - 0.9).abs() < 1e-12);
        assert_eq!(power_accuracy(f64::NAN, 0.0), 1.0);
    }

    #[test]
    fn fep_survives_nan_embeddings() {
        // One diverged netlist embedding: FEP must not panic, must not
        // return NaN, and must still credit the three intact pairs.
        let rtl: Vec<Vec<f32>> = (0..4)
            .map(|i| (0..4).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        let mut net = rtl.clone();
        net[2] = vec![f32::NAN; 4];
        let acc = fep_accuracy(&rtl, &net);
        assert!(acc.is_finite());
        assert_eq!(acc, 0.75, "intact pairs still retrieve: {acc}");
        // Fully-NaN gallery: still total, still finite.
        let all_nan: Vec<Vec<f32>> = (0..4).map(|_| vec![f32::NAN; 4]).collect();
        let acc = fep_accuracy(&rtl, &all_nan);
        assert!(acc.is_finite());
    }

    #[test]
    fn cosine_is_total_on_non_finite_input() {
        assert_eq!(cosine(&[f32::NAN, 0.0], &[1.0, 0.0]), -1.0);
        assert_eq!(cosine(&[1.0, f32::INFINITY], &[1.0, 1.0]), -1.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }
}
