//! Reimplementation of the DeepSeq2 baseline (Khan et al., arXiv
//! 2411.00530) per its public description: uniform (type-agnostic) gated
//! aggregation, asynchronous level-by-level updates with a two-phase
//! forward/turnaround schedule, *disentangled* function/timing sub-states,
//! and compressed-truth-table supervision — which we realize as signal-
//! probability supervision, the canonical single-number compression of a
//! node's truth table under random inputs.
//!
//! The baseline is evaluated on the same standard-cell graphs as MOSS
//! (rather than its native AIGs, which [`moss_synth::lower_to_aig`]
//! produces) so its Table I numbers are directly comparable; this choice
//! favors the baseline, making MOSS's margin conservative.

use moss_gnn::{CircuitGraph, Clustering, StateTable};
use moss_netlist::{CellLibrary, NodeKind};
use moss_tensor::{Graph, ParamId, ParamStore, Tensor, Var};

use crate::features::{build_node_features, FeatureOptions, STRUCT_DIM};
use crate::model::{Predictions, Prepared};
use crate::sample::CircuitSample;

/// DeepSeq2 hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeepSeq2Config {
    /// Width of *each* disentangled sub-state (function and timing).
    pub d_state: usize,
    /// Two-phase propagation rounds.
    pub iterations: usize,
    /// Feature width placeholder so prepared circuits line up with the MOSS
    /// pipeline (the LLM slots are zeroed).
    pub d_llm: usize,
}

impl DeepSeq2Config {
    /// Small CPU-friendly defaults.
    pub fn small(d_llm: usize) -> DeepSeq2Config {
        DeepSeq2Config {
            d_state: 8,
            iterations: 4,
            d_llm,
        }
    }
}

/// The baseline model.
#[derive(Debug, Clone)]
pub struct DeepSeq2 {
    config: DeepSeq2Config,
    w_in: ParamId,
    b_in: ParamId,
    // Gated update (shared across all node types — the uniform aggregator).
    wz: ParamId,
    uz: ParamId,
    bz: ParamId,
    wh: ParamId,
    uh: ParamId,
    bh: ParamId,
    // Heads: function sub-state drives toggle/probability/power, timing
    // sub-state drives arrival (the disentanglement).
    w_toggle: ParamId,
    b_toggle: ParamId,
    w_prob: ParamId,
    b_prob: ParamId,
    w_at: ParamId,
    b_at: ParamId,
    w_act: ParamId,
    b_act: ParamId,
}

/// DeepSeq2 loss handles.
#[derive(Debug, Clone, Copy)]
pub struct DeepSeq2Losses {
    /// Toggle loss.
    pub toggle: Var,
    /// Probability (compressed-truth-table) loss.
    pub probability: Var,
    /// Arrival-time loss.
    pub arrival: Var,
    /// Power loss.
    pub power: Var,
}

impl DeepSeq2 {
    /// Registers parameters into `store`.
    pub fn new(config: DeepSeq2Config, store: &mut ParamStore, seed: u64) -> DeepSeq2 {
        let d_in = STRUCT_DIM + config.d_llm;
        let d = config.d_state * 2; // function ⊕ timing
        let mk = |store: &mut ParamStore, name: &str, r: usize, c: usize, s: u64| {
            store.get_or_add(name, Tensor::xavier(r, c, s))
        };
        DeepSeq2 {
            w_in: mk(store, "ds2.w_in", d_in, d, seed),
            b_in: store.get_or_add("ds2.b_in", Tensor::zeros(1, d)),
            wz: mk(store, "ds2.wz", d, d, seed + 1),
            uz: mk(store, "ds2.uz", d, d, seed + 2),
            bz: store.get_or_add("ds2.bz", Tensor::zeros(1, d)),
            wh: mk(store, "ds2.wh", d, d, seed + 3),
            uh: mk(store, "ds2.uh", d, d, seed + 4),
            bh: store.get_or_add("ds2.bh", Tensor::zeros(1, d)),
            w_toggle: mk(store, "ds2.head.toggle.w", config.d_state, 1, seed + 5),
            b_toggle: store.get_or_add("ds2.head.toggle.b", Tensor::zeros(1, 1)),
            w_prob: mk(store, "ds2.head.prob.w", config.d_state, 1, seed + 6),
            b_prob: store.get_or_add("ds2.head.prob.b", Tensor::zeros(1, 1)),
            w_at: mk(store, "ds2.head.at.w", config.d_state, 1, seed + 7),
            b_at: store.get_or_add("ds2.head.at.b", Tensor::zeros(1, 1)),
            w_act: mk(store, "ds2.head.act.w", config.d_state, 1, seed + 8),
            b_act: store.get_or_add("ds2.head.act.b", Tensor::zeros(1, 1)),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DeepSeq2Config {
        &self.config
    }

    /// Prepares a sample for the baseline: same pipeline as MOSS but with
    /// LLM features disabled and a single uniform aggregator cluster.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist cannot be levelized.
    pub fn prepare(
        &self,
        sample: &CircuitSample,
        encoder: &moss_llm::TextEncoder,
        store: &ParamStore,
        lib: &CellLibrary,
        clock_mhz: f64,
    ) -> Result<Prepared, moss_netlist::NetlistError> {
        // Reuse the MOSS preparation minus LLM features and clustering.
        let features = build_node_features(
            &sample.netlist,
            encoder,
            store,
            &sample.register_descs,
            &sample.bindings,
            &FeatureOptions {
                llm_enhancement: false,
            },
        )?;
        let n = sample.netlist.node_count();
        let circuit = CircuitGraph::new(
            &sample.netlist,
            features.matrix,
            Clustering {
                assignment: vec![0; n],
                count: 1,
            },
        )?;
        let cell_nodes: Vec<usize> = sample
            .netlist
            .node_ids()
            .filter(|&id| matches!(sample.netlist.kind(id), NodeKind::Cell(_)))
            .map(|id| id.index())
            .collect();
        let dff_nodes: Vec<usize> = sample.labels.arrival_ns.iter().map(|&(i, _)| i).collect();
        let pick = |v: &[f32]| -> Vec<f32> { cell_nodes.iter().map(|&i| v[i]).collect() };
        Ok(Prepared {
            name: sample.name.clone(),
            toggle_target: Tensor::from_vec(pick(&sample.labels.toggle), cell_nodes.len(), 1),
            prob_target: Tensor::from_vec(pick(&sample.labels.probability), cell_nodes.len(), 1),
            arrival_target: Tensor::from_vec(
                sample.labels.arrival_ns.iter().map(|&(_, a)| a).collect(),
                dff_nodes.len(),
                1,
            ),
            energy_vec: Tensor::from_vec(
                cell_nodes
                    .iter()
                    .map(
                        |&i| match sample.netlist.kind(moss_netlist::NodeId::new(i)) {
                            NodeKind::Cell(k) => {
                                lib.timing(k).switch_energy_fj as f32 * clock_mhz as f32
                            }
                            _ => 0.0,
                        },
                    )
                    .collect(),
                cell_nodes.len(),
                1,
            ),
            leakage_nw: sample.labels.leakage_nw,
            true_power_nw: sample.labels.total_power_nw,
            reg_embs: Tensor::zeros(1, self.config.d_llm),
            dff_reg_index: vec![0; dff_nodes.len()],
            rtl_emb: Tensor::zeros(1, self.config.d_llm),
            rtl_windows: Vec::new(),
            circuit,
            cell_nodes,
            dff_nodes,
        })
    }

    /// Forward pass: gated uniform aggregation over the two-phase schedule.
    fn forward(&self, g: &mut Graph, store: &ParamStore, circuit: &CircuitGraph) -> Var {
        let x = g.input(circuit.features.clone());
        let w_in = g.param(self.w_in, store);
        let b_in = g.param(self.b_in, store);
        let proj = g.matmul(x, w_in);
        let proj = g.add_row(proj, b_in);
        let h0 = g.tanh(proj);
        let (wz, uz, bz) = (
            g.param(self.wz, store),
            g.param(self.uz, store),
            g.param(self.bz, store),
        );
        let (wh, uh, bh) = (
            g.param(self.wh, store),
            g.param(self.uh, store),
            g.param(self.bh, store),
        );
        let d = self.config.d_state * 2;

        let mut table = StateTable::new(h0, circuit.node_count);
        for _ in 0..self.config.iterations {
            for group in circuit
                .comb_schedule
                .iter()
                .chain(circuit.dff_schedule.iter())
            {
                if group.arity == 0 {
                    continue;
                }
                let h_v = table.gather(g, &group.nodes);
                // Uniform mean aggregation over fanins.
                let mut msg = table.gather(g, &group.fanins[0]);
                for p in 1..group.arity {
                    let m = table.gather(g, &group.fanins[p]);
                    msg = g.add(msg, m);
                }
                let msg = g.scale(msg, 1.0 / group.arity as f32);
                // GRU-style gate.
                let hz = g.matmul(h_v, wz);
                let mz = g.matmul(msg, uz);
                let zsum = g.add(hz, mz);
                let zsum = g.add_row(zsum, bz);
                let z = g.sigmoid(zsum);
                let hh = g.matmul(h_v, wh);
                let mh = g.matmul(msg, uh);
                let hsum = g.add(hh, mh);
                let hsum = g.add_row(hsum, bh);
                let cand = g.tanh(hsum);
                let ones = g.input(Tensor::full(group.nodes.len(), d, 1.0));
                let keep = g.sub(ones, z);
                let a = g.mul(keep, h_v);
                let b_ = g.mul(z, cand);
                let new = g.add(a, b_);
                table.update(new, &group.nodes);
            }
        }
        table.assemble(g)
    }

    /// Builds losses for one prepared circuit.
    pub fn losses(&self, g: &mut Graph, store: &ParamStore, prep: &Prepared) -> DeepSeq2Losses {
        let states = self.forward(g, store, &prep.circuit);
        let ds = self.config.d_state;
        let cells = g.gather_rows(states, &prep.cell_nodes);
        let func = g.slice_cols(cells, 0, ds);
        let toggle_pred = self.head(g, store, func, self.w_toggle, self.b_toggle, true);
        let prob_pred = self.head(g, store, func, self.w_prob, self.b_prob, true);
        let dffs = g.gather_rows(states, &prep.dff_nodes);
        let timing = g.slice_cols(dffs, ds, ds);
        let at_pred = self.head(g, store, timing, self.w_at, self.b_at, false);
        let act = self.head(g, store, func, self.w_act, self.b_act, true);
        let energy = g.input(prep.energy_vec.clone());
        let dyn_nw = g.mul(act, energy);
        let total_dyn = g.sum_all(dyn_nw);
        let scale = 1.0 / prep.true_power_nw.max(1e-9) as f32;
        let dyn_ratio = g.scale(total_dyn, scale);
        let leak = g.input(Tensor::from_rows(&[&[prep.leakage_nw as f32 * scale]]));
        let total_ratio = g.add(dyn_ratio, leak);

        let toggle_w = prep.toggle_target.map(|t| 1.0 / t.abs().max(0.05));
        let at_w = prep.arrival_target.map(|t| 1.0 / t.abs().max(0.05));
        DeepSeq2Losses {
            toggle: g.smooth_l1_weighted(toggle_pred, prep.toggle_target.clone(), toggle_w),
            probability: g.smooth_l1(prob_pred, prep.prob_target.clone()),
            arrival: g.smooth_l1_weighted(at_pred, prep.arrival_target.clone(), at_w),
            power: g.smooth_l1(total_ratio, Tensor::from_rows(&[&[1.0]])),
        }
    }

    /// Inference predictions (same shape as the MOSS model's).
    pub fn predict(&self, store: &ParamStore, prep: &Prepared) -> Predictions {
        let mut g = Graph::new();
        let states = self.forward(&mut g, store, &prep.circuit);
        let ds = self.config.d_state;
        let cells = g.gather_rows(states, &prep.cell_nodes);
        let func = g.slice_cols(cells, 0, ds);
        let toggle_pred = self.head(&mut g, store, func, self.w_toggle, self.b_toggle, true);
        let dffs = g.gather_rows(states, &prep.dff_nodes);
        let timing = g.slice_cols(dffs, ds, ds);
        let at_pred = self.head(&mut g, store, timing, self.w_at, self.b_at, false);
        let act = self.head(&mut g, store, func, self.w_act, self.b_act, true);
        let energy = g.input(prep.energy_vec.clone());
        let dyn_nw = g.mul(act, energy);
        let total_dyn = g.sum_all(dyn_nw);
        Predictions {
            toggle: g.value(toggle_pred).data().to_vec(),
            arrival_ns: g
                .value(at_pred)
                .data()
                .iter()
                .map(|&a| a.max(0.0))
                .collect(),
            power_nw: g.value(total_dyn).get(0, 0) as f64 + prep.leakage_nw,
            netlist_align: Vec::new(),
        }
    }

    fn head(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        states: Var,
        w: ParamId,
        b: ParamId,
        squash: bool,
    ) -> Var {
        let wv = g.param(w, store);
        let bv = g.param(b, store);
        let o = g.matmul(states, wv);
        let o = g.add_row(o, bv);
        if squash {
            g.sigmoid(o)
        } else {
            o
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleOptions;
    use moss_llm::{EncoderConfig, TextEncoder};

    fn setup() -> (DeepSeq2, ParamStore, Prepared) {
        let m = moss_rtl::parse(
            "module t(input clk, input [2:0] d, output [2:0] q);
               reg [2:0] s = 0;
               always @(posedge clk) s <= s ^ d;
               assign q = s;
             endmodule",
        )
        .unwrap();
        let lib = CellLibrary::default();
        let sample = CircuitSample::build(
            &m,
            &lib,
            &SampleOptions {
                sim_cycles: 128,
                ..SampleOptions::default()
            },
        )
        .unwrap();
        let mut store = ParamStore::new();
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = DeepSeq2::new(DeepSeq2Config::small(16), &mut store, 7);
        let prep = model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap();
        (model, store, prep)
    }

    #[test]
    fn losses_finite_and_trainable() {
        let (model, mut store, prep) = setup();
        let mut opt = moss_tensor::Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..15 {
            let mut g = Graph::new();
            let l = model.losses(&mut g, &store, &prep);
            let s1 = g.add(l.toggle, l.probability);
            let s2 = g.add(l.arrival, l.power);
            let total = g.add(s1, s2);
            last = g.value(total).get(0, 0);
            first.get_or_insert(last);
            assert!(last.is_finite());
            let grads = g.backward(total);
            opt.step(&mut store, &grads);
        }
        assert!(last < first.unwrap());
    }

    #[test]
    fn predictions_match_label_shapes() {
        let (model, store, prep) = setup();
        let p = model.predict(&store, &prep);
        assert_eq!(p.toggle.len(), prep.cell_nodes.len());
        assert_eq!(p.arrival_ns.len(), prep.dff_nodes.len());
        assert!(p.power_nw > 0.0);
    }
}
