//! LLM-enhanced node feature construction (paper Fig. 2A / Fig. 4a).
//!
//! Every node gets structural features (one-hot cell class, fan-in/fan-out,
//! level, role flags) concatenated with the LLM embedding of its cell
//! datasheet description. DFF "anchor points" additionally get the LLM
//! embedding of their register-description prompt *overlaid* (added) onto
//! the cell-description slot, exactly as §IV-B describes.

use std::collections::HashMap;

use moss_llm::TextEncoder;
use moss_netlist::{CellKind, Levelization, Netlist, NodeKind};
use moss_rtl::RegisterDescription;
use moss_synth::DffBinding;
use moss_tensor::{ParamStore, Tensor};

/// Width of the structural feature block.
pub const STRUCT_DIM: usize = CellKind::ALL.len() + 8;

/// Assembled node features plus the raw pieces other stages need.
#[derive(Debug, Clone)]
pub struct NodeFeatures {
    /// Feature matrix, `node_count × (STRUCT_DIM + d_llm)`.
    pub matrix: Tensor,
    /// The LLM slice per node (used for adaptive-aggregator clustering).
    pub llm_vectors: Vec<Vec<f32>>,
    /// `(fan_in, fan_out)` per node (clustering's structural signal).
    pub structure_pairs: Vec<(f32, f32)>,
    /// LLM embedding width used.
    pub d_llm: usize,
}

/// Feature construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureOptions {
    /// Include LLM embeddings (the "F" in the w/o FAA ablation). When
    /// disabled the LLM slots are zero and clustering sees only one-hot
    /// cell classes.
    pub llm_enhancement: bool,
}

impl Default for FeatureOptions {
    fn default() -> Self {
        FeatureOptions {
            llm_enhancement: true,
        }
    }
}

/// Builds node features for a synthesized netlist.
///
/// `register_descs` are the RTL register prompts (from
/// [`moss_rtl::describe_registers`]) and `bindings` map DFFs to register
/// bits (from synthesis); both come from the same design.
///
/// # Errors
///
/// Returns an error if the netlist cannot be levelized.
pub fn build_node_features(
    netlist: &Netlist,
    encoder: &TextEncoder,
    store: &ParamStore,
    register_descs: &[RegisterDescription],
    bindings: &[DffBinding],
    options: &FeatureOptions,
) -> Result<NodeFeatures, moss_netlist::NetlistError> {
    let d_llm = encoder.config().d_model;

    // Cache cell-description embeddings per kind (the expensive part);
    // `embed_batch` fans the independent forwards out over the persistent
    // moss-tensor thread pool.
    let mut kind_emb: HashMap<CellKind, Vec<f32>> = HashMap::new();
    if options.llm_enhancement {
        let descs: Vec<&str> = CellKind::ALL.iter().map(|k| k.description()).collect();
        let embs = encoder.embed_batch(store, &descs);
        for (kind, e) in CellKind::ALL.into_iter().zip(embs) {
            kind_emb.insert(kind, e.data().to_vec());
        }
    }
    // Register-prompt embeddings per register name.
    let mut reg_emb: HashMap<String, Vec<f32>> = HashMap::new();
    if options.llm_enhancement {
        let prompts: Vec<&str> = register_descs.iter().map(|rd| rd.prompt.as_str()).collect();
        let embs = encoder.embed_batch(store, &prompts);
        for (rd, e) in register_descs.iter().zip(embs) {
            reg_emb.insert(rd.name.clone(), e.data().to_vec());
        }
    }
    let dff_to_reg: HashMap<usize, String> = bindings
        .iter()
        .map(|b| (b.dff.index(), b.register_name.clone()))
        .collect();

    build_node_features_with(netlist, d_llm, &kind_emb, &reg_emb, &dff_to_reg, options)
}

/// The table-driven core of [`build_node_features`]: structural features
/// plus LLM lookups from *precomputed* embedding maps. A serving layer
/// precomputes the (circuit-independent) cell-kind embeddings once at
/// startup and calls this per request, so no encoder forward pass sits on
/// the request path; the training pipeline goes through the public wrapper
/// above. One shared implementation keeps the two paths bit-identical.
pub(crate) fn build_node_features_with(
    netlist: &Netlist,
    d_llm: usize,
    kind_emb: &HashMap<CellKind, Vec<f32>>,
    reg_emb: &HashMap<String, Vec<f32>>,
    dff_to_reg: &HashMap<usize, String>,
    options: &FeatureOptions,
) -> Result<NodeFeatures, moss_netlist::NetlistError> {
    let levels = Levelization::of(netlist)?;
    let n = netlist.node_count();
    let max_level = levels.max_level().max(1) as f32;

    let mut matrix = Tensor::zeros(n, STRUCT_DIM + d_llm);
    let mut llm_vectors = Vec::with_capacity(n);
    let mut structure_pairs = Vec::with_capacity(n);
    for id in netlist.node_ids() {
        let i = id.index();
        let fan_in = netlist.fanins(id).len() as f32;
        let fan_out = netlist.fanouts(id).len() as f32;
        structure_pairs.push((fan_in, fan_out));

        // Structural block.
        match netlist.kind(id) {
            NodeKind::Cell(kind) => matrix.set(i, kind.index(), 1.0),
            NodeKind::PrimaryInput => matrix.set(i, CellKind::ALL.len(), 0.0),
            NodeKind::PrimaryOutput => {}
        }
        let base = CellKind::ALL.len();
        matrix.set(i, base, (fan_in / 3.0).min(2.0));
        matrix.set(i, base + 1, (fan_out / 8.0).min(2.0));
        matrix.set(i, base + 2, levels.level(id) as f32 / max_level);
        matrix.set(i, base + 3, netlist.kind(id).is_dff() as u8 as f32);
        matrix.set(
            i,
            base + 4,
            (netlist.kind(id) == NodeKind::PrimaryInput) as u8 as f32,
        );
        matrix.set(
            i,
            base + 5,
            (netlist.kind(id) == NodeKind::PrimaryOutput) as u8 as f32,
        );
        // Absolute depth features: arrival time scales with the raw level,
        // not the per-circuit-normalized one, so expose both the node's own
        // level and the design's total depth on a fixed scale.
        matrix.set(i, base + 6, (levels.level(id) as f32 / 32.0).min(4.0));
        matrix.set(i, base + 7, (max_level / 32.0).min(4.0));

        // LLM block: cell description (+ register prompt overlay on DFFs).
        // Each embedding is L2-normalized before use so unseen designs'
        // register prompts cannot push DFF features outside the scale the
        // GNN trained on.
        let mut llm = vec![0.0f32; d_llm];
        if options.llm_enhancement {
            if let NodeKind::Cell(kind) = netlist.kind(id) {
                let cell_vec = normalized(&kind_emb[&kind]);
                for (slot, v) in llm.iter_mut().zip(cell_vec) {
                    *slot = v;
                }
                if kind.is_sequential() {
                    if let Some(reg) = dff_to_reg.get(&i) {
                        if let Some(rv) = reg_emb.get(reg) {
                            for (slot, v) in llm.iter_mut().zip(normalized(rv)) {
                                *slot += v;
                            }
                        }
                    }
                }
            }
        } else if let NodeKind::Cell(kind) = netlist.kind(id) {
            // Without LLM enhancement, clustering falls back to the pure
            // one-hot class signal.
            llm[kind.index() % d_llm] = 1.0;
        }
        for (j, &v) in llm.iter().enumerate() {
            matrix.set(i, STRUCT_DIM + j, v);
        }
        llm_vectors.push(llm);
    }

    Ok(NodeFeatures {
        matrix,
        llm_vectors,
        structure_pairs,
        d_llm,
    })
}

/// Unit-normalizes a vector (returns zeros for a zero vector).
fn normalized(v: &[f32]) -> Vec<f32> {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm < 1e-12 {
        return v.to_vec();
    }
    v.iter().map(|x| x / norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_llm::EncoderConfig;

    fn setup() -> (Netlist, TextEncoder, ParamStore, Vec<DffBinding>) {
        let m = moss_rtl::parse(
            "module c(input clk, output [1:0] q);
               reg [1:0] s = 0;
               always @(posedge clk) s <= s + 2'd1;
               assign q = s;
             endmodule",
        )
        .unwrap();
        let synth = moss_synth::synthesize(&m, &moss_synth::SynthOptions::default()).unwrap();
        let mut store = ParamStore::new();
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        (synth.netlist, enc, store, synth.dffs)
    }

    #[test]
    fn shapes_and_flags() {
        let (nl, enc, store, bindings) = setup();
        let m = moss_rtl::parse(
            "module c(input clk, output [1:0] q);
               reg [1:0] s = 0;
               always @(posedge clk) s <= s + 2'd1;
               assign q = s;
             endmodule",
        )
        .unwrap();
        let descs = moss_rtl::describe_registers(&m);
        let f = build_node_features(
            &nl,
            &enc,
            &store,
            &descs,
            &bindings,
            &FeatureOptions::default(),
        )
        .unwrap();
        assert_eq!(f.matrix.rows(), nl.node_count());
        assert_eq!(f.matrix.cols(), STRUCT_DIM + 16);
        // DFF flag set exactly on DFFs.
        for id in nl.node_ids() {
            let flag = f.matrix.get(id.index(), CellKind::ALL.len() + 3);
            assert_eq!(flag == 1.0, nl.kind(id).is_dff());
        }
    }

    #[test]
    fn dff_overlay_distinguishes_dffs_from_bare_cell_embedding() {
        let (nl, enc, store, bindings) = setup();
        let m = moss_rtl::parse(
            "module c(input clk, output [1:0] q);
               reg [1:0] s = 0;
               always @(posedge clk) s <= s + 2'd1;
               assign q = s;
             endmodule",
        )
        .unwrap();
        let descs = moss_rtl::describe_registers(&m);
        let f = build_node_features(
            &nl,
            &enc,
            &store,
            &descs,
            &bindings,
            &FeatureOptions::default(),
        )
        .unwrap();
        let dff = nl.dffs()[0];
        let plain_dff_emb = enc.embed_text(&store, CellKind::Dff.description());
        let stored = &f.llm_vectors[dff.index()];
        let diff: f32 = stored
            .iter()
            .zip(plain_dff_emb.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "register prompt overlaid on the DFF slot");
    }

    #[test]
    fn no_llm_mode_zeroes_embeddings() {
        let (nl, enc, store, bindings) = setup();
        let f = build_node_features(
            &nl,
            &enc,
            &store,
            &[],
            &bindings,
            &FeatureOptions {
                llm_enhancement: false,
            },
        )
        .unwrap();
        // Fallback one-hot: each llm vector sums to ≤ 1.
        for v in &f.llm_vectors {
            let sum: f32 = v.iter().sum();
            assert!(sum <= 1.0 + 1e-6);
        }
    }
}
