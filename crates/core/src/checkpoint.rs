//! Model checkpointing: persist a trained MOSS pipeline (configuration +
//! every parameter, encoder included) and restore it bit-exactly.
//!
//! The parameter payload reuses `moss-tensor`'s binary format; a small
//! fixed-layout header carries the [`MossConfig`] so a restored model is
//! reconstructed with the same architecture and variant.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use moss_tensor::{load_params, save_params, ParamStore};

use crate::model::{MossConfig, MossVariant};

const MAGIC: &[u8; 8] = b"MOSSCKP1";

/// Writes a checkpoint of `config` + `store` to `writer`.
///
/// # Errors
///
/// Propagates writer I/O errors.
///
/// # Examples
///
/// ```
/// use moss::{save_checkpoint, load_checkpoint, MossConfig, MossModel, MossVariant};
/// use moss_tensor::ParamStore;
///
/// let mut store = ParamStore::new();
/// let config = MossConfig::small(16, MossVariant::Full);
/// let _model = MossModel::new(config, &mut store, 7);
///
/// let mut buf = Vec::new();
/// save_checkpoint(&mut buf, &config, &store)?;
/// let (restored_config, restored_store) = load_checkpoint(buf.as_slice())?;
/// assert_eq!(restored_config, config);
/// assert_eq!(restored_store.len(), store.len());
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn save_checkpoint<W: Write>(
    mut writer: W,
    config: &MossConfig,
    store: &ParamStore,
) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    for v in [
        config.d_llm as u64,
        config.d_hidden as u64,
        config.iterations as u64,
        config.aggregators as u64,
        config.d_align as u64,
        variant_tag(config.variant),
        config.two_phase as u64,
    ] {
        writer.write_all(&v.to_le_bytes())?;
    }
    writer.write_all(&config.cluster_eps.to_le_bytes())?;
    save_params(writer, store)
}

/// Reads a checkpoint written by [`save_checkpoint`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic, unknown variant tag, or corrupted
/// payload.
pub fn load_checkpoint<R: Read>(mut reader: R) -> io::Result<(MossConfig, ParamStore)> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a moss checkpoint",
        ));
    }
    let mut fields = [0u64; 7];
    for f in &mut fields {
        let mut b = [0u8; 8];
        reader.read_exact(&mut b)?;
        *f = u64::from_le_bytes(b);
    }
    let mut eps = [0u8; 4];
    reader.read_exact(&mut eps)?;
    let config = MossConfig {
        d_llm: fields[0] as usize,
        d_hidden: fields[1] as usize,
        iterations: fields[2] as usize,
        aggregators: fields[3] as usize,
        d_align: fields[4] as usize,
        variant: variant_from_tag(fields[5])?,
        two_phase: fields[6] != 0,
        cluster_eps: f32::from_le_bytes(eps),
    };
    let store = load_params(reader)?;
    Ok((config, store))
}

/// Writes a checkpoint to `path` crash-safely: the bytes go to a sibling
/// temporary file (`<path>.tmp`), are flushed and synced, and the
/// temporary is atomically renamed over `path`. An interrupted save can
/// therefore never leave a truncated `MOSSCKP1` blob where a valid
/// checkpoint used to be — readers see either the old file or the new one.
///
/// # Errors
///
/// Propagates filesystem errors; on failure the temporary file is removed
/// (best effort) and any pre-existing checkpoint at `path` is untouched.
pub fn save_checkpoint_file<P: AsRef<Path>>(
    path: P,
    config: &MossConfig,
    store: &ParamStore,
) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    let result = (|| {
        let file = fs::File::create(&tmp)?;
        let mut writer = io::BufWriter::new(file);
        save_checkpoint(&mut writer, config, store)?;
        writer.flush()?;
        // Push the payload to disk before the rename publishes it.
        writer.get_ref().sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads a checkpoint written by [`save_checkpoint_file`] (or any
/// [`save_checkpoint`] output on disk).
///
/// # Errors
///
/// Propagates open errors and [`load_checkpoint`] validation errors
/// (truncated or corrupt files are rejected with `InvalidData` /
/// `UnexpectedEof`).
pub fn load_checkpoint_file<P: AsRef<Path>>(path: P) -> io::Result<(MossConfig, ParamStore)> {
    let file = fs::File::open(path.as_ref())?;
    load_checkpoint(io::BufReader::new(file))
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

fn variant_tag(v: MossVariant) -> u64 {
    match v {
        MossVariant::WithoutFeatureEnhancement => 0,
        MossVariant::WithoutAdaptiveAggregator => 1,
        MossVariant::WithoutAlignment => 2,
        MossVariant::Full => 3,
    }
}

fn variant_from_tag(tag: u64) -> io::Result<MossVariant> {
    Ok(match tag {
        0 => MossVariant::WithoutFeatureEnhancement,
        1 => MossVariant::WithoutAdaptiveAggregator,
        2 => MossVariant::WithoutAlignment,
        3 => MossVariant::Full,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown variant tag",
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MossModel;
    use crate::sample::{CircuitSample, SampleOptions};
    use moss_llm::{EncoderConfig, TextEncoder};
    use moss_netlist::CellLibrary;

    #[test]
    fn round_trip_preserves_config_and_params() {
        let mut store = ParamStore::new();
        let config = MossConfig {
            iterations: 3,
            two_phase: false,
            ..MossConfig::small(16, MossVariant::WithoutAlignment)
        };
        let _enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let _model = MossModel::new(config, &mut store, 2);

        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &config, &store).unwrap();
        let (rc, rs) = load_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(rc, config);
        assert_eq!(rs.scalar_count(), store.scalar_count());
    }

    #[test]
    fn restored_model_predicts_identically() {
        let m = moss_rtl::parse(
            "module t(input clk, input d, output q);
               reg r0; always @(posedge clk) r0 <= d ^ r0; assign q = r0;
             endmodule",
        )
        .unwrap();
        let lib = CellLibrary::default();
        let sample = CircuitSample::build(
            &m,
            &lib,
            &SampleOptions {
                sim_cycles: 64,
                ..SampleOptions::default()
            },
        )
        .unwrap();
        let mut store = ParamStore::new();
        let config = MossConfig::small(16, MossVariant::Full);
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = MossModel::new(config, &mut store, 2);
        let prep = model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap();
        let before = model.predict(&store, &prep);

        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &config, &store).unwrap();
        let (rc, mut rs) = load_checkpoint(buf.as_slice()).unwrap();
        // Rebuilding against a restored store binds to the existing
        // parameters by name (get_or_add), so the trained values survive
        // and the seed is irrelevant.
        let restored = MossModel::new(rc, &mut rs, 0xdead);
        let after = restored.predict(&rs, &prep);
        assert_eq!(before.toggle, after.toggle);
        assert_eq!(before.arrival_ns, after.arrival_ns);
        assert_eq!(before.power_nw, after.power_nw);
    }

    fn temp_ckpt_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("moss_ckpt_{tag}_{}.bin", std::process::id()))
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let path = temp_ckpt_path("roundtrip");
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _model = MossModel::new(config, &mut store, 3);
        save_checkpoint_file(&path, &config, &store).unwrap();
        // No temporary left behind after a successful save.
        assert!(!tmp_path(&path).exists());
        let (rc, rs) = load_checkpoint_file(&path).unwrap();
        assert_eq!(rc, config);
        assert_eq!(rs.scalar_count(), store.scalar_count());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_save_leaves_original_checkpoint_intact() {
        let path = temp_ckpt_path("interrupted");
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _model = MossModel::new(config, &mut store, 5);
        save_checkpoint_file(&path, &config, &store).unwrap();

        // Simulate a crash mid-save: a truncated payload sitting in the
        // temporary file, never renamed. The published checkpoint must
        // still load, and the truncated blob must be rejected on its own.
        let mut full = Vec::new();
        save_checkpoint(&mut full, &config, &store).unwrap();
        full.truncate(full.len() / 3);
        std::fs::write(tmp_path(&path), &full).unwrap();

        let (rc, rs) = load_checkpoint_file(&path).unwrap();
        assert_eq!(rc, config);
        assert_eq!(rs.scalar_count(), store.scalar_count());
        assert!(load_checkpoint_file(tmp_path(&path)).is_err());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tmp_path(&path));
    }

    #[test]
    fn failed_save_cleans_up_and_preserves_existing_file() {
        let path = temp_ckpt_path("failed");
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _model = MossModel::new(config, &mut store, 7);
        save_checkpoint_file(&path, &config, &store).unwrap();

        // Saving to a path whose parent directory does not exist fails…
        let bad = std::env::temp_dir()
            .join("moss_ckpt_no_such_dir")
            .join("x.bin");
        assert!(save_checkpoint_file(&bad, &config, &store).is_err());
        // …and the original checkpoint is untouched.
        assert!(load_checkpoint_file(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        assert!(load_checkpoint(&b"BADMAGIC"[..]).is_err());
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _ = MossModel::new(config, &mut store, 1);
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &config, &store).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_checkpoint(buf.as_slice()).is_err());
    }
}
