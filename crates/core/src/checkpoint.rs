//! Model checkpointing: persist a trained MOSS pipeline (configuration +
//! every parameter, encoder included) and restore it bit-exactly.
//!
//! The parameter payload reuses `moss-tensor`'s binary format; a small
//! fixed-layout header carries the [`MossConfig`] so a restored model is
//! reconstructed with the same architecture and variant.
//!
//! ## Format (`MOSSCKP2`)
//!
//! ```text
//! magic "MOSSCKP2"
//! config header (7×u64 + f32)
//! parameter payload (MOSSPAR1)
//! trainer flag u8 (0 = none, 1 = trainer state follows)
//! [trainer state: schedule, PRNG stream, loss-balancer EMA,
//!  epoch progress, loss histories, optimizer moments by name]
//! crc32 (IEEE) of every preceding byte, little-endian u32
//! ```
//!
//! The CRC footer turns silent corruption (torn writes survived by the
//! filesystem, bit rot) into a clean `InvalidData` error; the version bump
//! rejects v1 (`MOSSCKP1`) blobs, which had no integrity check. Every
//! truncation is likewise reported as `InvalidData`, never a panic.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use moss_tensor::{load_params, save_params, ParamStore};

use crate::model::{MossConfig, MossVariant};
use crate::trainer::Trainer;

const MAGIC: &[u8; 8] = b"MOSSCKP2";
const V1_MAGIC: &[u8; 8] = b"MOSSCKP1";

// ---- CRC32 (IEEE 802.3, reflected) --------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc
}

/// A writer that maintains a running CRC32 of everything written.
struct CrcWriter<W: Write> {
    inner: W,
    crc: u32,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> CrcWriter<W> {
        CrcWriter {
            inner,
            crc: 0xffff_ffff,
        }
    }

    fn crc(&self) -> u32 {
        self.crc ^ 0xffff_ffff
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc = crc32_update(self.crc, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that maintains a running CRC32 of everything read.
struct CrcReader<R: Read> {
    inner: R,
    crc: u32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> CrcReader<R> {
        CrcReader {
            inner,
            crc: 0xffff_ffff,
        }
    }

    fn crc(&self) -> u32 {
        self.crc ^ 0xffff_ffff
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc = crc32_update(self.crc, &buf[..n]);
        Ok(n)
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// A truncated file surfaces as `UnexpectedEof` from `read_exact`; callers
/// are promised `InvalidData` for every corrupt checkpoint, so fold it in.
fn eof_as_invalid(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        invalid("truncated checkpoint")
    } else {
        e
    }
}

// ---- save ----------------------------------------------------------------

/// Writes a checkpoint of `config` + `store` to `writer`.
///
/// # Errors
///
/// Propagates writer I/O errors.
///
/// # Examples
///
/// ```
/// use moss::{save_checkpoint, load_checkpoint, MossConfig, MossModel, MossVariant};
/// use moss_tensor::ParamStore;
///
/// let mut store = ParamStore::new();
/// let config = MossConfig::small(16, MossVariant::Full);
/// let _model = MossModel::new(config, &mut store, 7);
///
/// let mut buf = Vec::new();
/// save_checkpoint(&mut buf, &config, &store)?;
/// let (restored_config, restored_store) = load_checkpoint(buf.as_slice())?;
/// assert_eq!(restored_config, config);
/// assert_eq!(restored_store.len(), store.len());
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn save_checkpoint<W: Write>(
    writer: W,
    config: &MossConfig,
    store: &ParamStore,
) -> io::Result<()> {
    save_checkpoint_impl(writer, config, store, None)
}

/// Writes a checkpoint that additionally carries a mid-run [`Trainer`]
/// state, so training can resume bit-identically after a crash.
///
/// # Errors
///
/// Propagates writer I/O errors.
pub fn save_training_checkpoint<W: Write>(
    writer: W,
    config: &MossConfig,
    store: &ParamStore,
    trainer: &Trainer,
) -> io::Result<()> {
    save_checkpoint_impl(writer, config, store, Some(trainer))
}

fn save_checkpoint_impl<W: Write>(
    writer: W,
    config: &MossConfig,
    store: &ParamStore,
    trainer: Option<&Trainer>,
) -> io::Result<()> {
    let mut w = CrcWriter::new(writer);
    w.write_all(MAGIC)?;
    for v in [
        config.d_llm as u64,
        config.d_hidden as u64,
        config.iterations as u64,
        config.aggregators as u64,
        config.d_align as u64,
        variant_tag(config.variant),
        config.two_phase as u64,
    ] {
        w.write_all(&v.to_le_bytes())?;
    }
    w.write_all(&config.cluster_eps.to_le_bytes())?;
    save_params(&mut w, store)?;
    match trainer {
        Some(t) => {
            w.write_all(&[1u8])?;
            t.write_state(&mut w, store)?;
        }
        None => w.write_all(&[0u8])?,
    }
    let crc = w.crc();
    w.inner.write_all(&crc.to_le_bytes())
}

// ---- load ----------------------------------------------------------------

/// Reads a checkpoint written by [`save_checkpoint`] (a trailing trainer
/// section, if present, is validated and discarded).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic (including v1 `MOSSCKP1` blobs),
/// unknown variant tag, truncation, CRC mismatch, or corrupted payload.
pub fn load_checkpoint<R: Read>(reader: R) -> io::Result<(MossConfig, ParamStore)> {
    let (config, store, _) = load_checkpoint_impl(reader)?;
    Ok((config, store))
}

/// Reads a training checkpoint written by [`save_training_checkpoint`],
/// restoring the mid-run trainer alongside the model.
///
/// # Errors
///
/// As [`load_checkpoint`]; additionally `InvalidData` if the checkpoint
/// holds no trainer state.
pub fn load_training_checkpoint<R: Read>(
    reader: R,
) -> io::Result<(MossConfig, ParamStore, Trainer)> {
    let (config, store, trainer) = load_checkpoint_impl(reader)?;
    let trainer = trainer.ok_or_else(|| invalid("checkpoint holds no trainer state"))?;
    Ok((config, store, trainer))
}

fn load_checkpoint_impl<R: Read>(
    reader: R,
) -> io::Result<(MossConfig, ParamStore, Option<Trainer>)> {
    let mut r = CrcReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(eof_as_invalid)?;
    if &magic == V1_MAGIC {
        return Err(invalid(
            "unsupported checkpoint version MOSSCKP1 (re-save with this release)",
        ));
    }
    if &magic != MAGIC {
        return Err(invalid("not a moss checkpoint"));
    }
    let mut fields = [0u64; 7];
    for f in &mut fields {
        let mut b = [0u8; 8];
        r.read_exact(&mut b).map_err(eof_as_invalid)?;
        *f = u64::from_le_bytes(b);
    }
    let mut eps = [0u8; 4];
    r.read_exact(&mut eps).map_err(eof_as_invalid)?;
    let config = MossConfig {
        d_llm: fields[0] as usize,
        d_hidden: fields[1] as usize,
        iterations: fields[2] as usize,
        aggregators: fields[3] as usize,
        d_align: fields[4] as usize,
        variant: variant_from_tag(fields[5])?,
        two_phase: fields[6] != 0,
        cluster_eps: f32::from_le_bytes(eps),
    };
    let store = load_params(&mut r).map_err(eof_as_invalid)?;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag).map_err(eof_as_invalid)?;
    let trainer = match flag[0] {
        0 => None,
        1 => Some(Trainer::read_state(&mut r, &store).map_err(eof_as_invalid)?),
        _ => return Err(invalid("corrupt trainer flag")),
    };
    let computed = r.crc();
    let mut footer = [0u8; 4];
    r.inner.read_exact(&mut footer).map_err(eof_as_invalid)?;
    if u32::from_le_bytes(footer) != computed {
        return Err(invalid("checkpoint crc mismatch"));
    }
    Ok((config, store, trainer))
}

// ---- file variants -------------------------------------------------------

/// Writes a checkpoint to `path` crash-safely: the bytes go to a sibling
/// temporary file (`<path>.tmp`), are flushed and synced, and the
/// temporary is atomically renamed over `path`. An interrupted save can
/// therefore never leave a truncated blob where a valid checkpoint used to
/// be — readers see either the old file or the new one.
///
/// # Errors
///
/// Propagates filesystem errors; on failure the temporary file is removed
/// (best effort) and any pre-existing checkpoint at `path` is untouched.
/// The `io` fault site (`MOSS_FAULTS=io:<rate>`) injects failures here.
pub fn save_checkpoint_file<P: AsRef<Path>>(
    path: P,
    config: &MossConfig,
    store: &ParamStore,
) -> io::Result<()> {
    save_file_impl(path.as_ref(), config, store, None)
}

/// [`save_checkpoint_file`] carrying a mid-run [`Trainer`] (the autosave
/// path).
///
/// # Errors
///
/// As [`save_checkpoint_file`].
pub fn save_training_checkpoint_file<P: AsRef<Path>>(
    path: P,
    config: &MossConfig,
    store: &ParamStore,
    trainer: &Trainer,
) -> io::Result<()> {
    save_file_impl(path.as_ref(), config, store, Some(trainer))
}

fn save_file_impl(
    path: &Path,
    config: &MossConfig,
    store: &ParamStore,
    trainer: Option<&Trainer>,
) -> io::Result<()> {
    if io_fault(path) {
        return Err(io::Error::other("injected fault at site 'io'"));
    }
    let tmp = tmp_path(path);
    let result = (|| {
        let file = fs::File::create(&tmp)?;
        let mut writer = io::BufWriter::new(file);
        save_checkpoint_impl(&mut writer, config, store, trainer)?;
        writer.flush()?;
        // Push the payload to disk before the rename publishes it.
        writer.get_ref().sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads a checkpoint written by [`save_checkpoint_file`] (or any
/// [`save_checkpoint`] output on disk).
///
/// # Errors
///
/// Propagates open errors; truncated or corrupt files are rejected with
/// `InvalidData`. The `io` fault site injects failures here.
pub fn load_checkpoint_file<P: AsRef<Path>>(path: P) -> io::Result<(MossConfig, ParamStore)> {
    let path = path.as_ref();
    if io_fault(path) {
        return Err(io::Error::other("injected fault at site 'io'"));
    }
    let file = fs::File::open(path)?;
    load_checkpoint(io::BufReader::new(file))
}

/// Rejects a parameter store carrying any non-finite scalar. A checkpoint
/// whose CRC verifies can still hold NaN/Inf weights — a training run that
/// diverged before saving, or a tool that wrote garbage with a correct
/// footer — and serving such a model produces confidently wrong
/// embeddings rather than a crash. Callers that are about to *serve* a
/// checkpoint should gate on this.
///
/// # Errors
///
/// `InvalidData` naming the first offending parameter.
pub fn validate_params_finite(store: &ParamStore) -> io::Result<()> {
    for (_, name, tensor) in store.iter() {
        if let Some(bad) = tensor.data().iter().find(|v| !v.is_finite()) {
            return Err(invalid(&format!(
                "parameter '{name}' holds a non-finite value {bad}"
            )));
        }
    }
    Ok(())
}

/// [`load_checkpoint_file`] plus weight validation: the CRC footer and
/// structural decode run as usual, then every parameter is checked finite
/// via [`validate_params_finite`]. This is the loader the serving layer's
/// hot-reload path uses — a checkpoint that passes here is safe to swap
/// into a live server.
///
/// # Errors
///
/// As [`load_checkpoint_file`], plus `InvalidData` for non-finite weights.
pub fn load_checkpoint_file_validated<P: AsRef<Path>>(
    path: P,
) -> io::Result<(MossConfig, ParamStore)> {
    let (config, store) = load_checkpoint_file(path)?;
    validate_params_finite(&store)?;
    Ok((config, store))
}

/// Reads a training checkpoint written by [`save_training_checkpoint_file`].
///
/// # Errors
///
/// As [`load_checkpoint_file`]; additionally `InvalidData` if the file
/// holds no trainer state.
pub fn load_training_checkpoint_file<P: AsRef<Path>>(
    path: P,
) -> io::Result<(MossConfig, ParamStore, Trainer)> {
    let path = path.as_ref();
    if io_fault(path) {
        return Err(io::Error::other("injected fault at site 'io'"));
    }
    let file = fs::File::open(path)?;
    load_training_checkpoint(io::BufReader::new(file))
}

fn io_fault(path: &Path) -> bool {
    moss_faults::fire(
        moss_faults::Site::Io,
        moss_faults::key(&path.to_string_lossy()),
    )
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

fn variant_tag(v: MossVariant) -> u64 {
    match v {
        MossVariant::WithoutFeatureEnhancement => 0,
        MossVariant::WithoutAdaptiveAggregator => 1,
        MossVariant::WithoutAlignment => 2,
        MossVariant::Full => 3,
    }
}

fn variant_from_tag(tag: u64) -> io::Result<MossVariant> {
    Ok(match tag {
        0 => MossVariant::WithoutFeatureEnhancement,
        1 => MossVariant::WithoutAdaptiveAggregator,
        2 => MossVariant::WithoutAlignment,
        3 => MossVariant::Full,
        _ => {
            return Err(invalid("unknown variant tag"));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MossModel;
    use crate::sample::{CircuitSample, SampleOptions};
    use crate::trainer::TrainConfig;
    use moss_llm::{EncoderConfig, TextEncoder};
    use moss_netlist::CellLibrary;

    #[test]
    fn round_trip_preserves_config_and_params() {
        let mut store = ParamStore::new();
        let config = MossConfig {
            iterations: 3,
            two_phase: false,
            ..MossConfig::small(16, MossVariant::WithoutAlignment)
        };
        let _enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let _model = MossModel::new(config, &mut store, 2);

        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &config, &store).unwrap();
        let (rc, rs) = load_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(rc, config);
        assert_eq!(rs.scalar_count(), store.scalar_count());
    }

    #[test]
    fn restored_model_predicts_identically() {
        let m = moss_rtl::parse(
            "module t(input clk, input d, output q);
               reg r0; always @(posedge clk) r0 <= d ^ r0; assign q = r0;
             endmodule",
        )
        .unwrap();
        let lib = CellLibrary::default();
        let sample = CircuitSample::build(
            &m,
            &lib,
            &SampleOptions {
                sim_cycles: 64,
                ..SampleOptions::default()
            },
        )
        .unwrap();
        let mut store = ParamStore::new();
        let config = MossConfig::small(16, MossVariant::Full);
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = MossModel::new(config, &mut store, 2);
        let prep = model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap();
        let before = model.predict(&store, &prep);

        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &config, &store).unwrap();
        let (rc, mut rs) = load_checkpoint(buf.as_slice()).unwrap();
        // Rebuilding against a restored store binds to the existing
        // parameters by name (get_or_add), so the trained values survive
        // and the seed is irrelevant.
        let restored = MossModel::new(rc, &mut rs, 0xdead);
        let after = restored.predict(&rs, &prep);
        assert_eq!(before.toggle, after.toggle);
        assert_eq!(before.arrival_ns, after.arrival_ns);
        assert_eq!(before.power_nw, after.power_nw);
    }

    fn temp_ckpt_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("moss_ckpt_{tag}_{}.bin", std::process::id()))
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let path = temp_ckpt_path("roundtrip");
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _model = MossModel::new(config, &mut store, 3);
        save_checkpoint_file(&path, &config, &store).unwrap();
        // No temporary left behind after a successful save.
        assert!(!tmp_path(&path).exists());
        let (rc, rs) = load_checkpoint_file(&path).unwrap();
        assert_eq!(rc, config);
        assert_eq!(rs.scalar_count(), store.scalar_count());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn interrupted_save_leaves_original_checkpoint_intact() {
        let path = temp_ckpt_path("interrupted");
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _model = MossModel::new(config, &mut store, 5);
        save_checkpoint_file(&path, &config, &store).unwrap();

        // Simulate a crash mid-save: a truncated payload sitting in the
        // temporary file, never renamed. The published checkpoint must
        // still load, and the truncated blob must be rejected on its own.
        let mut full = Vec::new();
        save_checkpoint(&mut full, &config, &store).unwrap();
        full.truncate(full.len() / 3);
        std::fs::write(tmp_path(&path), &full).unwrap();

        let (rc, rs) = load_checkpoint_file(&path).unwrap();
        assert_eq!(rc, config);
        assert_eq!(rs.scalar_count(), store.scalar_count());
        assert!(load_checkpoint_file(tmp_path(&path)).is_err());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tmp_path(&path));
    }

    #[test]
    fn failed_save_cleans_up_and_preserves_existing_file() {
        let path = temp_ckpt_path("failed");
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _model = MossModel::new(config, &mut store, 7);
        save_checkpoint_file(&path, &config, &store).unwrap();

        // Saving to a path whose parent directory does not exist fails…
        let bad = std::env::temp_dir()
            .join("moss_ckpt_no_such_dir")
            .join("x.bin");
        assert!(save_checkpoint_file(&bad, &config, &store).is_err());
        // …and the original checkpoint is untouched.
        assert!(load_checkpoint_file(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    fn small_checkpoint() -> (MossConfig, ParamStore, Vec<u8>) {
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _ = MossModel::new(config, &mut store, 1);
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, &config, &store).unwrap();
        (config, store, buf)
    }

    fn expect_invalid(result: io::Result<(MossConfig, ParamStore)>, what: &str) {
        match result {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{what}: {e}"),
            Ok(_) => panic!("{what}: corrupt checkpoint loaded"),
        }
    }

    #[test]
    fn corrupt_checkpoints_are_invalid_data_not_panics() {
        let (_, _, buf) = small_checkpoint();

        // Zero-length file.
        expect_invalid(load_checkpoint(&b""[..]), "zero-length");
        // Bad magic.
        expect_invalid(load_checkpoint(&b"BADMAGIC"[..]), "bad magic");
        // Old format version.
        let mut v1 = buf.clone();
        v1[..8].copy_from_slice(b"MOSSCKP1");
        expect_invalid(load_checkpoint(v1.as_slice()), "v1 magic");
        // Truncations at every interesting boundary.
        for cut in [4, 8, 40, buf.len() / 2, buf.len() - 5, buf.len() - 1] {
            let mut t = buf.clone();
            t.truncate(cut);
            expect_invalid(load_checkpoint(t.as_slice()), "truncated");
        }
        // A flipped byte in the CRC footer.
        let mut flipped = buf.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        expect_invalid(load_checkpoint(flipped.as_slice()), "flipped crc");
        // A flipped byte in the payload (caught by the CRC).
        let mut payload = buf.clone();
        let mid = payload.len() / 2;
        payload[mid] ^= 0x01;
        expect_invalid(load_checkpoint(payload.as_slice()), "flipped payload");
        // The pristine buffer still loads.
        assert!(load_checkpoint(buf.as_slice()).is_ok());
    }

    #[test]
    fn validated_load_rejects_nan_weights_but_accepts_clean_ones() {
        let path = temp_ckpt_path("nanweights");
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _ = MossModel::new(config, &mut store, 1);

        // A pristine checkpoint passes the validated loader.
        save_checkpoint_file(&path, &config, &store).unwrap();
        assert!(load_checkpoint_file_validated(&path).is_ok());

        // Poison one scalar of one parameter; the CRC footer is recomputed
        // at save time, so only the finite-weight gate can catch this.
        let (id, name, rows, cols, mut data) = {
            let (id, name, tensor) = store.iter().next().expect("at least one parameter");
            let (rows, cols) = tensor.shape();
            (id, name.to_string(), rows, cols, tensor.data().to_vec())
        };
        let mid = data.len() / 2;
        data[mid] = f32::NAN;
        store.set(id, moss_tensor::Tensor::from_vec(data, rows, cols));
        save_checkpoint_file(&path, &config, &store).unwrap();

        // The plain loader still accepts it (CRC is intact)…
        assert!(load_checkpoint_file(&path).is_ok());
        // …but the validated loader names the offending parameter.
        let e = load_checkpoint_file_validated(&path).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(
            e.to_string().contains(&name),
            "error must name the parameter: {e}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validated_load_rejects_corrupt_and_truncated_files() {
        let path = temp_ckpt_path("validated_corrupt");
        let (_, _, buf) = small_checkpoint();

        // Truncated file.
        std::fs::write(&path, &buf[..buf.len() / 2]).unwrap();
        let e = load_checkpoint_file_validated(&path).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);

        // Flipped payload byte (CRC mismatch).
        let mut flipped = buf.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let e = load_checkpoint_file_validated(&path).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);

        // The pristine bytes pass.
        std::fs::write(&path, &buf).unwrap();
        assert!(load_checkpoint_file_validated(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn training_checkpoint_round_trips_trainer_state() {
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _ = MossModel::new(config, &mut store, 1);
        let trainer = Trainer::new(TrainConfig {
            pretrain_epochs: 7,
            seed: 0xfeed,
            ..TrainConfig::default()
        });

        let mut buf = Vec::new();
        save_training_checkpoint(&mut buf, &config, &store, &trainer).unwrap();
        let (rc, rs, rt) = load_training_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(rc, config);
        assert_eq!(rs.scalar_count(), store.scalar_count());
        assert_eq!(rt.config(), trainer.config());
        assert_eq!(rt.pretrain_epochs_done(), 0);

        // A model-only checkpoint refuses to yield a trainer…
        let mut plain = Vec::new();
        save_checkpoint(&mut plain, &config, &store).unwrap();
        let e = load_training_checkpoint(plain.as_slice()).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        // …while a training checkpoint still loads as a plain one.
        assert!(load_checkpoint(buf.as_slice()).is_ok());
    }

    #[test]
    fn io_fault_site_injects_save_and_load_failures() {
        let path = temp_ckpt_path("iofault");
        let mut store = ParamStore::new();
        let config = MossConfig::small(8, MossVariant::Full);
        let _ = MossModel::new(config, &mut store, 1);
        save_checkpoint_file(&path, &config, &store).unwrap();

        moss_faults::override_for_tests(Some("io:1.0"));
        let e = save_checkpoint_file(&path, &config, &store).unwrap_err();
        assert!(e.to_string().contains("injected fault"));
        let e = load_checkpoint_file(&path).unwrap_err();
        assert!(e.to_string().contains("injected fault"));
        moss_faults::override_for_tests(None);

        // The published checkpoint is intact once faults clear.
        assert!(load_checkpoint_file(&path).is_ok());
        let _ = std::fs::remove_file(&path);
    }
}
