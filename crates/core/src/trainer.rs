//! Multi-task training with dynamic loss balancing (paper Eq. 2) in two
//! phases: pre-training on the local tasks (Fig. 7) and multimodal
//! alignment (Fig. 8).
//!
//! ## Crash resumability
//!
//! A [`Trainer`] carries its complete mid-run state — PRNG stream, dynamic
//! loss weights, optimizer moments, and per-phase epoch progress — and can
//! serialize all of it into the versioned checkpoint format
//! ([`crate::save_training_checkpoint_file`]). With
//! [`Trainer::autosave_to`] enabled the trainer checkpoints itself after
//! every epoch; after a crash, [`Trainer::resume_from`] restores the run
//! and re-entering [`Trainer::pretrain`] / [`Trainer::align`] continues
//! from the first unfinished epoch, bit-identical to a run that was never
//! interrupted.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use moss_prng::rngs::StdRng;
use moss_prng::seq::SliceRandom;
use moss_prng::SeedableRng;
use moss_tensor::{Adam, Graph, ParamStore, Tensor, Var};

use crate::deepseq2::DeepSeq2;
use crate::model::{MossConfig, MossModel, Prepared};
use moss_llm::TextEncoder;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate (paper: 6e-4).
    pub learning_rate: f32,
    /// Pre-training epochs (paper: 45 with early stopping).
    pub pretrain_epochs: usize,
    /// Alignment epochs.
    pub align_epochs: usize,
    /// Circuits per alignment batch (RNC needs ≥ 2).
    pub align_batch: usize,
    /// RNG seed (shuffling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 6e-4,
            pretrain_epochs: 45,
            align_epochs: 45,
            align_batch: 4,
            seed: 0x7ea1,
        }
    }
}

/// Loss values from one pre-training epoch (Fig. 7 curves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainEpoch {
    /// Weighted total.
    pub total: f64,
    /// Probability loss (Fig. 7b).
    pub probability: f64,
    /// Toggle loss (Fig. 7c).
    pub toggle: f64,
    /// Arrival-time loss (Fig. 7d).
    pub arrival: f64,
    /// Power loss.
    pub power: f64,
}

/// Loss values from one alignment epoch (Fig. 8 curves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignEpoch {
    /// Weighted total (Fig. 8a).
    pub total: f64,
    /// RNC loss (Fig. 8b).
    pub rnc: f64,
    /// RNM loss (Fig. 8c).
    pub rnm: f64,
    /// RrNdM loss.
    pub rrndm: f64,
}

/// Dynamic per-task weights: λᵢ tracks the inverse of each task's running
/// loss magnitude so no single task dominates (paper Eq. 2).
#[derive(Debug, Clone)]
pub struct DynamicWeights {
    ema: Vec<f64>,
    beta: f64,
}

impl DynamicWeights {
    /// Balancer over `tasks` losses.
    pub fn new(tasks: usize) -> DynamicWeights {
        DynamicWeights {
            ema: vec![1.0; tasks],
            beta: 0.9,
        }
    }

    /// Updates the running magnitudes and returns normalized weights.
    pub fn update(&mut self, losses: &[f64]) -> Vec<f32> {
        assert_eq!(losses.len(), self.ema.len(), "task count fixed");
        for (e, &l) in self.ema.iter_mut().zip(losses) {
            *e = self.beta * *e + (1.0 - self.beta) * l.max(1e-6);
        }
        let inv: Vec<f64> = self.ema.iter().map(|&e| 1.0 / (e + 1e-3)).collect();
        let sum: f64 = inv.iter().sum();
        inv.iter()
            .map(|&i| (i / sum * losses.len() as f64) as f32)
            .collect()
    }
}

/// Trains MOSS (or a variant) through both phases.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    optimizer: Adam,
    rng: StdRng,
    // Mid-run state, all checkpointed so a resumed trainer replays the
    // exact stream of an uninterrupted one.
    weights: DynamicWeights,
    align_opt: Option<Adam>,
    pretrain_done: usize,
    align_done: usize,
    // Shuffle state: each epoch shuffles the previous epoch's permutation
    // in place, so the current permutation is part of the stream a resume
    // must replay (empty until the phase first runs).
    pretrain_order: Vec<usize>,
    align_order: Vec<usize>,
    pretrain_history: Vec<PretrainEpoch>,
    align_history: Vec<AlignEpoch>,
    // Autosave + crash-rehearsal hooks; never checkpointed.
    autosave_path: Option<PathBuf>,
    abort_after_steps: Option<u64>,
    steps_taken: u64,
}

impl Trainer {
    /// A trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer {
            optimizer: Adam::new(config.learning_rate),
            rng: StdRng::seed_from_u64(config.seed),
            weights: DynamicWeights::new(4),
            align_opt: None,
            pretrain_done: 0,
            align_done: 0,
            pretrain_order: Vec::new(),
            align_order: Vec::new(),
            pretrain_history: Vec::new(),
            align_history: Vec::new(),
            autosave_path: None,
            abort_after_steps: None,
            steps_taken: 0,
            config,
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> TrainConfig {
        self.config
    }

    /// Pre-training epochs completed so far (resume point).
    pub fn pretrain_epochs_done(&self) -> usize {
        self.pretrain_done
    }

    /// Alignment epochs completed so far (resume point).
    pub fn align_epochs_done(&self) -> usize {
        self.align_done
    }

    /// Enables autosaving: after each completed epoch (pre-training and
    /// alignment) the trainer writes a crash-safe training checkpoint of
    /// `config` + parameters + its own state to `path`. A failed autosave
    /// degrades gracefully — a warning plus a `train.autosave_failures`
    /// counter — rather than killing the run it exists to protect.
    pub fn autosave_to(&mut self, path: impl Into<PathBuf>) {
        self.autosave_path = Some(path.into());
    }

    /// Restores a mid-run trainer (plus model config and parameters) from
    /// a training checkpoint written by autosave or
    /// [`crate::save_training_checkpoint_file`]. Rebuild the model against
    /// the returned store (`MossModel::new` rebinds by name) and call
    /// [`Trainer::pretrain`] / [`Trainer::align`] again: completed epochs
    /// are skipped and the remainder replays bit-identically to an
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a corrupt, truncated, or version-mismatched file,
    /// or one that holds no trainer state.
    pub fn resume_from(path: impl AsRef<Path>) -> io::Result<(MossConfig, ParamStore, Trainer)> {
        crate::checkpoint::load_training_checkpoint_file(path)
    }

    /// Test/rehearsal hook: simulate a crash by returning early from the
    /// current training phase after `steps` optimizer updates.
    #[doc(hidden)]
    pub fn abort_after_steps(&mut self, steps: u64) {
        self.abort_after_steps = Some(steps);
        self.steps_taken = 0;
    }

    fn aborted(&self) -> bool {
        self.abort_after_steps
            .is_some_and(|limit| self.steps_taken >= limit)
    }

    fn maybe_autosave(&self, config: &MossConfig, store: &ParamStore) {
        let Some(path) = self.autosave_path.as_ref() else {
            return;
        };
        if let Err(e) = crate::checkpoint::save_training_checkpoint_file(path, config, store, self)
        {
            moss_obs::counter("train.autosave_failures", 1);
            eprintln!("moss: autosave to {} failed: {e}", path.display());
        }
    }

    /// Phase 1 — pre-training on the local tasks. Returns per-epoch losses
    /// (the Fig. 7 curves — the complete history, including epochs finished
    /// before a resume).
    ///
    /// A step whose losses are non-finite (organically diverged, or the
    /// `nan` fault site fired) is skipped and counted
    /// (`train.skipped_steps`) instead of poisoning the parameters.
    pub fn pretrain(
        &mut self,
        model: &MossModel,
        store: &mut ParamStore,
        circuits: &[Prepared],
    ) -> Vec<PretrainEpoch> {
        let _obs = moss_obs::span("pretrain");
        if self.pretrain_order.len() != circuits.len() {
            self.pretrain_order = (0..circuits.len()).collect();
        }
        for epoch in self.pretrain_done..self.config.pretrain_epochs {
            let _epoch_obs = moss_obs::span_items("pretrain_epoch", circuits.len() as u64);
            moss_obs::counter("train.pretrain_epochs", 1);
            self.pretrain_order.shuffle(&mut self.rng);
            let order = self.pretrain_order.clone();
            let mut sums = [0.0f64; 5];
            let mut used = 0usize;
            for (step, &i) in order.iter().enumerate() {
                if self.aborted() {
                    return self.pretrain_history.clone();
                }
                if moss_faults::fire(moss_faults::Site::Nan, ((epoch as u64) << 32) ^ step as u64) {
                    moss_obs::counter("train.skipped_steps", 1);
                    continue;
                }
                let prep = &circuits[i];
                let mut g = Graph::new();
                let l = model.local_losses(&mut g, store, prep);
                let raw = [
                    g.value(l.probability).get(0, 0) as f64,
                    g.value(l.toggle).get(0, 0) as f64,
                    g.value(l.arrival).get(0, 0) as f64,
                    g.value(l.power).get(0, 0) as f64,
                ];
                if raw.iter().any(|v| !v.is_finite()) {
                    moss_obs::counter("train.skipped_steps", 1);
                    continue;
                }
                let w = self.weights.update(&raw);
                let total =
                    weighted_sum(&mut g, &[l.probability, l.toggle, l.arrival, l.power], &w);
                sums[0] += g.value(total).get(0, 0) as f64;
                sums[1] += raw[0];
                sums[2] += raw[1];
                sums[3] += raw[2];
                sums[4] += raw[3];
                used += 1;
                let grads = g.backward(total);
                self.optimizer.step(store, &grads);
                self.steps_taken += 1;
            }
            let n = used.max(1) as f64;
            self.pretrain_history.push(PretrainEpoch {
                total: sums[0] / n,
                probability: sums[1] / n,
                toggle: sums[2] / n,
                arrival: sums[3] / n,
                power: sums[4] / n,
            });
            self.pretrain_done = epoch + 1;
            self.maybe_autosave(model.config(), store);
        }
        self.pretrain_history.clone()
    }

    /// Phase 2 — multimodal alignment: RNC + RNM + RrNdM over circuit
    /// batches, with the local tasks kept in the objective at reduced
    /// weight. Returns per-epoch losses (the Fig. 8 curves).
    ///
    /// No-ops (returns empty history) if the model variant disables
    /// alignment.
    pub fn align(
        &mut self,
        model: &MossModel,
        encoder: &TextEncoder,
        store: &mut ParamStore,
        circuits: &[Prepared],
    ) -> Vec<AlignEpoch> {
        if !model.config().variant.alignment() || circuits.len() < 2 {
            return Vec::new();
        }
        let _obs = moss_obs::span("align");
        // The GNN trunk is frozen during alignment: its outputs are
        // precomputed once, and only the projection heads (W_n, W_r,
        // register/DFF projections), the RNM MLP, the temperature, and the
        // text encoder's LoRA adapters receive gradients. This protects the
        // regression heads' trunk from the retrieval objective (at the
        // paper's data scale joint training is feasible; at ours it
        // catastrophically forgets arrival/toggle structure) and makes the
        // phase cheap — no per-epoch GNN forward passes. Because the trunk
        // is frozen, recomputing the embeddings on resume reproduces the
        // originals bit-exactly; they need no checkpointing.
        let frozen: Vec<(Tensor, Tensor)> = circuits
            .iter()
            .map(|p| model.frozen_embeddings(store, p))
            .collect();
        if self.align_opt.is_none() {
            self.align_opt = Some(Adam::new(self.config.learning_rate * 2.0));
        }
        let batch = self.config.align_batch.max(2).min(circuits.len());
        // Batch boundaries: a leftover tail of one circuit cannot feed the
        // contrastive RNC loss on its own, so it is folded into the previous
        // batch rather than dropped — every circuit receives an alignment
        // gradient every epoch, and the epoch average covers all samples.
        let ranges = batch_ranges(circuits.len(), batch);
        if self.align_order.len() != circuits.len() {
            self.align_order = (0..circuits.len()).collect();
        }
        for epoch in self.align_done..self.config.align_epochs {
            let _epoch_obs = moss_obs::span_items("align_epoch", circuits.len() as u64);
            moss_obs::counter("train.align_epochs", 1);
            self.align_order.shuffle(&mut self.rng);
            let order = self.align_order.clone();
            let mut sums = [0.0f64; 4];
            let mut batches = 0usize;
            for (bi, &(start, end)) in ranges.iter().enumerate() {
                if self.aborted() {
                    return self.align_history.clone();
                }
                if moss_faults::fire(
                    moss_faults::Site::Nan,
                    (1u64 << 48) ^ ((epoch as u64) << 32) ^ bi as u64,
                ) {
                    moss_obs::counter("train.skipped_steps", 1);
                    continue;
                }
                let chunk = &order[start..end];
                let mut g = Graph::new();
                let mut rtl = Vec::with_capacity(chunk.len());
                let mut net = Vec::with_capacity(chunk.len());
                let mut rrndm_losses: Vec<Var> = Vec::new();
                for &i in chunk {
                    let prep = &circuits[i];
                    net.push(model.netlist_align_frozen(&mut g, store, &frozen[i].0));
                    rtl.push(model.rtl_align_trainable(&mut g, store, encoder, &prep.rtl_windows));
                    if let Some(r) = model.rrndm_frozen(&mut g, store, &frozen[i].1, prep) {
                        rrndm_losses.push(r);
                    }
                }
                let rnc = model.rnc_loss(&mut g, store, &rtl, &net);
                let rnm = model.rnm_loss(&mut g, store, &rtl, &net);
                let rrndm = mean_vars(&mut g, &rrndm_losses);

                let mut total = g.add(rnc, rnm);
                if let Some(r) = rrndm {
                    total = g.add(total, r);
                }
                if !(g.value(total).get(0, 0) as f64).is_finite() {
                    moss_obs::counter("train.skipped_steps", 1);
                    continue;
                }
                sums[0] += g.value(total).get(0, 0) as f64;
                sums[1] += g.value(rnc).get(0, 0) as f64;
                sums[2] += g.value(rnm).get(0, 0) as f64;
                if let Some(r) = rrndm {
                    sums[3] += g.value(r).get(0, 0) as f64;
                }
                batches += 1;
                let grads = g.backward(total);
                self.align_opt
                    .as_mut()
                    .expect("align optimizer initialized above")
                    .step(store, &grads);
                self.steps_taken += 1;
            }
            let n = batches.max(1) as f64;
            self.align_history.push(AlignEpoch {
                total: sums[0] / n,
                rnc: sums[1] / n,
                rnm: sums[2] / n,
                rrndm: sums[3] / n,
            });
            self.align_done = epoch + 1;
            self.maybe_autosave(model.config(), store);
        }
        self.align_history.clone()
    }

    /// Trains the DeepSeq2 baseline on its four local tasks.
    pub fn train_deepseq2(
        &mut self,
        model: &DeepSeq2,
        store: &mut ParamStore,
        circuits: &[Prepared],
    ) -> Vec<PretrainEpoch> {
        let mut weights = DynamicWeights::new(4);
        let mut history = Vec::with_capacity(self.config.pretrain_epochs);
        let mut order: Vec<usize> = (0..circuits.len()).collect();
        for epoch in 0..self.config.pretrain_epochs {
            order.shuffle(&mut self.rng);
            let mut sums = [0.0f64; 5];
            let mut used = 0usize;
            for (step, &i) in order.iter().enumerate() {
                if moss_faults::fire(
                    moss_faults::Site::Nan,
                    (2u64 << 48) ^ ((epoch as u64) << 32) ^ step as u64,
                ) {
                    moss_obs::counter("train.skipped_steps", 1);
                    continue;
                }
                let prep = &circuits[i];
                let mut g = Graph::new();
                let l = model.losses(&mut g, store, prep);
                let raw = [
                    g.value(l.probability).get(0, 0) as f64,
                    g.value(l.toggle).get(0, 0) as f64,
                    g.value(l.arrival).get(0, 0) as f64,
                    g.value(l.power).get(0, 0) as f64,
                ];
                if raw.iter().any(|v| !v.is_finite()) {
                    moss_obs::counter("train.skipped_steps", 1);
                    continue;
                }
                let w = weights.update(&raw);
                let total =
                    weighted_sum(&mut g, &[l.probability, l.toggle, l.arrival, l.power], &w);
                sums[0] += g.value(total).get(0, 0) as f64;
                for (s, &r) in sums[1..].iter_mut().zip(&raw) {
                    *s += r;
                }
                used += 1;
                let grads = g.backward(total);
                self.optimizer.step(store, &grads);
            }
            let n = used.max(1) as f64;
            history.push(PretrainEpoch {
                total: sums[0] / n,
                probability: sums[1] / n,
                toggle: sums[2] / n,
                arrival: sums[3] / n,
                power: sums[4] / n,
            });
        }
        history
    }

    // ---- checkpoint (de)serialization ------------------------------------
    //
    // The trainer blob rides inside the MOSSCKP2 container (after the
    // parameter payload, covered by the same CRC32 footer). Optimizer
    // moments are keyed by parameter *name*, so the blob survives as long
    // as the parameter set does.

    pub(crate) fn write_state<W: Write>(&self, w: &mut W, store: &ParamStore) -> io::Result<()> {
        w.write_all(&self.config.learning_rate.to_le_bytes())?;
        for v in [
            self.config.pretrain_epochs as u64,
            self.config.align_epochs as u64,
            self.config.align_batch as u64,
            self.config.seed,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        for s in self.rng.state() {
            w.write_all(&s.to_le_bytes())?;
        }
        w.write_all(&self.weights.beta.to_le_bytes())?;
        w.write_all(&(self.weights.ema.len() as u64).to_le_bytes())?;
        for e in &self.weights.ema {
            w.write_all(&e.to_le_bytes())?;
        }
        w.write_all(&(self.pretrain_done as u64).to_le_bytes())?;
        w.write_all(&(self.align_done as u64).to_le_bytes())?;
        for order in [&self.pretrain_order, &self.align_order] {
            w.write_all(&(order.len() as u64).to_le_bytes())?;
            for &i in order.iter() {
                w.write_all(&(i as u64).to_le_bytes())?;
            }
        }
        w.write_all(&(self.pretrain_history.len() as u64).to_le_bytes())?;
        for h in &self.pretrain_history {
            for v in [h.total, h.probability, h.toggle, h.arrival, h.power] {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        w.write_all(&(self.align_history.len() as u64).to_le_bytes())?;
        for h in &self.align_history {
            for v in [h.total, h.rnc, h.rnm, h.rrndm] {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        write_adam(w, &self.optimizer, store)?;
        match &self.align_opt {
            Some(opt) => {
                w.write_all(&[1u8])?;
                write_adam(w, opt, store)
            }
            None => w.write_all(&[0u8]),
        }
    }

    pub(crate) fn read_state<R: Read>(r: &mut R, store: &ParamStore) -> io::Result<Trainer> {
        let learning_rate = read_f32(r)?;
        let pretrain_epochs = read_u64(r)? as usize;
        let align_epochs = read_u64(r)? as usize;
        let align_batch = read_u64(r)? as usize;
        let seed = read_u64(r)?;
        let config = TrainConfig {
            learning_rate,
            pretrain_epochs,
            align_epochs,
            align_batch,
            seed,
        };
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = read_u64(r)?;
        }
        if rng_state == [0; 4] {
            return Err(invalid("corrupt trainer rng state"));
        }
        let beta = read_f64(r)?;
        let ema_len = read_u64(r)? as usize;
        if ema_len > 64 {
            return Err(invalid("corrupt trainer weight count"));
        }
        let mut ema = Vec::with_capacity(ema_len);
        for _ in 0..ema_len {
            ema.push(read_f64(r)?);
        }
        let pretrain_done = read_u64(r)? as usize;
        let align_done = read_u64(r)? as usize;
        let mut read_order = || -> io::Result<Vec<usize>> {
            let len = read_u64(r)? as usize;
            if len > 1 << 24 {
                return Err(invalid("corrupt shuffle-order length"));
            }
            let mut order = Vec::with_capacity(len);
            let mut seen = vec![false; len];
            for _ in 0..len {
                let i = read_u64(r)? as usize;
                if i >= len || std::mem::replace(&mut seen[i], true) {
                    return Err(invalid("corrupt shuffle order"));
                }
                order.push(i);
            }
            Ok(order)
        };
        let pretrain_order = read_order()?;
        let align_order = read_order()?;
        let ph_len = read_u64(r)? as usize;
        if ph_len > 1 << 20 {
            return Err(invalid("corrupt trainer history length"));
        }
        let mut pretrain_history = Vec::with_capacity(ph_len);
        for _ in 0..ph_len {
            pretrain_history.push(PretrainEpoch {
                total: read_f64(r)?,
                probability: read_f64(r)?,
                toggle: read_f64(r)?,
                arrival: read_f64(r)?,
                power: read_f64(r)?,
            });
        }
        let ah_len = read_u64(r)? as usize;
        if ah_len > 1 << 20 {
            return Err(invalid("corrupt trainer history length"));
        }
        let mut align_history = Vec::with_capacity(ah_len);
        for _ in 0..ah_len {
            align_history.push(AlignEpoch {
                total: read_f64(r)?,
                rnc: read_f64(r)?,
                rnm: read_f64(r)?,
                rrndm: read_f64(r)?,
            });
        }
        let optimizer = read_adam(r, store)?;
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        let align_opt = match flag[0] {
            0 => None,
            1 => Some(read_adam(r, store)?),
            _ => return Err(invalid("corrupt align-optimizer flag")),
        };
        Ok(Trainer {
            config,
            optimizer,
            rng: StdRng::from_state(rng_state),
            weights: DynamicWeights { ema, beta },
            align_opt,
            pretrain_done,
            align_done,
            pretrain_order,
            align_order,
            pretrain_history,
            align_history,
            autosave_path: None,
            abort_after_steps: None,
            steps_taken: 0,
        })
    }
}

fn write_adam<W: Write>(w: &mut W, adam: &Adam, store: &ParamStore) -> io::Result<()> {
    w.write_all(&adam.learning_rate().to_le_bytes())?;
    match adam.clip_norm {
        Some(c) => {
            w.write_all(&[1u8])?;
            w.write_all(&c.to_le_bytes())?;
        }
        None => w.write_all(&[0u8, 0, 0, 0, 0])?,
    }
    w.write_all(&adam.time_step().to_le_bytes())?;
    let moments = adam.moments();
    w.write_all(&(moments.len() as u64).to_le_bytes())?;
    for (id, m, v) in moments {
        let name = store.name(id);
        w.write_all(&(name.len() as u64).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        let (rows, cols) = m.shape();
        w.write_all(&(rows as u64).to_le_bytes())?;
        w.write_all(&(cols as u64).to_le_bytes())?;
        for x in m.data() {
            w.write_all(&x.to_le_bytes())?;
        }
        for x in v.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_adam<R: Read>(r: &mut R, store: &ParamStore) -> io::Result<Adam> {
    let lr = read_f32(r)?;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let clip = match flag[0] {
        0 => {
            let mut pad = [0u8; 4];
            r.read_exact(&mut pad)?;
            None
        }
        1 => Some(read_f32(r)?),
        _ => return Err(invalid("corrupt optimizer clip flag")),
    };
    let t = read_u64(r)?;
    let count = read_u64(r)? as usize;
    if count > store.len() {
        return Err(invalid("corrupt optimizer moment count"));
    }
    let mut moments = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u64(r)? as usize;
        if name_len > 1 << 16 {
            return Err(invalid("corrupt optimizer parameter name"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|_| invalid("corrupt optimizer parameter name"))?;
        let Some(id) = store.find(&name) else {
            return Err(invalid("optimizer references unknown parameter"));
        };
        let rows = read_u64(r)? as usize;
        let cols = read_u64(r)? as usize;
        if (rows, cols) != store.get(id).shape() {
            return Err(invalid("optimizer moment shape mismatch"));
        }
        let mut read_tensor = || -> io::Result<Tensor> {
            let mut data = vec![0f32; rows * cols];
            for x in &mut data {
                *x = read_f32(r)?;
            }
            Ok(Tensor::from_vec(data, rows, cols))
        };
        let m = read_tensor()?;
        let v = read_tensor()?;
        moments.push((id, m, v));
    }
    Ok(Adam::from_state(lr, clip, t, moments))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Splits `len` indices into `[start, end)` batches of nominal size
/// `batch`, folding a final chunk shorter than 2 into the previous batch
/// (the RNC contrastive loss needs ≥ 2 circuits per batch). Every index is
/// covered by exactly one range, and with `len ≥ 2` every range holds at
/// least 2 indices.
fn batch_ranges(len: usize, batch: usize) -> Vec<(usize, usize)> {
    let batch = batch.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(batch));
    let mut start = 0;
    while start < len {
        let end = (start + batch).min(len);
        ranges.push((start, end));
        start = end;
    }
    if let [.., prev, last] = ranges.as_mut_slice() {
        if last.1 - last.0 < 2 {
            prev.1 = last.1;
            ranges.pop();
        }
    }
    ranges
}

fn weighted_sum(g: &mut Graph, losses: &[Var], weights: &[f32]) -> Var {
    debug_assert_eq!(losses.len(), weights.len());
    let mut acc: Option<Var> = None;
    for (&l, &w) in losses.iter().zip(weights) {
        let scaled = g.scale(l, w);
        acc = Some(match acc {
            Some(a) => g.add(a, scaled),
            None => scaled,
        });
    }
    acc.expect("at least one loss")
}

fn mean_vars(g: &mut Graph, vars: &[Var]) -> Option<Var> {
    if vars.is_empty() {
        return None;
    }
    let mut acc = vars[0];
    for &v in &vars[1..] {
        acc = g.add(acc, v);
    }
    Some(g.scale(acc, 1.0 / vars.len() as f32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MossConfig, MossModel, MossVariant};
    use crate::sample::{CircuitSample, SampleOptions};
    use moss_llm::{EncoderConfig, TextEncoder};
    use moss_netlist::CellLibrary;

    fn tiny_world() -> (MossModel, TextEncoder, ParamStore, Vec<Prepared>) {
        let sources = [
            "module a(input clk, input x, output q);
               reg r0; always @(posedge clk) r0 <= x ^ r0; assign q = r0;
             endmodule",
            "module b(input clk, input [1:0] d, output [1:0] q);
               reg [1:0] s; always @(posedge clk) s <= s + d; assign q = s;
             endmodule",
            "module c(input clk, input e, output [1:0] q);
               reg [1:0] s = 1; always @(posedge clk) s <= e ? (s << 1) : s;
               assign q = s;
             endmodule",
        ];
        let lib = CellLibrary::default();
        let mut store = ParamStore::new();
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = MossModel::new(MossConfig::small(16, MossVariant::Full), &mut store, 2);
        let preps: Vec<Prepared> = sources
            .iter()
            .map(|s| {
                let m = moss_rtl::parse(s).unwrap();
                let sample = CircuitSample::build(
                    &m,
                    &lib,
                    &SampleOptions {
                        sim_cycles: 128,
                        ..SampleOptions::default()
                    },
                )
                .unwrap();
                model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap()
            })
            .collect();
        (model, enc, store, preps)
    }

    #[test]
    fn pretrain_losses_trend_down() {
        let (model, _enc, mut store, preps) = tiny_world();
        let mut trainer = Trainer::new(TrainConfig {
            pretrain_epochs: 10,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        let hist = trainer.pretrain(&model, &mut store, &preps);
        assert_eq!(hist.len(), 10);
        let first = hist.first().unwrap().total;
        let last = hist.last().unwrap().total;
        assert!(last < first, "{first} → {last}");
    }

    #[test]
    fn align_phase_produces_curves_and_improves_rnc() {
        let (model, enc, mut store, preps) = tiny_world();
        let mut trainer = Trainer::new(TrainConfig {
            pretrain_epochs: 3,
            align_epochs: 12,
            align_batch: 3,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        trainer.pretrain(&model, &mut store, &preps);
        let hist = trainer.align(&model, &enc, &mut store, &preps);
        assert_eq!(hist.len(), 12);
        assert!(hist.last().unwrap().rnc < hist.first().unwrap().rnc);
    }

    #[test]
    fn align_skipped_for_no_alignment_variant() {
        let sources = "module a(input clk, input x, output q);
               reg r0; always @(posedge clk) r0 <= x; assign q = r0;
             endmodule";
        let lib = CellLibrary::default();
        let mut store = ParamStore::new();
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = MossModel::new(
            MossConfig::small(16, MossVariant::WithoutAlignment),
            &mut store,
            2,
        );
        let m = moss_rtl::parse(sources).unwrap();
        let sample = CircuitSample::build(
            &m,
            &lib,
            &SampleOptions {
                sim_cycles: 64,
                ..SampleOptions::default()
            },
        )
        .unwrap();
        let prep = model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap();
        let mut trainer = Trainer::new(TrainConfig::default());
        let hist = trainer.align(&model, &enc, &mut store, &[prep.clone(), prep]);
        assert!(hist.is_empty());
    }

    #[test]
    fn batch_ranges_fold_short_tail_instead_of_dropping() {
        // The ISSUE case: 5 circuits, align_batch 4 — the old chunking
        // dropped the 1-circuit tail, starving it of alignment gradient.
        assert_eq!(batch_ranges(5, 4), vec![(0, 5)]);
        assert_eq!(batch_ranges(9, 4), vec![(0, 4), (4, 9)]);
        // Exact multiples are untouched.
        assert_eq!(batch_ranges(8, 4), vec![(0, 4), (4, 8)]);
        // Tails of >= 2 stay their own batch.
        assert_eq!(batch_ranges(6, 4), vec![(0, 4), (4, 6)]);
    }

    #[test]
    fn batch_ranges_cover_every_circuit_with_usable_batches() {
        for len in 2..48 {
            for batch in 2..9 {
                let r = batch_ranges(len, batch);
                assert_eq!(r[0].0, 0);
                assert_eq!(r.last().unwrap().1, len);
                assert!(r.windows(2).all(|w| w[0].1 == w[1].0), "contiguous");
                assert!(
                    r.iter().all(|&(s, e)| e - s >= 2),
                    "len {len} batch {batch}: every batch feeds the RNC loss"
                );
            }
        }
    }

    #[test]
    fn align_covers_all_circuits_when_len_mod_batch_is_one() {
        // 3 circuits with batch 2 (3 % 2 == 1): the fix folds the tail so
        // each epoch trains one batch of all 3 circuits instead of
        // dropping one.
        let (model, enc, mut store, preps) = tiny_world();
        let mut trainer = Trainer::new(TrainConfig {
            pretrain_epochs: 2,
            align_epochs: 6,
            align_batch: 2,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        trainer.pretrain(&model, &mut store, &preps);
        let hist = trainer.align(&model, &enc, &mut store, &preps);
        assert_eq!(hist.len(), 6);
        assert!(hist.iter().all(|e| e.total.is_finite()));
        assert!(hist.last().unwrap().rnc < hist.first().unwrap().rnc);
    }

    #[test]
    fn dynamic_weights_balance_magnitudes() {
        let mut w = DynamicWeights::new(2);
        // One task 100× larger: its weight must end up smaller.
        let mut weights = vec![1.0, 1.0];
        for _ in 0..50 {
            weights = w.update(&[10.0, 0.1]);
        }
        assert!(weights[1] > weights[0] * 10.0);
        // Weights stay normalized to the task count.
        let sum: f32 = weights.iter().sum();
        assert!((sum - 2.0).abs() < 1e-3);
    }

    #[test]
    fn resume_after_crash_is_bit_identical_to_uninterrupted_run() {
        let cfg = TrainConfig {
            pretrain_epochs: 5,
            align_epochs: 3,
            align_batch: 3,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        };

        // Reference: the run that never crashes.
        let (model, enc, mut store_a, preps) = tiny_world();
        let mut t_a = Trainer::new(cfg);
        t_a.pretrain(&model, &mut store_a, &preps);
        t_a.align(&model, &enc, &mut store_a, &preps);

        // The same run, killed mid-epoch 3 of pre-training (7 optimizer
        // steps = 2 full epochs of 3 circuits + 1 step whose update the
        // crash throws away), then resumed from the last autosave.
        let path = std::env::temp_dir().join(format!("moss_resume_{}.bin", std::process::id()));
        let (model_b, enc_b, mut store_b, preps_b) = tiny_world();
        let mut t_b = Trainer::new(cfg);
        t_b.autosave_to(&path);
        t_b.abort_after_steps(7);
        t_b.pretrain(&model_b, &mut store_b, &preps_b);
        drop((t_b, store_b, model_b)); // the crash

        let (rc, mut store_r, mut t_r) = Trainer::resume_from(&path).unwrap();
        assert_eq!(t_r.pretrain_epochs_done(), 2, "autosave is per-epoch");
        // Rebinding by name restores the trained values under the original
        // ParamIds (load preserves insertion order).
        let model_r = MossModel::new(rc, &mut store_r, 0xdead);
        let pre = t_r.pretrain(&model_r, &mut store_r, &preps_b);
        assert_eq!(pre.len(), cfg.pretrain_epochs, "full history after resume");
        t_r.align(&model_r, &enc_b, &mut store_r, &preps_b);

        for ((ida, _, ta), (idr, _, tr)) in store_a.iter().zip(store_r.iter()) {
            assert_eq!(ida, idr);
            assert_eq!(ta.shape(), tr.shape());
            for (a, r) in ta.data().iter().zip(tr.data()) {
                assert_eq!(a.to_bits(), r.to_bits(), "param {ida:?} diverged");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn nan_fault_site_skips_steps_without_poisoning_training() {
        let (model, _enc, mut store, preps) = tiny_world();
        moss_faults::override_for_tests(Some("nan:0.3:5"));
        let mut trainer = Trainer::new(TrainConfig {
            pretrain_epochs: 6,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        let hist = trainer.pretrain(&model, &mut store, &preps);
        moss_faults::override_for_tests(None);
        assert_eq!(hist.len(), 6);
        assert!(hist.iter().all(|e| e.total.is_finite()), "{hist:?}");
        for (_, _, t) in store.iter() {
            assert!(t.data().iter().all(|v| v.is_finite()));
        }
    }
}
