//! Multi-task training with dynamic loss balancing (paper Eq. 2) in two
//! phases: pre-training on the local tasks (Fig. 7) and multimodal
//! alignment (Fig. 8).

use moss_prng::rngs::StdRng;
use moss_prng::seq::SliceRandom;
use moss_prng::SeedableRng;
use moss_tensor::{Adam, Graph, ParamStore, Var};

use crate::deepseq2::DeepSeq2;
use crate::model::{MossModel, Prepared};
use moss_llm::TextEncoder;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate (paper: 6e-4).
    pub learning_rate: f32,
    /// Pre-training epochs (paper: 45 with early stopping).
    pub pretrain_epochs: usize,
    /// Alignment epochs.
    pub align_epochs: usize,
    /// Circuits per alignment batch (RNC needs ≥ 2).
    pub align_batch: usize,
    /// RNG seed (shuffling).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 6e-4,
            pretrain_epochs: 45,
            align_epochs: 45,
            align_batch: 4,
            seed: 0x7ea1,
        }
    }
}

/// Loss values from one pre-training epoch (Fig. 7 curves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainEpoch {
    /// Weighted total.
    pub total: f64,
    /// Probability loss (Fig. 7b).
    pub probability: f64,
    /// Toggle loss (Fig. 7c).
    pub toggle: f64,
    /// Arrival-time loss (Fig. 7d).
    pub arrival: f64,
    /// Power loss.
    pub power: f64,
}

/// Loss values from one alignment epoch (Fig. 8 curves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignEpoch {
    /// Weighted total (Fig. 8a).
    pub total: f64,
    /// RNC loss (Fig. 8b).
    pub rnc: f64,
    /// RNM loss (Fig. 8c).
    pub rnm: f64,
    /// RrNdM loss.
    pub rrndm: f64,
}

/// Dynamic per-task weights: λᵢ tracks the inverse of each task's running
/// loss magnitude so no single task dominates (paper Eq. 2).
#[derive(Debug, Clone)]
pub struct DynamicWeights {
    ema: Vec<f64>,
    beta: f64,
}

impl DynamicWeights {
    /// Balancer over `tasks` losses.
    pub fn new(tasks: usize) -> DynamicWeights {
        DynamicWeights {
            ema: vec![1.0; tasks],
            beta: 0.9,
        }
    }

    /// Updates the running magnitudes and returns normalized weights.
    pub fn update(&mut self, losses: &[f64]) -> Vec<f32> {
        assert_eq!(losses.len(), self.ema.len(), "task count fixed");
        for (e, &l) in self.ema.iter_mut().zip(losses) {
            *e = self.beta * *e + (1.0 - self.beta) * l.max(1e-6);
        }
        let inv: Vec<f64> = self.ema.iter().map(|&e| 1.0 / (e + 1e-3)).collect();
        let sum: f64 = inv.iter().sum();
        inv.iter()
            .map(|&i| (i / sum * losses.len() as f64) as f32)
            .collect()
    }
}

/// Trains MOSS (or a variant) through both phases.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    optimizer: Adam,
    rng: StdRng,
}

impl Trainer {
    /// A trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer {
            optimizer: Adam::new(config.learning_rate),
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Phase 1 — pre-training on the local tasks. Returns per-epoch losses
    /// (the Fig. 7 curves).
    pub fn pretrain(
        &mut self,
        model: &MossModel,
        store: &mut ParamStore,
        circuits: &[Prepared],
    ) -> Vec<PretrainEpoch> {
        let _obs = moss_obs::span("pretrain");
        let mut weights = DynamicWeights::new(4);
        let mut history = Vec::with_capacity(self.config.pretrain_epochs);
        let mut order: Vec<usize> = (0..circuits.len()).collect();
        for _ in 0..self.config.pretrain_epochs {
            let _epoch_obs = moss_obs::span_items("pretrain_epoch", circuits.len() as u64);
            moss_obs::counter("train.pretrain_epochs", 1);
            order.shuffle(&mut self.rng);
            let mut sums = [0.0f64; 5];
            for &i in &order {
                let prep = &circuits[i];
                let mut g = Graph::new();
                let l = model.local_losses(&mut g, store, prep);
                let raw = [
                    g.value(l.probability).get(0, 0) as f64,
                    g.value(l.toggle).get(0, 0) as f64,
                    g.value(l.arrival).get(0, 0) as f64,
                    g.value(l.power).get(0, 0) as f64,
                ];
                let w = weights.update(&raw);
                let total =
                    weighted_sum(&mut g, &[l.probability, l.toggle, l.arrival, l.power], &w);
                sums[0] += g.value(total).get(0, 0) as f64;
                sums[1] += raw[0];
                sums[2] += raw[1];
                sums[3] += raw[2];
                sums[4] += raw[3];
                let grads = g.backward(total);
                self.optimizer.step(store, &grads);
            }
            let n = circuits.len().max(1) as f64;
            history.push(PretrainEpoch {
                total: sums[0] / n,
                probability: sums[1] / n,
                toggle: sums[2] / n,
                arrival: sums[3] / n,
                power: sums[4] / n,
            });
        }
        history
    }

    /// Phase 2 — multimodal alignment: RNC + RNM + RrNdM over circuit
    /// batches, with the local tasks kept in the objective at reduced
    /// weight. Returns per-epoch losses (the Fig. 8 curves).
    ///
    /// No-ops (returns empty history) if the model variant disables
    /// alignment.
    pub fn align(
        &mut self,
        model: &MossModel,
        encoder: &TextEncoder,
        store: &mut ParamStore,
        circuits: &[Prepared],
    ) -> Vec<AlignEpoch> {
        if !model.config().variant.alignment() || circuits.len() < 2 {
            return Vec::new();
        }
        let _obs = moss_obs::span("align");
        // The GNN trunk is frozen during alignment: its outputs are
        // precomputed once, and only the projection heads (W_n, W_r,
        // register/DFF projections), the RNM MLP, the temperature, and the
        // text encoder's LoRA adapters receive gradients. This protects the
        // regression heads' trunk from the retrieval objective (at the
        // paper's data scale joint training is feasible; at ours it
        // catastrophically forgets arrival/toggle structure) and makes the
        // phase cheap — no per-epoch GNN forward passes.
        let frozen: Vec<(moss_tensor::Tensor, moss_tensor::Tensor)> = circuits
            .iter()
            .map(|p| model.frozen_embeddings(store, p))
            .collect();
        let mut opt = Adam::new(self.config.learning_rate * 2.0);
        let batch = self.config.align_batch.max(2).min(circuits.len());
        // Batch boundaries: a leftover tail of one circuit cannot feed the
        // contrastive RNC loss on its own, so it is folded into the previous
        // batch rather than dropped — every circuit receives an alignment
        // gradient every epoch, and the epoch average covers all samples.
        let ranges = batch_ranges(circuits.len(), batch);
        let mut history = Vec::with_capacity(self.config.align_epochs);
        let mut order: Vec<usize> = (0..circuits.len()).collect();
        for _ in 0..self.config.align_epochs {
            let _epoch_obs = moss_obs::span_items("align_epoch", circuits.len() as u64);
            moss_obs::counter("train.align_epochs", 1);
            order.shuffle(&mut self.rng);
            let mut sums = [0.0f64; 4];
            let mut batches = 0usize;
            for &(start, end) in &ranges {
                let chunk = &order[start..end];
                let mut g = Graph::new();
                let mut rtl = Vec::with_capacity(chunk.len());
                let mut net = Vec::with_capacity(chunk.len());
                let mut rrndm_losses: Vec<Var> = Vec::new();
                for &i in chunk {
                    let prep = &circuits[i];
                    net.push(model.netlist_align_frozen(&mut g, store, &frozen[i].0));
                    rtl.push(model.rtl_align_trainable(&mut g, store, encoder, &prep.rtl_windows));
                    if let Some(r) = model.rrndm_frozen(&mut g, store, &frozen[i].1, prep) {
                        rrndm_losses.push(r);
                    }
                }
                let rnc = model.rnc_loss(&mut g, store, &rtl, &net);
                let rnm = model.rnm_loss(&mut g, store, &rtl, &net);
                let rrndm = mean_vars(&mut g, &rrndm_losses);

                let mut total = g.add(rnc, rnm);
                if let Some(r) = rrndm {
                    total = g.add(total, r);
                }
                sums[0] += g.value(total).get(0, 0) as f64;
                sums[1] += g.value(rnc).get(0, 0) as f64;
                sums[2] += g.value(rnm).get(0, 0) as f64;
                if let Some(r) = rrndm {
                    sums[3] += g.value(r).get(0, 0) as f64;
                }
                batches += 1;
                let grads = g.backward(total);
                opt.step(store, &grads);
            }
            let n = batches.max(1) as f64;
            history.push(AlignEpoch {
                total: sums[0] / n,
                rnc: sums[1] / n,
                rnm: sums[2] / n,
                rrndm: sums[3] / n,
            });
        }
        history
    }

    /// Trains the DeepSeq2 baseline on its four local tasks.
    pub fn train_deepseq2(
        &mut self,
        model: &DeepSeq2,
        store: &mut ParamStore,
        circuits: &[Prepared],
    ) -> Vec<PretrainEpoch> {
        let mut weights = DynamicWeights::new(4);
        let mut history = Vec::with_capacity(self.config.pretrain_epochs);
        let mut order: Vec<usize> = (0..circuits.len()).collect();
        for _ in 0..self.config.pretrain_epochs {
            order.shuffle(&mut self.rng);
            let mut sums = [0.0f64; 5];
            for &i in &order {
                let prep = &circuits[i];
                let mut g = Graph::new();
                let l = model.losses(&mut g, store, prep);
                let raw = [
                    g.value(l.probability).get(0, 0) as f64,
                    g.value(l.toggle).get(0, 0) as f64,
                    g.value(l.arrival).get(0, 0) as f64,
                    g.value(l.power).get(0, 0) as f64,
                ];
                let w = weights.update(&raw);
                let total =
                    weighted_sum(&mut g, &[l.probability, l.toggle, l.arrival, l.power], &w);
                sums[0] += g.value(total).get(0, 0) as f64;
                for (s, &r) in sums[1..].iter_mut().zip(&raw) {
                    *s += r;
                }
                let grads = g.backward(total);
                self.optimizer.step(store, &grads);
            }
            let n = circuits.len().max(1) as f64;
            history.push(PretrainEpoch {
                total: sums[0] / n,
                probability: sums[1] / n,
                toggle: sums[2] / n,
                arrival: sums[3] / n,
                power: sums[4] / n,
            });
        }
        history
    }
}

/// Splits `len` indices into `[start, end)` batches of nominal size
/// `batch`, folding a final chunk shorter than 2 into the previous batch
/// (the RNC contrastive loss needs ≥ 2 circuits per batch). Every index is
/// covered by exactly one range, and with `len ≥ 2` every range holds at
/// least 2 indices.
fn batch_ranges(len: usize, batch: usize) -> Vec<(usize, usize)> {
    let batch = batch.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(batch));
    let mut start = 0;
    while start < len {
        let end = (start + batch).min(len);
        ranges.push((start, end));
        start = end;
    }
    if let [.., prev, last] = ranges.as_mut_slice() {
        if last.1 - last.0 < 2 {
            prev.1 = last.1;
            ranges.pop();
        }
    }
    ranges
}

fn weighted_sum(g: &mut Graph, losses: &[Var], weights: &[f32]) -> Var {
    debug_assert_eq!(losses.len(), weights.len());
    let mut acc: Option<Var> = None;
    for (&l, &w) in losses.iter().zip(weights) {
        let scaled = g.scale(l, w);
        acc = Some(match acc {
            Some(a) => g.add(a, scaled),
            None => scaled,
        });
    }
    acc.expect("at least one loss")
}

fn mean_vars(g: &mut Graph, vars: &[Var]) -> Option<Var> {
    if vars.is_empty() {
        return None;
    }
    let mut acc = vars[0];
    for &v in &vars[1..] {
        acc = g.add(acc, v);
    }
    Some(g.scale(acc, 1.0 / vars.len() as f32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MossConfig, MossModel, MossVariant};
    use crate::sample::{CircuitSample, SampleOptions};
    use moss_llm::{EncoderConfig, TextEncoder};
    use moss_netlist::CellLibrary;

    fn tiny_world() -> (MossModel, TextEncoder, ParamStore, Vec<Prepared>) {
        let sources = [
            "module a(input clk, input x, output q);
               reg r0; always @(posedge clk) r0 <= x ^ r0; assign q = r0;
             endmodule",
            "module b(input clk, input [1:0] d, output [1:0] q);
               reg [1:0] s; always @(posedge clk) s <= s + d; assign q = s;
             endmodule",
            "module c(input clk, input e, output [1:0] q);
               reg [1:0] s = 1; always @(posedge clk) s <= e ? (s << 1) : s;
               assign q = s;
             endmodule",
        ];
        let lib = CellLibrary::default();
        let mut store = ParamStore::new();
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = MossModel::new(MossConfig::small(16, MossVariant::Full), &mut store, 2);
        let preps: Vec<Prepared> = sources
            .iter()
            .map(|s| {
                let m = moss_rtl::parse(s).unwrap();
                let sample = CircuitSample::build(
                    &m,
                    &lib,
                    &SampleOptions {
                        sim_cycles: 128,
                        ..SampleOptions::default()
                    },
                )
                .unwrap();
                model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap()
            })
            .collect();
        (model, enc, store, preps)
    }

    #[test]
    fn pretrain_losses_trend_down() {
        let (model, _enc, mut store, preps) = tiny_world();
        let mut trainer = Trainer::new(TrainConfig {
            pretrain_epochs: 10,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        let hist = trainer.pretrain(&model, &mut store, &preps);
        assert_eq!(hist.len(), 10);
        let first = hist.first().unwrap().total;
        let last = hist.last().unwrap().total;
        assert!(last < first, "{first} → {last}");
    }

    #[test]
    fn align_phase_produces_curves_and_improves_rnc() {
        let (model, enc, mut store, preps) = tiny_world();
        let mut trainer = Trainer::new(TrainConfig {
            pretrain_epochs: 3,
            align_epochs: 12,
            align_batch: 3,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        trainer.pretrain(&model, &mut store, &preps);
        let hist = trainer.align(&model, &enc, &mut store, &preps);
        assert_eq!(hist.len(), 12);
        assert!(hist.last().unwrap().rnc < hist.first().unwrap().rnc);
    }

    #[test]
    fn align_skipped_for_no_alignment_variant() {
        let sources = "module a(input clk, input x, output q);
               reg r0; always @(posedge clk) r0 <= x; assign q = r0;
             endmodule";
        let lib = CellLibrary::default();
        let mut store = ParamStore::new();
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = MossModel::new(
            MossConfig::small(16, MossVariant::WithoutAlignment),
            &mut store,
            2,
        );
        let m = moss_rtl::parse(sources).unwrap();
        let sample = CircuitSample::build(
            &m,
            &lib,
            &SampleOptions {
                sim_cycles: 64,
                ..SampleOptions::default()
            },
        )
        .unwrap();
        let prep = model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap();
        let mut trainer = Trainer::new(TrainConfig::default());
        let hist = trainer.align(&model, &enc, &mut store, &[prep.clone(), prep]);
        assert!(hist.is_empty());
    }

    #[test]
    fn batch_ranges_fold_short_tail_instead_of_dropping() {
        // The ISSUE case: 5 circuits, align_batch 4 — the old chunking
        // dropped the 1-circuit tail, starving it of alignment gradient.
        assert_eq!(batch_ranges(5, 4), vec![(0, 5)]);
        assert_eq!(batch_ranges(9, 4), vec![(0, 4), (4, 9)]);
        // Exact multiples are untouched.
        assert_eq!(batch_ranges(8, 4), vec![(0, 4), (4, 8)]);
        // Tails of >= 2 stay their own batch.
        assert_eq!(batch_ranges(6, 4), vec![(0, 4), (4, 6)]);
    }

    #[test]
    fn batch_ranges_cover_every_circuit_with_usable_batches() {
        for len in 2..48 {
            for batch in 2..9 {
                let r = batch_ranges(len, batch);
                assert_eq!(r[0].0, 0);
                assert_eq!(r.last().unwrap().1, len);
                assert!(r.windows(2).all(|w| w[0].1 == w[1].0), "contiguous");
                assert!(
                    r.iter().all(|&(s, e)| e - s >= 2),
                    "len {len} batch {batch}: every batch feeds the RNC loss"
                );
            }
        }
    }

    #[test]
    fn align_covers_all_circuits_when_len_mod_batch_is_one() {
        // 3 circuits with batch 2 (3 % 2 == 1): the fix folds the tail so
        // each epoch trains one batch of all 3 circuits instead of
        // dropping one.
        let (model, enc, mut store, preps) = tiny_world();
        let mut trainer = Trainer::new(TrainConfig {
            pretrain_epochs: 2,
            align_epochs: 6,
            align_batch: 2,
            learning_rate: 3e-3,
            ..TrainConfig::default()
        });
        trainer.pretrain(&model, &mut store, &preps);
        let hist = trainer.align(&model, &enc, &mut store, &preps);
        assert_eq!(hist.len(), 6);
        assert!(hist.iter().all(|e| e.total.is_finite()));
        assert!(hist.last().unwrap().rnc < hist.first().unwrap().rnc);
    }

    #[test]
    fn dynamic_weights_balance_magnitudes() {
        let mut w = DynamicWeights::new(2);
        // One task 100× larger: its weight must end up smaller.
        let mut weights = vec![1.0, 1.0];
        for _ in 0..50 {
            weights = w.update(&[10.0, 0.1]);
        }
        assert!(weights[1] > weights[0] * 10.0);
        // Weights stay normalized to the task count.
        let sum: f32 = weights.iter().sum();
        assert!((sum - 2.0).abs() < 1e-3);
    }
}
