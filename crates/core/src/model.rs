//! The MOSS model: LLM-enhanced GNN with task heads and the local/global
//! alignment machinery of §IV-C.

use std::collections::HashMap;

use moss_gnn::{cluster_nodes, CircuitGnn, CircuitGraph, ClusterConfig, Clustering, GnnConfig};
use moss_llm::TextEncoder;
use moss_netlist::{CellKind, CellLibrary, NodeKind};
use moss_tensor::{Graph, ParamId, ParamStore, Tensor, Var};

use crate::features::{build_node_features, FeatureOptions, STRUCT_DIM};
use crate::sample::CircuitSample;

/// The paper's model variants (Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MossVariant {
    /// The full model.
    Full,
    /// "MOSS w/o A": no local-global alignment strategy.
    WithoutAlignment,
    /// "MOSS w/o AA": LLM features, but no adaptive aggregator and no
    /// alignment.
    WithoutAdaptiveAggregator,
    /// "MOSS w/o FAA": no LLM feature enhancement, no adaptive aggregator,
    /// no alignment.
    WithoutFeatureEnhancement,
}

impl MossVariant {
    /// All variants, in Table I column order.
    pub const ALL: [MossVariant; 4] = [
        MossVariant::WithoutFeatureEnhancement,
        MossVariant::WithoutAdaptiveAggregator,
        MossVariant::WithoutAlignment,
        MossVariant::Full,
    ];

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            MossVariant::Full => "MOSS",
            MossVariant::WithoutAlignment => "MOSS w/o A",
            MossVariant::WithoutAdaptiveAggregator => "MOSS w/o AA",
            MossVariant::WithoutFeatureEnhancement => "MOSS w/o FAA",
        }
    }

    /// Whether LLM feature enhancement is active.
    pub fn llm_features(self) -> bool {
        !matches!(self, MossVariant::WithoutFeatureEnhancement)
    }

    /// Whether the adaptive (attention, clustered) aggregator is active.
    pub fn adaptive_aggregator(self) -> bool {
        matches!(self, MossVariant::Full | MossVariant::WithoutAlignment)
    }

    /// Whether the local-global alignment losses are active.
    pub fn alignment(self) -> bool {
        matches!(self, MossVariant::Full)
    }
}

/// MOSS hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MossConfig {
    /// LLM embedding width (must match the paired text encoder).
    pub d_llm: usize,
    /// GNN hidden width.
    pub d_hidden: usize,
    /// Two-phase propagation rounds.
    pub iterations: usize,
    /// Aggregator (cluster) budget.
    pub aggregators: usize,
    /// Shared alignment-space width (`d_r` in Fig. 6).
    pub d_align: usize,
    /// Model variant.
    pub variant: MossVariant,
    /// DBSCAN radius for the adaptive clustering of the cell-kind
    /// embedding vocabulary.
    pub cluster_eps: f32,
    /// Run the turnaround (DFF feedback) phase; `false` is the single-phase
    /// ablation (not one of the paper's named variants, but the design
    /// choice §IV-B motivates).
    pub two_phase: bool,
}

impl MossConfig {
    /// Small CPU-friendly defaults for a given variant.
    pub fn small(d_llm: usize, variant: MossVariant) -> MossConfig {
        MossConfig {
            d_llm,
            d_hidden: 16,
            iterations: 4,
            aggregators: 6,
            d_align: 16,
            variant,
            cluster_eps: 0.75,
            two_phase: true,
        }
    }
}

/// A circuit prepared for training/inference: schedule, features, targets.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Design name.
    pub name: String,
    /// The propagation-ready graph.
    pub circuit: CircuitGraph,
    /// Node indices of standard cells (toggle/probability tasks).
    pub cell_nodes: Vec<usize>,
    /// Node indices of DFFs, in arrival-label order.
    pub dff_nodes: Vec<usize>,
    /// Toggle-rate targets (`cells × 1`).
    pub toggle_target: Tensor,
    /// Signal-probability targets (`cells × 1`).
    pub prob_target: Tensor,
    /// Arrival-time targets in ns (`dffs × 1`).
    pub arrival_target: Tensor,
    /// Per-cell `switch_energy × clock` factors (nW per unit activity).
    pub energy_vec: Tensor,
    /// Known leakage power, nW.
    pub leakage_nw: f64,
    /// Ground-truth total power, nW.
    pub true_power_nw: f64,
    /// Register-prompt embeddings (`registers × d_llm`).
    pub reg_embs: Tensor,
    /// Per-DFF register row index (RrNdM ground truth).
    pub dff_reg_index: Vec<usize>,
    /// Whole-RTL embedding (`1 × d_llm`).
    pub rtl_emb: Tensor,
    /// Tokenized windows of the whole-RTL text (for alignment training,
    /// where the text tower trains through its LoRA adapters).
    pub rtl_windows: Vec<Vec<usize>>,
}

/// Per-task loss handles from one forward pass.
#[derive(Debug, Clone, Copy)]
pub struct LocalLosses {
    /// Etoggle loss.
    pub toggle: Var,
    /// Probability loss (pre-training, Fig. 7b).
    pub probability: Var,
    /// EAT loss.
    pub arrival: Var,
    /// Power (circuit-level) loss.
    pub power: Var,
    /// RrNdM loss (present only when alignment is active and the design
    /// has registers).
    pub rrndm: Option<Var>,
    /// Alignment-space netlist embedding (`1 × d_align`, L2-normalized).
    pub netlist_align: Var,
}

/// Numeric predictions for evaluation.
#[derive(Debug, Clone)]
pub struct Predictions {
    /// Toggle rate per cell node (aligned with `Prepared::cell_nodes`).
    pub toggle: Vec<f32>,
    /// Arrival time (ns) per DFF (aligned with `Prepared::dff_nodes`).
    pub arrival_ns: Vec<f32>,
    /// Predicted total power, nW.
    pub power_nw: f64,
    /// Alignment-space netlist embedding.
    pub netlist_align: Vec<f32>,
}

/// The MOSS model: GNN + heads + alignment projections.
#[derive(Debug, Clone)]
pub struct MossModel {
    config: MossConfig,
    gnn: CircuitGnn,
    w_toggle: ParamId,
    b_toggle: ParamId,
    w_prob: ParamId,
    b_prob: ParamId,
    w_at: ParamId,
    b_at: ParamId,
    w_act: ParamId,
    b_act: ParamId,
    w_dff_align: ParamId,
    w_reg_align: ParamId,
    w_n: ParamId,
    w_r: ParamId,
    temperature: ParamId,
    rnm_w1: ParamId,
    rnm_b1: ParamId,
    rnm_w2: ParamId,
}

impl MossModel {
    /// Registers all model parameters into `store`.
    pub fn new(config: MossConfig, store: &mut ParamStore, seed: u64) -> MossModel {
        let d_in = STRUCT_DIM + config.d_llm;
        let gnn = CircuitGnn::new(
            GnnConfig {
                d_in,
                d_hidden: config.d_hidden,
                iterations: config.iterations,
                aggregators: config.aggregators,
                attention: config.variant.adaptive_aggregator(),
                two_phase: config.two_phase,
            },
            store,
            seed,
        );
        let d = config.d_hidden;
        let da = config.d_align;
        let mk = |store: &mut ParamStore, name: &str, r: usize, c: usize, s: u64| {
            store.get_or_add(name, Tensor::xavier(r, c, s))
        };
        MossModel {
            gnn,
            w_toggle: mk(store, "moss.head.toggle.w", d, 1, seed + 201),
            b_toggle: store.get_or_add("moss.head.toggle.b", Tensor::zeros(1, 1)),
            w_prob: mk(store, "moss.head.prob.w", d, 1, seed + 202),
            b_prob: store.get_or_add("moss.head.prob.b", Tensor::zeros(1, 1)),
            w_at: mk(store, "moss.head.at.w", d, 1, seed + 203),
            b_at: store.get_or_add("moss.head.at.b", Tensor::zeros(1, 1)),
            w_act: mk(store, "moss.head.act.w", d, 1, seed + 204),
            b_act: store.get_or_add("moss.head.act.b", Tensor::zeros(1, 1)),
            w_dff_align: mk(store, "moss.align.dff.w", d, da, seed + 205),
            w_reg_align: mk(store, "moss.align.reg.w", config.d_llm, da, seed + 206),
            w_n: mk(store, "moss.align.wn", d, da, seed + 207),
            w_r: mk(store, "moss.align.wr", config.d_llm, da, seed + 208),
            temperature: store.get_or_add("moss.align.temp", Tensor::from_rows(&[&[2.0]])),
            rnm_w1: mk(store, "moss.align.rnm.w1", 2 * da, da, seed + 209),
            rnm_b1: store.get_or_add("moss.align.rnm.b1", Tensor::zeros(1, da)),
            rnm_w2: mk(store, "moss.align.rnm.w2", da, 1, seed + 210),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MossConfig {
        &self.config
    }

    /// Prepares one sample: clustering (Fig. 5), feature construction
    /// (Fig. 2A), targets, and text embeddings.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist cannot be levelized (synthesis bug).
    pub fn prepare(
        &self,
        sample: &CircuitSample,
        encoder: &TextEncoder,
        store: &ParamStore,
        lib: &CellLibrary,
        clock_mhz: f64,
    ) -> Result<Prepared, moss_netlist::NetlistError> {
        let _obs = moss_obs::span_items("prepare", sample.netlist.node_count() as u64);
        let options = FeatureOptions {
            llm_enhancement: self.config.variant.llm_features(),
        };
        let features = build_node_features(
            &sample.netlist,
            encoder,
            store,
            &sample.register_descs,
            &sample.bindings,
            &options,
        )?;
        let clusters = if self.config.variant.adaptive_aggregator() {
            // Cluster the *cell-kind vocabulary* (18 LLM-embedded datasheet
            // descriptions) rather than the per-circuit node embeddings, so
            // that aggregator k always sees the same functional family of
            // cells in every circuit. Per-circuit clustering would give the
            // dedicated aggregators incoherent training populations (cluster
            // 0 meaning NANDs in one design and XORs in another).
            let kind_descs: Vec<&str> = CellKind::ALL.iter().map(|k| k.description()).collect();
            let kind_embs: Vec<Vec<f32>> = encoder
                .embed_batch(store, &kind_descs)
                .into_iter()
                .map(|e| e.data().to_vec())
                .collect();
            let kind_struct: Vec<(f32, f32)> = CellKind::ALL
                .iter()
                .map(|k| (k.input_count() as f32, 1.0))
                .collect();
            let kinds = cluster_nodes(
                &kind_embs,
                &kind_struct,
                &ClusterConfig {
                    eps: self.config.cluster_eps,
                    min_pts: 2,
                    max_clusters: self.config.aggregators,
                    structure_weight: 0.25,
                },
            );
            debug_assert!(kinds.count <= self.config.aggregators);
            let wire_cluster = kinds.assignment[CellKind::Buf.index()];
            let assignment: Vec<usize> = sample
                .netlist
                .node_ids()
                .map(|id| match sample.netlist.kind(id) {
                    NodeKind::Cell(k) => kinds.assignment[k.index()],
                    // Ports ride with the buffer (wire-like) family.
                    _ => wire_cluster,
                })
                .collect();
            Clustering {
                assignment,
                count: kinds.count,
            }
        } else {
            Clustering {
                assignment: vec![0; sample.netlist.node_count()],
                count: 1,
            }
        };
        let circuit = CircuitGraph::new(&sample.netlist, features.matrix, clusters)?;

        let cell_nodes: Vec<usize> = sample
            .netlist
            .node_ids()
            .filter(|&id| matches!(sample.netlist.kind(id), NodeKind::Cell(_)))
            .map(|id| id.index())
            .collect();
        let toggle_target = Tensor::from_vec(
            cell_nodes
                .iter()
                .map(|&i| sample.labels.toggle[i])
                .collect(),
            cell_nodes.len(),
            1,
        );
        let prob_target = Tensor::from_vec(
            cell_nodes
                .iter()
                .map(|&i| sample.labels.probability[i])
                .collect(),
            cell_nodes.len(),
            1,
        );
        let dff_nodes: Vec<usize> = sample.labels.arrival_ns.iter().map(|&(i, _)| i).collect();
        let arrival_target = Tensor::from_vec(
            sample.labels.arrival_ns.iter().map(|&(_, a)| a).collect(),
            dff_nodes.len(),
            1,
        );
        let energy_vec = Tensor::from_vec(
            cell_nodes
                .iter()
                .map(|&i| {
                    let id = moss_netlist::NodeId::new(i);
                    match sample.netlist.kind(id) {
                        NodeKind::Cell(k) => {
                            lib.timing(k).switch_energy_fj as f32 * clock_mhz as f32
                        }
                        _ => 0.0,
                    }
                })
                .collect(),
            cell_nodes.len(),
            1,
        );

        // Register embeddings + per-DFF register index for RrNdM.
        let reg_names: Vec<&str> = sample
            .register_descs
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        let name_to_row: HashMap<&str, usize> =
            reg_names.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let d_llm = self.config.d_llm;
        let mut reg_embs = Tensor::zeros(reg_names.len().max(1), d_llm);
        let prompts: Vec<&str> = sample
            .register_descs
            .iter()
            .map(|rd| rd.prompt.as_str())
            .collect();
        for (i, e) in encoder.embed_batch(store, &prompts).into_iter().enumerate() {
            for j in 0..d_llm {
                reg_embs.set(i, j, e.get(0, j));
            }
        }
        let binding_reg: HashMap<usize, usize> = sample
            .bindings
            .iter()
            .filter_map(|b| {
                name_to_row
                    .get(b.register_name.as_str())
                    .map(|&row| (b.dff.index(), row))
            })
            .collect();
        let dff_reg_index: Vec<usize> = dff_nodes
            .iter()
            .map(|i| binding_reg.get(i).copied().unwrap_or(0))
            .collect();

        // Whole-RTL embedding: summary first (distinctive dataflow), then
        // the full source, embedded with windowing so nothing is truncated.
        let text = format!("{}\n{}", sample.summary, sample.rtl_text);
        let rtl_emb = encoder.embed_long(store, &text);
        let rtl_windows = text_windows(encoder, &text, 8);

        Ok(Prepared {
            name: sample.name.clone(),
            circuit,
            cell_nodes,
            dff_nodes,
            toggle_target,
            prob_target,
            arrival_target,
            energy_vec,
            leakage_nw: sample.labels.leakage_nw,
            true_power_nw: sample.labels.total_power_nw,
            reg_embs,
            dff_reg_index,
            rtl_emb,
            rtl_windows,
        })
    }

    /// Builds the forward pass and all local task losses (Etoggle, EAT,
    /// probability, power, and — when alignment is on — RrNdM), plus the
    /// alignment-space netlist embedding for the global losses.
    pub fn local_losses(&self, g: &mut Graph, store: &ParamStore, prep: &Prepared) -> LocalLosses {
        let out = self.gnn.forward(g, store, &prep.circuit);

        // Etoggle: sigmoid head on cell states. Weighted by the inverse
        // target magnitude so the loss optimizes *relative* error — the
        // paper's Fig. 1(a) error definition and Eq. 3 metric.
        let cells = g.gather_rows(out.states, &prep.cell_nodes);
        let toggle_pred = self.scalar_head(g, store, cells, self.w_toggle, self.b_toggle, true);
        let toggle = g.smooth_l1_weighted(
            toggle_pred,
            prep.toggle_target.clone(),
            relative_weights(&prep.toggle_target),
        );

        // Probability head (pre-training supervision).
        let prob_pred = self.scalar_head(g, store, cells, self.w_prob, self.b_prob, true);
        let probability = g.smooth_l1(prob_pred, prep.prob_target.clone());

        // EAT: linear head on DFF states (ns), relative-error weighted.
        let dffs = g.gather_rows(out.states, &prep.dff_nodes);
        let at_pred = self.scalar_head(g, store, dffs, self.w_at, self.b_at, false);
        let arrival = g.smooth_l1_weighted(
            at_pred,
            prep.arrival_target.clone(),
            relative_weights(&prep.arrival_target),
        );

        // Power: activity head × known per-cell energy, summed, + leakage,
        // supervised as a ratio to ground truth.
        let act = self.scalar_head(g, store, cells, self.w_act, self.b_act, true);
        let energy = g.input(prep.energy_vec.clone());
        let dyn_nw = g.mul(act, energy);
        let total_dyn = g.sum_all(dyn_nw);
        let scale = 1.0 / prep.true_power_nw.max(1e-9) as f32;
        let dyn_ratio = g.scale(total_dyn, scale);
        let leak = prep.leakage_nw as f32 * scale;
        let leak_ratio = g.input(Tensor::from_rows(&[&[leak]]));
        let total_ratio = g.add(dyn_ratio, leak_ratio);
        let power = g.smooth_l1(total_ratio, Tensor::from_rows(&[&[1.0]]));

        // RrNdM: match netlist DFF states to RTL register embeddings.
        let rrndm = if self.config.variant.alignment() && !prep.dff_nodes.is_empty() {
            let wd = g.param(self.w_dff_align, store);
            let wr = g.param(self.w_reg_align, store);
            let dproj = g.matmul(dffs, wd);
            let dproj = g.l2_normalize_rows(dproj);
            let regs = g.input(prep.reg_embs.clone());
            let rproj = g.matmul(regs, wr);
            let rproj = g.l2_normalize_rows(rproj);
            let rt = g.transpose(rproj);
            let logits = g.matmul(dproj, rt);
            let mut target = Tensor::zeros(prep.dff_nodes.len(), prep.reg_embs.rows());
            for (i, &r) in prep.dff_reg_index.iter().enumerate() {
                target.set(i, r, 1.0);
            }
            Some(g.smooth_l1(logits, target))
        } else {
            None
        };

        // Alignment-space netlist embedding (Fig. 6: N_e = l2(N_f · W_n)).
        let wn = g.param(self.w_n, store);
        let nproj = g.matmul(out.graph_embedding, wn);
        let netlist_align = g.l2_normalize_rows(nproj);

        LocalLosses {
            toggle,
            probability,
            arrival,
            power,
            rrndm,
            netlist_align,
        }
    }

    /// Builds the RTL tower *inside* the tape: the text windows run through
    /// the encoder with LoRA adapters trainable, are mean-pooled, projected
    /// by `W_r`, and L2-normalized. This is how the alignment phase
    /// fine-tunes the text side (paper Fig. 6 trains both encoders; the
    /// LLM side adapts through its LoRA path, §IV-A).
    pub fn rtl_align_trainable(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        encoder: &TextEncoder,
        windows: &[Vec<usize>],
    ) -> Var {
        assert!(!windows.is_empty(), "at least one text window");
        let pooled: Vec<Var> = windows
            .iter()
            .map(|w| encoder.pooled(g, store, w, moss_llm::TrainMode::LoraOnly))
            .collect();
        let stacked = g.concat_rows(&pooled);
        let mean = g.mean_rows(stacked);
        let wr = g.param(self.w_r, store);
        let proj = g.matmul(mean, wr);
        g.l2_normalize_rows(proj)
    }

    /// Runs the GNN once and returns the raw graph embedding and DFF hidden
    /// states as plain tensors, for trunk-frozen alignment training.
    pub fn frozen_embeddings(&self, store: &ParamStore, prep: &Prepared) -> (Tensor, Tensor) {
        let mut g = Graph::new();
        let out = self.gnn.forward(&mut g, store, &prep.circuit);
        let graph_emb = g.value(out.graph_embedding).clone();
        let dff_states = if prep.dff_nodes.is_empty() {
            Tensor::zeros(0, self.config.d_hidden)
        } else {
            let dffs = g.gather_rows(out.states, &prep.dff_nodes);
            g.value(dffs).clone()
        };
        (graph_emb, dff_states)
    }

    /// Fused batched inference: runs the GNN over several circuits on one
    /// tape (parameters loaded once) and returns each circuit's
    /// L2-normalized alignment-space embedding (`d_align` floats) — the
    /// exact values [`MossModel::predict`] reports as `netlist_align`,
    /// bit-for-bit, regardless of batch composition (see
    /// [`moss_gnn::CircuitGnn::forward_batch`]).
    pub fn netlist_align_batch(
        &self,
        store: &ParamStore,
        circuits: &[&CircuitGraph],
    ) -> Vec<Vec<f32>> {
        let mut g = Graph::new();
        let outs = self.gnn.forward_batch(&mut g, store, circuits);
        let wn = g.param(self.w_n, store);
        outs.into_iter()
            .map(|out| {
                let proj = g.matmul(out.graph_embedding, wn);
                let aligned = g.l2_normalize_rows(proj);
                g.value(aligned).data().to_vec()
            })
            .collect()
    }

    /// Alignment-space netlist embedding from a frozen graph embedding.
    pub fn netlist_align_frozen(&self, g: &mut Graph, store: &ParamStore, emb: &Tensor) -> Var {
        let e = g.input(emb.clone());
        let wn = g.param(self.w_n, store);
        let p = g.matmul(e, wn);
        g.l2_normalize_rows(p)
    }

    /// RrNdM loss over frozen DFF states (register ↔ DFF matching with the
    /// GNN trunk held fixed).
    pub fn rrndm_frozen(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        dff_states: &Tensor,
        prep: &Prepared,
    ) -> Option<Var> {
        if dff_states.rows() == 0 {
            return None;
        }
        let dffs = g.input(dff_states.clone());
        let wd = g.param(self.w_dff_align, store);
        let wr = g.param(self.w_reg_align, store);
        let dproj = g.matmul(dffs, wd);
        let dproj = g.l2_normalize_rows(dproj);
        let regs = g.input(prep.reg_embs.clone());
        let rproj = g.matmul(regs, wr);
        let rproj = g.l2_normalize_rows(rproj);
        let rt = g.transpose(rproj);
        let logits = g.matmul(dproj, rt);
        let mut target = Tensor::zeros(prep.dff_nodes.len(), prep.reg_embs.rows());
        for (i, &r) in prep.dff_reg_index.iter().enumerate() {
            target.set(i, r, 1.0);
        }
        Some(g.smooth_l1(logits, target))
    }

    /// Projects a whole-RTL embedding into the shared alignment space
    /// (Fig. 6: `R_e = l2(R_f)` — we include a learned projection so the
    /// text width may differ from `d_align`).
    pub fn rtl_align(&self, g: &mut Graph, store: &ParamStore, rtl_emb: &Tensor) -> Var {
        let r = g.input(rtl_emb.clone());
        let wr = g.param(self.w_r, store);
        let proj = g.matmul(r, wr);
        g.l2_normalize_rows(proj)
    }

    /// The symmetric RTL-netlist contrastive loss over a batch (Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two pairs are supplied.
    pub fn rnc_loss(&self, g: &mut Graph, store: &ParamStore, rtl: &[Var], net: &[Var]) -> Var {
        assert!(rtl.len() >= 2 && rtl.len() == net.len(), "need ≥2 pairs");
        // Batch-center both modalities before the similarity matrix: mean
        // pooling over hundreds of nodes (and tokens) concentrates
        // embeddings around a shared direction, and two collapsed towers
        // are a saddle point of the InfoNCE objective (all logits equal ⇒
        // zero gradient). Removing the batch mean exposes the
        // discriminative component at unit scale.
        let r_cat = g.concat_rows(rtl);
        let r = center_rows(g, r_cat);
        let n_cat = g.concat_rows(net);
        let n = center_rows(g, n_cat);
        let nt = g.transpose(n);
        let logits = g.matmul(r, nt);
        // exp(t) scaling with learned t, exactly as the pseudocode.
        let t = g.param(self.temperature, store);
        let expt = g.exp(t);
        let logits = g.mul_scalar_var(logits, expt);
        let labels: Vec<usize> = (0..rtl.len()).collect();
        let lr = g.cross_entropy_rows(logits, &labels);
        let lc = g.cross_entropy_cols(logits, &labels);
        let sum = g.add(lr, lc);
        g.scale(sum, 0.5)
    }

    /// The RTL-netlist matching loss: MLP on concatenated pairs vs the
    /// identity matrix, as smooth-L1 (Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two pairs are supplied.
    pub fn rnm_loss(&self, g: &mut Graph, store: &ParamStore, rtl: &[Var], net: &[Var]) -> Var {
        assert!(rtl.len() >= 2 && rtl.len() == net.len(), "need ≥2 pairs");
        let k = rtl.len();
        let w1 = g.param(self.rnm_w1, store);
        let b1 = g.param(self.rnm_b1, store);
        let w2 = g.param(self.rnm_w2, store);
        let r_cat = g.concat_rows(rtl);
        let r_c = center_rows(g, r_cat);
        let n_cat = g.concat_rows(net);
        let n_c = center_rows(g, n_cat);
        let mut rows = Vec::with_capacity(k * k);
        for i in 0..k {
            for j in 0..k {
                let ri = g.gather_rows(r_c, &[i]);
                let nj = g.gather_rows(n_c, &[j]);
                rows.push(g.concat_cols(ri, nj));
            }
        }
        let pairs = g.concat_rows(&rows);
        let h = g.matmul(pairs, w1);
        let h = g.add_row(h, b1);
        let h = g.gelu(h);
        let score = g.matmul(h, w2);
        let score = g.sigmoid(score);
        let mut target = Tensor::zeros(k * k, 1);
        for i in 0..k {
            target.set(i * k + i, 0, 1.0);
        }
        g.smooth_l1(score, target)
    }

    /// RNM matching score for one (rtl, netlist) pair of alignment-space
    /// embeddings, outside training.
    pub fn rnm_score(&self, store: &ParamStore, rtl: &[f32], net: &[f32]) -> f32 {
        let mut g = Graph::new();
        let r = g.input(Tensor::row(rtl));
        let n = g.input(Tensor::row(net));
        let pair = g.concat_cols(r, n);
        let w1 = g.param(self.rnm_w1, store);
        let b1 = g.param(self.rnm_b1, store);
        let w2 = g.param(self.rnm_w2, store);
        let h = g.matmul(pair, w1);
        let h = g.add_row(h, b1);
        let h = g.gelu(h);
        let s = g.matmul(h, w2);
        let s = g.sigmoid(s);
        g.value(s).get(0, 0)
    }

    /// Runs inference and extracts numeric predictions.
    pub fn predict(&self, store: &ParamStore, prep: &Prepared) -> Predictions {
        let mut g = Graph::new();
        let out = self.gnn.forward(&mut g, store, &prep.circuit);
        let cells = g.gather_rows(out.states, &prep.cell_nodes);
        let toggle_pred =
            self.scalar_head(&mut g, store, cells, self.w_toggle, self.b_toggle, true);
        let dffs = g.gather_rows(out.states, &prep.dff_nodes);
        let at_pred = self.scalar_head(&mut g, store, dffs, self.w_at, self.b_at, false);
        let act = self.scalar_head(&mut g, store, cells, self.w_act, self.b_act, true);
        let energy = g.input(prep.energy_vec.clone());
        let dyn_nw = g.mul(act, energy);
        let total_dyn = g.sum_all(dyn_nw);

        let wn = g.param(self.w_n, store);
        let nproj = g.matmul(out.graph_embedding, wn);
        let nalign = g.l2_normalize_rows(nproj);

        Predictions {
            toggle: g.value(toggle_pred).data().to_vec(),
            arrival_ns: g
                .value(at_pred)
                .data()
                .iter()
                .map(|&a| a.max(0.0))
                .collect(),
            power_nw: g.value(total_dyn).get(0, 0) as f64 + prep.leakage_nw,
            netlist_align: g.value(nalign).data().to_vec(),
        }
    }

    /// Alignment-space RTL embedding for evaluation, computed through the
    /// current (possibly alignment-tuned) encoder weights.
    pub fn rtl_align_vec(
        &self,
        store: &ParamStore,
        encoder: &TextEncoder,
        prep: &Prepared,
    ) -> Vec<f32> {
        let mut g = Graph::new();
        let v = self.rtl_align_trainable(&mut g, store, encoder, &prep.rtl_windows);
        g.value(v).data().to_vec()
    }

    fn scalar_head(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        states: Var,
        w: ParamId,
        b: ParamId,
        squash: bool,
    ) -> Var {
        let wv = g.param(w, store);
        let bv = g.param(b, store);
        let o = g.matmul(states, wv);
        let o = g.add_row(o, bv);
        if squash {
            g.sigmoid(o)
        } else {
            o
        }
    }
}

/// Per-element weights `1 / max(|t|, 0.05)`, matching the relative-error
/// evaluation metric (Eq. 3).
fn relative_weights(target: &Tensor) -> Tensor {
    target.map(|t| 1.0 / t.abs().max(0.05))
}

/// Subtracts the row mean and re-normalizes each row to unit length.
fn center_rows(g: &mut Graph, x: Var) -> Var {
    let m = g.mean_rows(x);
    let neg = g.scale(m, -1.0);
    let c = g.add_row(x, neg);
    g.l2_normalize_rows(c)
}

/// Splits a long text into at most `cap` token windows of the encoder's
/// context size, sampled evenly across the text.
fn text_windows(encoder: &TextEncoder, text: &str, cap: usize) -> Vec<Vec<usize>> {
    let all = encoder.tokenizer().encode(text, usize::MAX);
    let max_len = encoder.config().max_len;
    if all.len() <= max_len {
        return vec![all];
    }
    let body = &all[1..];
    let window = max_len - 1;
    let chunks: Vec<Vec<usize>> = body
        .chunks(window)
        .map(|c| {
            let mut t = Vec::with_capacity(c.len() + 1);
            t.push(moss_llm::special::CLS);
            t.extend_from_slice(c);
            t
        })
        .collect();
    if chunks.len() <= cap {
        return chunks;
    }
    // Evenly sample `cap` windows.
    (0..cap)
        .map(|i| chunks[i * chunks.len() / cap].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleOptions;
    use moss_llm::EncoderConfig;

    fn setup() -> (MossModel, TextEncoder, ParamStore, Prepared) {
        let m = moss_rtl::parse(
            "module cnt(input clk, input en, output [2:0] q);
               reg [2:0] s = 0;
               always @(posedge clk) s <= en ? (s + 3'd1) : s;
               assign q = s;
             endmodule",
        )
        .unwrap();
        let lib = CellLibrary::default();
        let sample = CircuitSample::build(
            &m,
            &lib,
            &SampleOptions {
                sim_cycles: 256,
                ..SampleOptions::default()
            },
        )
        .unwrap();
        let mut store = ParamStore::new();
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = MossModel::new(MossConfig::small(16, MossVariant::Full), &mut store, 2);
        let prep = model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap();
        (model, enc, store, prep)
    }

    #[test]
    fn local_losses_are_finite_scalars() {
        let (model, _enc, store, prep) = setup();
        let mut g = Graph::new();
        let losses = model.local_losses(&mut g, &store, &prep);
        for (name, v) in [
            ("toggle", losses.toggle),
            ("prob", losses.probability),
            ("arrival", losses.arrival),
            ("power", losses.power),
            ("rrndm", losses.rrndm.expect("alignment on")),
        ] {
            let val = g.value(v).get(0, 0);
            assert!(val.is_finite() && val >= 0.0, "{name} = {val}");
        }
        assert_eq!(g.value(losses.netlist_align).shape(), (1, 16));
    }

    #[test]
    fn training_reduces_total_local_loss() {
        let (model, _enc, mut store, prep) = setup();
        let mut opt = moss_tensor::Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..20 {
            let mut g = Graph::new();
            let l = model.local_losses(&mut g, &store, &prep);
            let s1 = g.add(l.toggle, l.probability);
            let s2 = g.add(l.arrival, l.power);
            let total = g.add(s1, s2);
            last = g.value(total).get(0, 0);
            first.get_or_insert(last);
            let grads = g.backward(total);
            opt.step(&mut store, &grads);
        }
        assert!(last < first.unwrap(), "{:?} → {last}", first);
    }

    #[test]
    fn rnc_and_rnm_losses_train_alignment() {
        let (model, _enc, store, prep) = setup();
        let mut g = Graph::new();
        let l1 = model.local_losses(&mut g, &store, &prep);
        let l2 = model.local_losses(&mut g, &store, &prep);
        let r1 = model.rtl_align(&mut g, &store, &prep.rtl_emb);
        let r2 = model.rtl_align(&mut g, &store, &prep.rtl_emb);
        let rnc = model.rnc_loss(
            &mut g,
            &store,
            &[r1, r2],
            &[l1.netlist_align, l2.netlist_align],
        );
        let rnm = model.rnm_loss(
            &mut g,
            &store,
            &[r1, r2],
            &[l1.netlist_align, l2.netlist_align],
        );
        assert!(g.value(rnc).get(0, 0).is_finite());
        assert!(g.value(rnm).get(0, 0).is_finite());
        // Gradients reach the temperature parameter through exp(t).
        let total = g.add(rnc, rnm);
        let grads = g.backward(total);
        let temp = store.find("moss.align.temp").unwrap();
        assert!(grads.get(temp).is_some());
    }

    #[test]
    fn predictions_have_expected_shapes() {
        let (model, _enc, store, prep) = setup();
        let p = model.predict(&store, &prep);
        assert_eq!(p.toggle.len(), prep.cell_nodes.len());
        assert_eq!(p.arrival_ns.len(), prep.dff_nodes.len());
        assert!(p.power_nw > 0.0);
        assert!(p.arrival_ns.iter().all(|&a| a >= 0.0));
        let norm: f32 = p.netlist_align.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "alignment embedding unit norm");
    }

    #[test]
    fn variants_toggle_components() {
        assert!(MossVariant::Full.alignment());
        assert!(!MossVariant::WithoutAlignment.alignment());
        assert!(MossVariant::WithoutAlignment.adaptive_aggregator());
        assert!(!MossVariant::WithoutAdaptiveAggregator.adaptive_aggregator());
        assert!(MossVariant::WithoutAdaptiveAggregator.llm_features());
        assert!(!MossVariant::WithoutFeatureEnhancement.llm_features());
    }

    #[test]
    fn rrndm_absent_without_alignment() {
        let m = moss_rtl::parse(
            "module t(input clk, input d, output q);
               reg r0;
               always @(posedge clk) r0 <= d;
               assign q = r0;
             endmodule",
        )
        .unwrap();
        let lib = CellLibrary::default();
        let sample = CircuitSample::build(
            &m,
            &lib,
            &SampleOptions {
                sim_cycles: 64,
                ..SampleOptions::default()
            },
        )
        .unwrap();
        let mut store = ParamStore::new();
        let enc = TextEncoder::new(EncoderConfig::tiny(), &mut store, 1);
        let model = MossModel::new(
            MossConfig::small(16, MossVariant::WithoutAlignment),
            &mut store,
            2,
        );
        let prep = model.prepare(&sample, &enc, &store, &lib, 500.0).unwrap();
        let mut g = Graph::new();
        let l = model.local_losses(&mut g, &store, &prep);
        assert!(l.rrndm.is_none());
    }
}
