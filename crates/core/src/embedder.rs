//! Serving-oriented embedding of bare gate-level netlists.
//!
//! The training pipeline prepares circuits through [`MossModel::prepare`],
//! which needs the RTL side of a sample (register prompts, bindings, the
//! whole-RTL text). A serving request carries none of that — just a
//! structural netlist — and must not pay an encoder forward pass per
//! request. [`NetlistEmbedder`] exploits the fact that everything the LLM
//! modality contributes to a *bare* netlist is circuit-independent: the 18
//! cell-kind description embeddings and the kind-vocabulary clustering
//! (Fig. 5) depend only on the model, so both are computed once at
//! construction. Per-request work is then purely structural: features,
//! schedule, one GNN forward, one alignment projection.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use moss_gnn::{cluster_nodes, CircuitGraph, ClusterConfig, Clustering};
use moss_llm::{EncoderConfig, TextEncoder};
use moss_netlist::{CellKind, Netlist, NetlistError, NodeKind};
use moss_tensor::ParamStore;

use crate::checkpoint::load_checkpoint_file;
use crate::features::{build_node_features_with, FeatureOptions};
use crate::model::{MossConfig, MossModel};

/// Seed for any parameter the checkpoint did not carry. Parameters bind by
/// name via `get_or_add`, so for a complete checkpoint the seed is inert.
const BIND_SEED: u64 = 0x5e12e;

/// A loaded MOSS model specialized for embedding bare netlists: weights,
/// precomputed cell-kind embeddings, and the fixed kind-vocabulary
/// clustering.
#[derive(Debug)]
pub struct NetlistEmbedder {
    model: MossModel,
    store: ParamStore,
    /// L2-unnormalized cell-kind description embeddings (normalization
    /// happens inside feature construction, as in the pipeline).
    kind_emb: HashMap<CellKind, Vec<f32>>,
    /// Aggregator assignment per cell-kind index, plus the cluster count
    /// and the wire-like cluster ports ride with.
    kind_assignment: Vec<usize>,
    cluster_count: usize,
    wire_cluster: usize,
    /// Empty maps: bare netlists carry no register prompts.
    no_regs: HashMap<String, Vec<f32>>,
    no_bindings: HashMap<usize, String>,
}

/// The encoder preset the pipeline pairs with a given LLM width: `tiny`
/// for 16, `small` for 32, otherwise `tiny` with the width overridden.
fn encoder_config_for(d_llm: usize) -> EncoderConfig {
    if d_llm == EncoderConfig::small().d_model {
        EncoderConfig::small()
    } else {
        EncoderConfig {
            d_model: d_llm,
            ..EncoderConfig::tiny()
        }
    }
}

impl NetlistEmbedder {
    /// Builds an embedder from a config + parameter store (typically a
    /// loaded checkpoint; a fresh store gets deterministic random init).
    pub fn new(config: MossConfig, mut store: ParamStore) -> NetlistEmbedder {
        let encoder = TextEncoder::new(encoder_config_for(config.d_llm), &mut store, BIND_SEED);
        let model = MossModel::new(config, &mut store, BIND_SEED);

        // Cell-kind description embeddings — the whole LLM contribution to
        // a bare netlist, computed once.
        let mut kind_emb: HashMap<CellKind, Vec<f32>> = HashMap::new();
        if config.variant.llm_features() {
            let descs: Vec<&str> = CellKind::ALL.iter().map(|k| k.description()).collect();
            let embs = encoder.embed_batch(&store, &descs);
            for (kind, e) in CellKind::ALL.into_iter().zip(embs) {
                kind_emb.insert(kind, e.data().to_vec());
            }
        }

        // Kind-vocabulary clustering, mirroring `MossModel::prepare` op
        // for op so served circuits see the same aggregator assignment the
        // model trained with.
        let (kind_assignment, cluster_count) = if config.variant.adaptive_aggregator() {
            let kind_embs: Vec<Vec<f32>> = CellKind::ALL
                .iter()
                .map(|k| kind_emb.get(k).cloned().unwrap_or_default())
                .collect();
            let kind_struct: Vec<(f32, f32)> = CellKind::ALL
                .iter()
                .map(|k| (k.input_count() as f32, 1.0))
                .collect();
            let kinds = cluster_nodes(
                &kind_embs,
                &kind_struct,
                &ClusterConfig {
                    eps: config.cluster_eps,
                    min_pts: 2,
                    max_clusters: config.aggregators,
                    structure_weight: 0.25,
                },
            );
            debug_assert!(kinds.count <= config.aggregators);
            (kinds.assignment, kinds.count)
        } else {
            (vec![0; CellKind::ALL.len()], 1)
        };
        let wire_cluster = kind_assignment[CellKind::Buf.index()];

        NetlistEmbedder {
            model,
            store,
            kind_emb,
            kind_assignment,
            cluster_count,
            wire_cluster,
            no_regs: HashMap::new(),
            no_bindings: HashMap::new(),
        }
    }

    /// Loads a MOSSCKP2 checkpoint and builds an embedder around it.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint I/O and validation errors.
    pub fn from_checkpoint_file<P: AsRef<Path>>(path: P) -> io::Result<NetlistEmbedder> {
        let (config, store) = load_checkpoint_file(path)?;
        Ok(NetlistEmbedder::new(config, store))
    }

    /// The model configuration.
    pub fn config(&self) -> &MossConfig {
        self.model.config()
    }

    /// Width of the served embedding (the alignment space `d_align`).
    pub fn embedding_dim(&self) -> usize {
        self.model.config().d_align
    }

    /// Builds the propagation-ready graph for one netlist: features from
    /// the precomputed tables, the fixed kind clustering, and the
    /// level/cluster/arity schedule.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist cannot be levelized (a
    /// combinational cycle).
    pub fn prepare(&self, netlist: &Netlist) -> Result<CircuitGraph, NetlistError> {
        let _sp = moss_obs::span_items("serve.prepare", netlist.node_count() as u64);
        let config = self.model.config();
        let options = FeatureOptions {
            llm_enhancement: config.variant.llm_features(),
        };
        let features = build_node_features_with(
            netlist,
            config.d_llm,
            &self.kind_emb,
            &self.no_regs,
            &self.no_bindings,
            &options,
        )?;
        let assignment: Vec<usize> = netlist
            .node_ids()
            .map(|id| match netlist.kind(id) {
                NodeKind::Cell(k) => self.kind_assignment[k.index()],
                // Ports ride with the buffer (wire-like) family.
                _ => self.wire_cluster,
            })
            .collect();
        let clusters = Clustering {
            assignment,
            count: self.cluster_count,
        };
        CircuitGraph::new(netlist, features.matrix, clusters)
    }

    /// Embeds several prepared circuits in one fused forward pass (one
    /// tape, parameters loaded once). Each returned vector is the
    /// L2-normalized alignment-space embedding (`d_align` floats) and is
    /// bit-identical to embedding that circuit alone — see
    /// [`moss_gnn::CircuitGnn::forward_batch`] for the argument.
    pub fn embed_graphs(&self, circuits: &[&CircuitGraph]) -> Vec<Vec<f32>> {
        self.model.netlist_align_batch(&self.store, circuits)
    }

    /// Prepares and embeds one netlist (the unbatched convenience path).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist cannot be levelized.
    pub fn embed(&self, netlist: &Netlist) -> Result<Vec<f32>, NetlistError> {
        let circuit = self.prepare(netlist)?;
        let mut out = self.embed_graphs(&[&circuit]);
        Ok(out.pop().expect("one circuit in, one embedding out"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MossVariant;
    use moss_netlist::parse_verilog;

    fn demo_netlist() -> Netlist {
        parse_verilog(
            "module t (input a, input b, output y);
               wire n_u1; wire n_r0; wire n_u2;
               NAND2_X1 u1 (.A(a), .B(b), .Y(n_u1));
               DFF_X1 r0 (.D(n_u1), .Q(n_r0));
               XOR2_X1 u2 (.A(n_r0), .B(a), .Y(n_u2));
               assign y = n_u2;
             endmodule",
        )
        .unwrap()
    }

    fn embedder() -> NetlistEmbedder {
        let config = MossConfig::small(16, MossVariant::Full);
        NetlistEmbedder::new(config, ParamStore::new())
    }

    #[test]
    fn embeds_bare_netlists_with_unit_norm() {
        let e = embedder();
        let emb = e.embed(&demo_netlist()).unwrap();
        assert_eq!(emb.len(), e.embedding_dim());
        let norm: f32 = emb.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4, "unit norm, got {norm}");
    }

    #[test]
    fn batch_matches_single_bit_for_bit() {
        let e = embedder();
        let nl1 = demo_netlist();
        let nl2 = parse_verilog(
            "module u (input a, output y);
               wire n_u1;
               INV_X1 u1 (.A(a), .Y(n_u1));
               assign y = n_u1;
             endmodule",
        )
        .unwrap();
        let c1 = e.prepare(&nl1).unwrap();
        let c2 = e.prepare(&nl2).unwrap();
        let batched = e.embed_graphs(&[&c1, &c2]);
        assert_eq!(batched[0], e.embed(&nl1).unwrap());
        assert_eq!(batched[1], e.embed(&nl2).unwrap());
    }

    #[test]
    fn deterministic_across_instances() {
        let a = embedder().embed(&demo_netlist()).unwrap();
        let b = embedder().embed(&demo_netlist()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn combinational_cycle_is_an_error_not_a_panic() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let g1 = nl.add_cell(CellKind::And2, "u1", &[a, a]).unwrap();
        let g2 = nl.add_cell(CellKind::Inv, "u2", &[g1]).unwrap();
        nl.replace_fanin(g1, 1, g2).unwrap();
        nl.add_output("y", g2);
        let e = embedder();
        assert!(e.prepare(&nl).is_err());
    }
}
