//! Synthesis-free ingestion: bring-your-own gate-level Verilog.
//!
//! The training pipeline synthesizes netlists from generated RTL, but the
//! open-world path (ROADMAP item 3, the setting DeepRTL2-style work
//! assumes) starts from a netlist *file*: an ISCAS/ITC benchmark, a
//! vendor drop, a signoff export. This module parses such a file with the
//! typed frontend, reconstructs the [`DffBinding`]s the labeler needs
//! from the parsed `.CK`/`.RN`/`.SN` metadata, and runs the exact same
//! store-keyed labeling core as the synthesis pipeline — so a netlist
//! ingested as text and the identical circuit built programmatically land
//! on the same label-store key and receive bit-identical labels.

use moss_netlist::{parse_verilog_design, CellLibrary, VerilogDesign};
use moss_rtl::SignalId;
use moss_store::LabelStore;
use moss_synth::{DffBinding, SynthError};

use crate::sample::{label_netlist, LabeledCircuit, SampleOptions};

/// Reconstructs register bindings from parsed sequential metadata.
///
/// Each parsed DFF becomes its own single-bit register: the instance name
/// is the register name, and the reset style (`.RN` clears to 0, `.SN`
/// presets to 1, neither defaults to 0) fixes the initial value the
/// labeling simulation starts from. These bindings feed
/// `canonical_reset_hash`, so two netlists that differ only in reset
/// wiring get distinct label-store keys.
pub fn bindings_from_design(design: &VerilogDesign) -> Vec<DffBinding> {
    design
        .dffs
        .iter()
        .enumerate()
        .map(|(i, dff)| DffBinding {
            dff: dff.node,
            register: SignalId::new(i),
            register_name: design.netlist.node(dff.node).name().to_owned(),
            bit: 0,
            reset: dff.reset.initial_value(),
        })
        .collect()
}

impl LabeledCircuit {
    /// Parses gate-level Verilog and obtains ground-truth labels for it,
    /// consulting (and populating) `store` exactly like
    /// [`LabeledCircuit::build`] does for synthesized circuits.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Netlist`] wrapping the typed parse error
    /// (with line/column) if `src` is not valid structural Verilog, or a
    /// [`SynthError`] if the parsed netlist fails analysis.
    pub fn from_verilog(
        src: &str,
        lib: &CellLibrary,
        options: &SampleOptions,
        store: Option<&LabelStore>,
    ) -> Result<LabeledCircuit, SynthError> {
        let design = parse_verilog_design(src).map_err(SynthError::Netlist)?;
        let bindings = bindings_from_design(&design);
        let netlist = design.netlist;
        if moss_faults::fire_oom(netlist.cell_count() as u64) {
            return Err(SynthError::FaultInjected { site: "oom-cap" });
        }
        let (labels, cache_hit, key) = label_netlist(&netlist, &bindings, lib, options, store)?;
        Ok(LabeledCircuit {
            netlist,
            bindings,
            labels,
            cache_hit,
            key,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_netlist::{canonical_hash, CellKind, DffReset, Netlist, NetlistError, NodeKind};

    /// A two-flop toggle chain written both ways: as text and via the API.
    const TWIN_SRC: &str = "module twin (input en, output q);\n\
                              wire d0, q0, q1;\n\
                              XOR2_X1 u1 (.A(q0), .B(en), .Y(d0));\n\
                              DFF_X1 r0 (.D(d0), .Q(q0));\n\
                              DFF_X1 r1 (.D(q0), .Q(q1));\n\
                              assign q = q1;\n\
                            endmodule";

    fn twin_netlist() -> (Netlist, Vec<DffBinding>) {
        let mut nl = Netlist::new("twin");
        let en = nl.add_input("en");
        // r0 and u1 form a feedback loop: seed r0's D with a placeholder
        // and rewire it once u1 exists.
        let r0 = nl.add_cell(CellKind::Dff, "r0", &[en]).unwrap();
        let u1 = nl.add_cell(CellKind::Xor2, "u1", &[r0, en]).unwrap();
        nl.replace_fanin(r0, 0, u1).unwrap();
        let r1 = nl.add_cell(CellKind::Dff, "r1", &[r0]).unwrap();
        nl.add_output("q", r1);
        let bindings = vec![
            DffBinding {
                dff: r0,
                register: SignalId::new(0),
                register_name: "r0".into(),
                bit: 0,
                reset: false,
            },
            DffBinding {
                dff: r1,
                register: SignalId::new(1),
                register_name: "r1".into(),
                bit: 0,
                reset: false,
            },
        ];
        (nl, bindings)
    }

    #[test]
    fn bindings_follow_parsed_reset_styles() {
        let design = moss_netlist::parse_verilog_design(
            "module m (input d, input c, input r, input s, output q, output p);\n\
               wire q0;\n\
               DFF_X1 a (.D(d), .CK(c), .RN(r), .Q(q0));\n\
               DFF_X1 b (.D(q0), .CK(c), .SN(s), .Q(p));\n\
               assign q = q0;\n\
             endmodule",
        )
        .unwrap();
        assert_eq!(design.dffs[0].reset, DffReset::ActiveLowReset);
        let bindings = bindings_from_design(&design);
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[0].register_name, "a");
        assert!(!bindings[0].reset);
        assert!(bindings[1].reset, "SN presets to 1");
        assert_eq!(bindings[1].bit, 0);
        assert!(matches!(
            design.netlist.kind(bindings[1].dff),
            NodeKind::Cell(k) if k.is_sequential()
        ));
    }

    #[test]
    fn parse_failure_surfaces_the_typed_error() {
        let lib = CellLibrary::default();
        let err = LabeledCircuit::from_verilog(
            "module m (input a, output y);\n  FOO_X1 u (.A(a), .Y(y));\nendmodule",
            &lib,
            &SampleOptions::default(),
            None,
        )
        .unwrap_err();
        let SynthError::Netlist(NetlistError::Verilog(e)) = err else {
            panic!("expected a typed verilog error, got {err}");
        };
        assert_eq!(e.line, 2);
    }

    #[test]
    fn ingested_text_labels_match_programmatic_twin_bitwise() {
        let lib = CellLibrary::default();
        let options = SampleOptions::default();
        let from_text = LabeledCircuit::from_verilog(TWIN_SRC, &lib, &options, None).unwrap();
        let (nl, bindings) = twin_netlist();
        assert_eq!(canonical_hash(&from_text.netlist), canonical_hash(&nl));

        // Label the programmatic twin through the same core.
        let (labels, _, _) = label_netlist(&nl, &bindings, &lib, &options, None).unwrap();
        // Node ids may differ between the two constructions; compare by
        // node name, bitwise.
        for id in nl.node_ids() {
            let name = nl.node(id).name();
            let tid = from_text.netlist.find(name).unwrap();
            assert_eq!(
                labels.toggle[id.index()].to_bits(),
                from_text.labels.toggle[tid.index()].to_bits(),
                "toggle diverged at {name}"
            );
            assert_eq!(
                labels.probability[id.index()].to_bits(),
                from_text.labels.probability[tid.index()].to_bits(),
                "probability diverged at {name}"
            );
        }
        assert_eq!(
            labels.total_power_nw.to_bits(),
            from_text.labels.total_power_nw.to_bits()
        );
    }

    #[test]
    fn ingestion_shares_the_label_store_with_the_synth_pipeline() {
        let lib = CellLibrary::default();
        let options = SampleOptions::default();
        let dir = std::env::temp_dir().join(format!("moss_ingest_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = LabelStore::open(&dir).unwrap();

        let cold = LabeledCircuit::from_verilog(TWIN_SRC, &lib, &options, Some(&store)).unwrap();
        assert!(!cold.cache_hit);
        let warm = LabeledCircuit::from_verilog(TWIN_SRC, &lib, &options, Some(&store)).unwrap();
        assert!(warm.cache_hit, "second ingestion must hit the store");
        assert_eq!(cold.key, warm.key);
        assert_eq!(cold.labels.toggle, warm.labels.toggle);
        assert_eq!(cold.labels.arrival_ns, warm.labels.arrival_ns);
        assert_eq!(
            cold.labels.total_power_nw.to_bits(),
            warm.labels.total_power_nw.to_bits()
        );

        // The programmatic twin lands on the same key and is served warm.
        let (nl, bindings) = twin_netlist();
        let (labels, hit, key) =
            label_netlist(&nl, &bindings, &lib, &options, Some(&store)).unwrap();
        assert!(hit, "programmatic twin must share the text twin's key");
        assert_eq!(key, cold.key);
        assert_eq!(
            labels.total_power_nw.to_bits(),
            cold.labels.total_power_nw.to_bits()
        );
        let _ = std::fs::remove_dir_all(store.root());
    }
}
