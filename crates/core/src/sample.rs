//! The data pipeline: one RTL design → synthesized netlist + ground-truth
//! labels + the texts both modalities consume (paper §V-A).

use moss_netlist::{CellLibrary, Netlist, NodeKind};
use moss_rtl::{describe_registers, module_summary, Module, RegisterDescription};
use moss_sim::{CompiledSim, ToggleAccum};
use moss_synth::{synthesize, DffBinding, SynthError, SynthOptions};
use moss_timing::TimingReport;

/// Ground-truth labels for one circuit, collected the way the paper does
/// (VCS-style random simulation + PrimePower/DC-style analysis).
#[derive(Debug, Clone)]
pub struct Labels {
    /// Per-node toggle rate in `[0, 1]` (TRP supervision).
    pub toggle: Vec<f32>,
    /// Per-node signal probability (P(node = 1); DeepSeq-style
    /// probability supervision, Fig. 7b).
    pub probability: Vec<f32>,
    /// Per-DFF data arrival time in nanoseconds, ordered by DFF node id.
    pub arrival_ns: Vec<(usize, f32)>,
    /// Per-node dynamic power in nanowatts.
    pub dynamic_nw: Vec<f32>,
    /// Total circuit power (dynamic + leakage), nanowatts.
    pub total_power_nw: f64,
    /// Total leakage, nanowatts (known from the library).
    pub leakage_nw: f64,
}

/// One fully prepared training/evaluation sample.
#[derive(Debug, Clone)]
pub struct CircuitSample {
    /// The design name.
    pub name: String,
    /// The RTL module.
    pub module: Module,
    /// Printed RTL source (the LLM's global view).
    pub rtl_text: String,
    /// Functional summary text (global embedding input).
    pub summary: String,
    /// Register description prompts (DFF feature enhancement).
    pub register_descs: Vec<RegisterDescription>,
    /// The synthesized standard-cell netlist.
    pub netlist: Netlist,
    /// Register-bit → DFF bindings (RrNdM ground truth).
    pub bindings: Vec<DffBinding>,
    /// Ground-truth labels.
    pub labels: Labels,
}

/// Sample-building options.
#[derive(Debug, Clone, Copy)]
pub struct SampleOptions {
    /// Synthesis options (vary for distinct netlists per RTL).
    pub synth: SynthOptions,
    /// Random-stimulus cycles for toggle/probability ground truth
    /// (the paper uses 60 000; tests use fewer).
    pub sim_cycles: u64,
    /// Stimulus seed.
    pub seed: u64,
    /// Clock frequency for power, MHz.
    pub clock_mhz: f64,
}

impl Default for SampleOptions {
    fn default() -> Self {
        SampleOptions {
            synth: SynthOptions::default(),
            sim_cycles: 2_048,
            seed: 0x5eed,
            clock_mhz: 500.0,
        }
    }
}

impl CircuitSample {
    /// Runs the full ground-truth pipeline on `module`.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthError`] if the module fails synthesis or the
    /// resulting netlist fails analysis (which would indicate a synthesis
    /// bug).
    pub fn build(
        module: &Module,
        lib: &CellLibrary,
        options: &SampleOptions,
    ) -> Result<CircuitSample, SynthError> {
        let _obs = moss_obs::span("build_sample");
        let synth = synthesize(module, &options.synth)?;
        let netlist = synth.netlist;
        let bindings = synth.dffs;
        // Rehearsed resource-exhaustion: a configured `oom-cap` rejects
        // circuits whose synthesized size exceeds the cell budget, the way
        // a memory-capped worker would.
        if moss_faults::fire_oom(netlist.cell_count() as u64) {
            return Err(SynthError::FaultInjected { site: "oom-cap" });
        }

        // Simulation ground truth: toggle rates + signal probabilities,
        // on the compiled bit-parallel engine (bit-identical to the GateSim
        // reference — see `labels_match_gatesim_reference` below and the
        // moss-sim differential suite).
        let sim_obs = moss_obs::span_items("sim_labels", options.sim_cycles);
        moss_obs::counter("sim.lane_cycles", options.sim_cycles);
        let mut sim = CompiledSim::new(&netlist)?;
        for b in &bindings {
            sim.set_state(b.dff, b.reset);
        }
        sim.settle();
        let n = netlist.node_count();
        let mut acc = ToggleAccum::new(&sim);
        let mut rng_state = options.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let inputs = netlist.primary_inputs();
        for _ in 0..options.sim_cycles {
            for &pi in &inputs {
                // xorshift64* keeps this crate free of a rand dependency in
                // the hot loop and deterministic across platforms.
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                sim.set_input(pi, rng_state & 1 == 1);
            }
            // Toggle counting is fused into the clock step: no per-cycle
            // pass over a values snapshot.
            sim.step_count(&mut acc);
        }
        let cycles = options.sim_cycles.max(1) as f64;
        let toggle: Vec<f32> = acc
            .toggles()
            .iter()
            .map(|&t| (t as f64 / cycles) as f32)
            .collect();
        let probability: Vec<f32> = acc
            .ones()
            .iter()
            .map(|&o| (o as f64 / cycles) as f32)
            .collect();
        drop(sim_obs);

        // Timing ground truth.
        let timing = TimingReport::analyze(&netlist, lib)?;
        let arrival_ns: Vec<(usize, f32)> = timing
            .dff_arrivals()
            .iter()
            .map(|&(d, ps)| (d.index(), (ps / 1000.0) as f32))
            .collect();

        // Power ground truth.
        let mut dynamic_nw = vec![0.0f32; n];
        let mut leakage = 0.0f64;
        for id in netlist.node_ids() {
            if let NodeKind::Cell(kind) = netlist.kind(id) {
                let t = lib.timing(kind);
                dynamic_nw[id.index()] =
                    toggle[id.index()] * t.switch_energy_fj as f32 * options.clock_mhz as f32;
                leakage += t.leakage_nw;
            }
        }
        let total_power_nw = dynamic_nw.iter().map(|&d| d as f64).sum::<f64>() + leakage;

        Ok(CircuitSample {
            name: module.name().to_owned(),
            rtl_text: moss_rtl::print_module(module),
            summary: module_summary(module),
            register_descs: describe_registers(module),
            module: module.clone(),
            netlist,
            bindings,
            labels: Labels {
                toggle,
                probability,
                arrival_ns,
                dynamic_nw,
                total_power_nw,
                leakage_nw: leakage,
            },
        })
    }

    /// Cell count of the synthesized netlist.
    pub fn cell_count(&self) -> usize {
        self.netlist.cell_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_module() -> Module {
        moss_rtl::parse(
            "module cnt(input clk, input en, output [3:0] q);
               reg [3:0] s = 0;
               always @(posedge clk) s <= en ? (s + 4'd1) : s;
               assign q = s;
             endmodule",
        )
        .unwrap()
    }

    #[test]
    fn pipeline_produces_consistent_labels() {
        let m = counter_module();
        let lib = CellLibrary::default();
        let s = CircuitSample::build(&m, &lib, &SampleOptions::default()).unwrap();
        let n = s.netlist.node_count();
        assert_eq!(s.labels.toggle.len(), n);
        assert_eq!(s.labels.probability.len(), n);
        assert_eq!(s.labels.arrival_ns.len(), s.netlist.dff_count());
        assert!(s.labels.total_power_nw > s.labels.leakage_nw);
        assert!(s.labels.toggle.iter().all(|&t| (0.0..=1.0).contains(&t)));
        assert!(s
            .labels
            .probability
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
        assert!(s.labels.arrival_ns.iter().all(|&(_, a)| a > 0.0));
        assert_eq!(s.register_descs.len(), 1);
        assert!(s.rtl_text.contains("module cnt"));
    }

    #[test]
    fn deterministic_given_options() {
        let m = counter_module();
        let lib = CellLibrary::default();
        let a = CircuitSample::build(&m, &lib, &SampleOptions::default()).unwrap();
        let b = CircuitSample::build(&m, &lib, &SampleOptions::default()).unwrap();
        assert_eq!(a.labels.toggle, b.labels.toggle);
        assert_eq!(a.labels.total_power_nw, b.labels.total_power_nw);
    }

    #[test]
    fn labels_match_gatesim_reference() {
        // Re-derives toggle/probability labels with the event-driven
        // GateSim oracle (the pre-compiled-engine label path) and pins the
        // shipped CompiledSim labels to it bit-for-bit.
        let m = counter_module();
        let lib = CellLibrary::default();
        let options = SampleOptions::default();
        let sample = CircuitSample::build(&m, &lib, &options).unwrap();

        let synth = synthesize(&m, &options.synth).unwrap();
        let mut sim = moss_sim::GateSim::new(&synth.netlist).unwrap();
        for b in &synth.dffs {
            sim.set_state(b.dff, b.reset);
        }
        sim.full_settle();
        let n = synth.netlist.node_count();
        let mut toggles = vec![0u64; n];
        let mut ones = vec![0u64; n];
        let mut prev: Vec<bool> = sim.values().to_vec();
        let mut rng_state = options.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let inputs = synth.netlist.primary_inputs();
        for _ in 0..options.sim_cycles {
            for &pi in &inputs {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                sim.set_input(pi, rng_state & 1 == 1);
            }
            sim.step();
            let cur = sim.values();
            for i in 0..n {
                if cur[i] != prev[i] {
                    toggles[i] += 1;
                }
                if cur[i] {
                    ones[i] += 1;
                }
            }
            prev.copy_from_slice(cur);
        }
        let cycles = options.sim_cycles.max(1) as f64;
        let toggle: Vec<f32> = toggles
            .iter()
            .map(|&t| (t as f64 / cycles) as f32)
            .collect();
        let probability: Vec<f32> = ones.iter().map(|&o| (o as f64 / cycles) as f32).collect();
        assert_eq!(sample.labels.toggle, toggle);
        assert_eq!(sample.labels.probability, probability);
    }

    #[test]
    fn enabled_counter_toggles_lsb_half_the_time() {
        let m = counter_module();
        let lib = CellLibrary::default();
        let s = CircuitSample::build(&m, &lib, &SampleOptions::default()).unwrap();
        // LSB of the counter toggles on ~every enabled cycle (~50% of
        // cycles with a random enable).
        let lsb = s
            .bindings
            .iter()
            .find(|b| b.bit == 0)
            .map(|b| b.dff.index())
            .unwrap();
        let rate = s.labels.toggle[lsb];
        assert!((rate - 0.5).abs() < 0.1, "lsb toggle rate {rate}");
    }
}
