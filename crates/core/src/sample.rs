//! The data pipeline: one RTL design → synthesized netlist + ground-truth
//! labels + the texts both modalities consume (paper §V-A).

use moss_netlist::{canonical_hash, CellLibrary, Netlist, NodeId, NodeKind};
use moss_rtl::{describe_registers, module_summary, Module, RegisterDescription};
use moss_sim::{CompiledSim, ToggleAccum};
use moss_store::{store_key, LabelRecord, LabelStore};
use moss_synth::{synthesize, DffBinding, SynthError, SynthOptions};
use moss_timing::TimingReport;

/// Ground-truth labels for one circuit, collected the way the paper does
/// (VCS-style random simulation + PrimePower/DC-style analysis).
#[derive(Debug, Clone)]
pub struct Labels {
    /// Per-node toggle rate in `[0, 1]` (TRP supervision).
    pub toggle: Vec<f32>,
    /// Per-node signal probability (P(node = 1); DeepSeq-style
    /// probability supervision, Fig. 7b).
    pub probability: Vec<f32>,
    /// Per-DFF data arrival time in nanoseconds, ordered by DFF node id.
    pub arrival_ns: Vec<(usize, f32)>,
    /// Per-node dynamic power in nanowatts.
    pub dynamic_nw: Vec<f32>,
    /// Total circuit power (dynamic + leakage), nanowatts.
    pub total_power_nw: f64,
    /// Total leakage, nanowatts (known from the library).
    pub leakage_nw: f64,
}

/// One fully prepared training/evaluation sample.
#[derive(Debug, Clone)]
pub struct CircuitSample {
    /// The design name.
    pub name: String,
    /// The RTL module.
    pub module: Module,
    /// Printed RTL source (the LLM's global view).
    pub rtl_text: String,
    /// Functional summary text (global embedding input).
    pub summary: String,
    /// Register description prompts (DFF feature enhancement).
    pub register_descs: Vec<RegisterDescription>,
    /// The synthesized standard-cell netlist.
    pub netlist: Netlist,
    /// Register-bit → DFF bindings (RrNdM ground truth).
    pub bindings: Vec<DffBinding>,
    /// Ground-truth labels.
    pub labels: Labels,
}

/// Sample-building options.
#[derive(Debug, Clone, Copy)]
pub struct SampleOptions {
    /// Synthesis options (vary for distinct netlists per RTL).
    pub synth: SynthOptions,
    /// Random-stimulus cycles for toggle/probability ground truth
    /// (the paper uses 60 000; tests use fewer).
    pub sim_cycles: u64,
    /// Stimulus seed.
    pub seed: u64,
    /// Clock frequency for power, MHz.
    pub clock_mhz: f64,
}

impl Default for SampleOptions {
    fn default() -> Self {
        SampleOptions {
            synth: SynthOptions::default(),
            sim_cycles: 2_048,
            seed: 0x5eed,
            clock_mhz: 500.0,
        }
    }
}

/// Runs the label pipeline (simulation + timing + power) on an already
/// synthesized netlist. This is the expensive first-touch work the label
/// store amortizes away.
fn compute_labels(
    netlist: &Netlist,
    bindings: &[DffBinding],
    lib: &CellLibrary,
    options: &SampleOptions,
) -> Result<Labels, SynthError> {
    // Simulation ground truth: toggle rates + signal probabilities,
    // on the compiled bit-parallel engine (bit-identical to the GateSim
    // reference — see `labels_match_gatesim_reference` below and the
    // moss-sim differential suite).
    let sim_obs = moss_obs::span_items("sim_labels", options.sim_cycles);
    moss_obs::counter("sim.lane_cycles", options.sim_cycles);
    let mut sim = CompiledSim::new(netlist)?;
    for b in bindings {
        sim.set_state(b.dff, b.reset);
    }
    sim.settle();
    let n = netlist.node_count();
    let mut acc = ToggleAccum::new(&sim);
    let mut rng_state = options.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let inputs = netlist.primary_inputs();
    for _ in 0..options.sim_cycles {
        for &pi in &inputs {
            // xorshift64* keeps this crate free of a rand dependency in
            // the hot loop and deterministic across platforms.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            sim.set_input(pi, rng_state & 1 == 1);
        }
        // Toggle counting is fused into the clock step: no per-cycle
        // pass over a values snapshot.
        sim.step_count(&mut acc);
    }
    let cycles = options.sim_cycles.max(1) as f64;
    let toggle: Vec<f32> = acc
        .toggles()
        .iter()
        .map(|&t| (t as f64 / cycles) as f32)
        .collect();
    let probability: Vec<f32> = acc
        .ones()
        .iter()
        .map(|&o| (o as f64 / cycles) as f32)
        .collect();
    drop(sim_obs);

    // Timing ground truth.
    let timing = TimingReport::analyze(netlist, lib)?;
    let arrival_ns: Vec<(usize, f32)> = timing
        .dff_arrivals()
        .iter()
        .map(|&(d, ps)| (d.index(), (ps / 1000.0) as f32))
        .collect();

    // Power ground truth.
    let mut dynamic_nw = vec![0.0f32; n];
    let mut leakage = 0.0f64;
    for id in netlist.node_ids() {
        if let NodeKind::Cell(kind) = netlist.kind(id) {
            let t = lib.timing(kind);
            dynamic_nw[id.index()] =
                toggle[id.index()] * t.switch_energy_fj as f32 * options.clock_mhz as f32;
            leakage += t.leakage_nw;
        }
    }
    let total_power_nw = dynamic_nw.iter().map(|&d| d as f64).sum::<f64>() + leakage;

    Ok(Labels {
        toggle,
        probability,
        arrival_ns,
        dynamic_nw,
        total_power_nw,
        leakage_nw: leakage,
    })
}

/// Canonical rank table: `rank[id.index()]` is the position of node `id`'s
/// name in the lexicographic sort of all node names. Node names are unique
/// within a netlist, so this is a permutation — the same one
/// `canonical_form` (and therefore `canonical_hash`) sorts by, which makes
/// rank-indexed label records exactly as declaration-order-invariant as
/// the store key.
fn canonical_ranks(netlist: &Netlist) -> Vec<u32> {
    let mut order: Vec<NodeId> = netlist.node_ids().collect();
    order.sort_by(|&a, &b| netlist.node(a).name().cmp(netlist.node(b).name()));
    let mut rank = vec![0u32; netlist.node_count()];
    for (r, id) in order.into_iter().enumerate() {
        rank[id.index()] = r as u32;
    }
    rank
}

/// FNV-1a digest of the DFF reset (initial) values `compute_labels` seeds
/// the simulation from, folded in canonical rank order. Reset values live
/// on [`DffBinding`]s, not in the netlist, so `canonical_hash` alone
/// cannot separate two canonically identical netlists whose registers
/// initialize differently — their labels diverge from cycle 0. This hash
/// is the extra [`store_key`] ingredient that keeps the "same key ⇒
/// bit-identical labels" invariant true, and rank ordering keeps it as
/// declaration-order-invariant as the netlist hash.
pub fn canonical_reset_hash(netlist: &Netlist, bindings: &[DffBinding]) -> u64 {
    let rank = canonical_ranks(netlist);
    let mut resets: Vec<(u32, bool)> = bindings
        .iter()
        .map(|b| (rank[b.dff.index()], b.reset))
        .collect();
    resets.sort_unstable_by_key(|&(r, _)| r);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (r, reset) in resets {
        for b in r.to_le_bytes() {
            eat(b);
        }
        eat(u8::from(reset));
    }
    h
}

/// Converts in-memory labels (node-id order) to a store record (canonical
/// name-sorted order) for `netlist`.
pub fn labels_to_record(netlist: &Netlist, labels: &Labels) -> LabelRecord {
    let rank = canonical_ranks(netlist);
    let n = netlist.node_count();
    let mut toggle = vec![0.0f32; n];
    let mut probability = vec![0.0f32; n];
    let mut dynamic_nw = vec![0.0f32; n];
    for (id, &r) in rank.iter().enumerate().take(n) {
        let r = r as usize;
        toggle[r] = labels.toggle[id];
        probability[r] = labels.probability[id];
        dynamic_nw[r] = labels.dynamic_nw[id];
    }
    let mut arrival_ns: Vec<(u32, f32)> = labels
        .arrival_ns
        .iter()
        .map(|&(id, ns)| (rank[id], ns))
        .collect();
    arrival_ns.sort_unstable_by_key(|&(r, _)| r);
    LabelRecord {
        toggle,
        probability,
        dynamic_nw,
        arrival_ns,
        total_power_nw: labels.total_power_nw,
        leakage_nw: labels.leakage_nw,
    }
}

/// Converts a store record back to node-id-ordered labels for `netlist`.
///
/// Returns `None` when the record does not fit this netlist (wrong node or
/// DFF count, an arrival rank out of range, duplicated, or out of order —
/// [`LabelRecord::arrival_ns`] is sorted by rank — or an arrival rank that
/// is not a DFF here) — the caller treats that as a miss and recomputes. This
/// guards against the astronomically unlikely key collision and against
/// records from a store whose schema drifted without a version bump.
pub fn labels_from_record(netlist: &Netlist, record: &LabelRecord) -> Option<Labels> {
    let n = netlist.node_count();
    if record.toggle.len() != n
        || record.probability.len() != n
        || record.dynamic_nw.len() != n
        || record.arrival_ns.len() != netlist.dff_count()
    {
        return None;
    }
    // Strictly increasing ranks is part of the record contract; anything
    // else (a duplicated rank in particular) would alias one DFF's arrival
    // onto another and drop a DFF from the sorted-unique-by-id STA list.
    if !record.arrival_ns.windows(2).all(|w| w[0].0 < w[1].0) {
        return None;
    }
    let rank = canonical_ranks(netlist);
    let mut id_of_rank = vec![0usize; n];
    for (id, &r) in rank.iter().enumerate() {
        id_of_rank[r as usize] = id;
    }
    let mut toggle = vec![0.0f32; n];
    let mut probability = vec![0.0f32; n];
    let mut dynamic_nw = vec![0.0f32; n];
    for id in 0..n {
        let r = rank[id] as usize;
        toggle[id] = record.toggle[r];
        probability[id] = record.probability[r];
        dynamic_nw[id] = record.dynamic_nw[r];
    }
    let mut arrival_ns = Vec::with_capacity(record.arrival_ns.len());
    for &(r, ns) in &record.arrival_ns {
        let id = *id_of_rank.get(r as usize)?;
        if !netlist.kind(NodeId::new(id)).is_dff() {
            return None;
        }
        arrival_ns.push((id, ns));
    }
    // `Labels::arrival_ns` is ordered by DFF node id (the STA contract).
    arrival_ns.sort_unstable_by_key(|&(id, _)| id);
    Some(Labels {
        toggle,
        probability,
        dynamic_nw,
        arrival_ns,
        total_power_nw: record.total_power_nw,
        leakage_nw: record.leakage_nw,
    })
}

/// The store-aware labeling core shared by the synthesis pipeline
/// ([`LabeledCircuit::build`]) and text ingestion
/// ([`LabeledCircuit::from_verilog`]): compute the store key, serve a
/// valid cached record, otherwise run simulation + STA + power and
/// publish the result.
///
/// Returns `(labels, cache_hit, key)`.
pub(crate) fn label_netlist(
    netlist: &Netlist,
    bindings: &[DffBinding],
    lib: &CellLibrary,
    options: &SampleOptions,
    store: Option<&LabelStore>,
) -> Result<(Labels, bool, Option<u64>), SynthError> {
    let key = store.map(|_| {
        store_key(
            canonical_hash(netlist),
            canonical_reset_hash(netlist, bindings),
            options.sim_cycles,
            options.seed,
            options.clock_mhz,
        )
    });
    if let (Some(st), Some(k)) = (store, key) {
        if let Some(labels) = st.load(k).and_then(|r| labels_from_record(netlist, &r)) {
            return Ok((labels, true, key));
        }
    }
    let labels = compute_labels(netlist, bindings, lib, options)?;
    if let (Some(st), Some(k)) = (store, key) {
        // Best effort: a failed publish only costs the next run a
        // recompute, never this one its labels.
        if st.store(k, &labels_to_record(netlist, &labels)).is_err() {
            moss_obs::counter("store.write_err", 1);
        }
    }
    Ok((labels, false, key))
}

/// A synthesized circuit plus ground-truth labels, with cache provenance.
/// This is the streaming-pipeline unit: unlike [`CircuitSample`] it skips
/// the text modality (RTL print, summaries, register prompts), so labeling
/// 10k circuits holds only netlists + label vectors in memory.
#[derive(Debug, Clone)]
pub struct LabeledCircuit {
    /// The synthesized standard-cell netlist.
    pub netlist: Netlist,
    /// Register-bit → DFF bindings.
    pub bindings: Vec<DffBinding>,
    /// Ground-truth labels (from the store on a hit, recomputed otherwise).
    pub labels: Labels,
    /// `true` when the labels were served from the store.
    pub cache_hit: bool,
    /// The store key, when built against a store.
    pub key: Option<u64>,
}

impl LabeledCircuit {
    /// Synthesizes `module` and obtains its labels, consulting `store`
    /// first when one is given: a valid record under
    /// `store_key(canonical_hash, reset hash, sim settings)` skips
    /// simulation, STA and power entirely; a miss (or a corrupt/ill-fitting
    /// record) recomputes and publishes the record for the next run.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthError`] if the module fails synthesis or the
    /// netlist fails analysis. Store *write* failures are swallowed (the
    /// run degrades to cold); store *read* corruption is handled inside
    /// [`LabelStore::load`] by evicting the bad record.
    pub fn build(
        module: &Module,
        lib: &CellLibrary,
        options: &SampleOptions,
        store: Option<&LabelStore>,
    ) -> Result<LabeledCircuit, SynthError> {
        let synth = synthesize(module, &options.synth)?;
        let netlist = synth.netlist;
        let bindings = synth.dffs;
        // Rehearsed resource-exhaustion: a configured `oom-cap` rejects
        // circuits whose synthesized size exceeds the cell budget, the way
        // a memory-capped worker would.
        if moss_faults::fire_oom(netlist.cell_count() as u64) {
            return Err(SynthError::FaultInjected { site: "oom-cap" });
        }

        let (labels, cache_hit, key) = label_netlist(&netlist, &bindings, lib, options, store)?;
        Ok(LabeledCircuit {
            netlist,
            bindings,
            labels,
            cache_hit,
            key,
        })
    }
}

impl CircuitSample {
    /// Runs the full ground-truth pipeline on `module`.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthError`] if the module fails synthesis or the
    /// resulting netlist fails analysis (which would indicate a synthesis
    /// bug).
    pub fn build(
        module: &Module,
        lib: &CellLibrary,
        options: &SampleOptions,
    ) -> Result<CircuitSample, SynthError> {
        Self::build_with_store(module, lib, options, None)
    }

    /// Like [`CircuitSample::build`], but serves labels from (and publishes
    /// first-touch labels to) `store` when one is given.
    ///
    /// # Errors
    ///
    /// Same as [`CircuitSample::build`].
    pub fn build_with_store(
        module: &Module,
        lib: &CellLibrary,
        options: &SampleOptions,
        store: Option<&LabelStore>,
    ) -> Result<CircuitSample, SynthError> {
        let _obs = moss_obs::span("build_sample");
        let lc = LabeledCircuit::build(module, lib, options, store)?;
        Ok(CircuitSample {
            name: module.name().to_owned(),
            rtl_text: moss_rtl::print_module(module),
            summary: module_summary(module),
            register_descs: describe_registers(module),
            module: module.clone(),
            netlist: lc.netlist,
            bindings: lc.bindings,
            labels: lc.labels,
        })
    }

    /// Cell count of the synthesized netlist.
    pub fn cell_count(&self) -> usize {
        self.netlist.cell_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_module() -> Module {
        moss_rtl::parse(
            "module cnt(input clk, input en, output [3:0] q);
               reg [3:0] s = 0;
               always @(posedge clk) s <= en ? (s + 4'd1) : s;
               assign q = s;
             endmodule",
        )
        .unwrap()
    }

    #[test]
    fn pipeline_produces_consistent_labels() {
        let m = counter_module();
        let lib = CellLibrary::default();
        let s = CircuitSample::build(&m, &lib, &SampleOptions::default()).unwrap();
        let n = s.netlist.node_count();
        assert_eq!(s.labels.toggle.len(), n);
        assert_eq!(s.labels.probability.len(), n);
        assert_eq!(s.labels.arrival_ns.len(), s.netlist.dff_count());
        assert!(s.labels.total_power_nw > s.labels.leakage_nw);
        assert!(s.labels.toggle.iter().all(|&t| (0.0..=1.0).contains(&t)));
        assert!(s
            .labels
            .probability
            .iter()
            .all(|&p| (0.0..=1.0).contains(&p)));
        assert!(s.labels.arrival_ns.iter().all(|&(_, a)| a > 0.0));
        assert_eq!(s.register_descs.len(), 1);
        assert!(s.rtl_text.contains("module cnt"));
    }

    #[test]
    fn deterministic_given_options() {
        let m = counter_module();
        let lib = CellLibrary::default();
        let a = CircuitSample::build(&m, &lib, &SampleOptions::default()).unwrap();
        let b = CircuitSample::build(&m, &lib, &SampleOptions::default()).unwrap();
        assert_eq!(a.labels.toggle, b.labels.toggle);
        assert_eq!(a.labels.total_power_nw, b.labels.total_power_nw);
    }

    #[test]
    fn labels_match_gatesim_reference() {
        // Re-derives toggle/probability labels with the event-driven
        // GateSim oracle (the pre-compiled-engine label path) and pins the
        // shipped CompiledSim labels to it bit-for-bit.
        let m = counter_module();
        let lib = CellLibrary::default();
        let options = SampleOptions::default();
        let sample = CircuitSample::build(&m, &lib, &options).unwrap();

        let synth = synthesize(&m, &options.synth).unwrap();
        let mut sim = moss_sim::GateSim::new(&synth.netlist).unwrap();
        for b in &synth.dffs {
            sim.set_state(b.dff, b.reset);
        }
        sim.full_settle();
        let n = synth.netlist.node_count();
        let mut toggles = vec![0u64; n];
        let mut ones = vec![0u64; n];
        let mut prev: Vec<bool> = sim.values().to_vec();
        let mut rng_state = options.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let inputs = synth.netlist.primary_inputs();
        for _ in 0..options.sim_cycles {
            for &pi in &inputs {
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                sim.set_input(pi, rng_state & 1 == 1);
            }
            sim.step();
            let cur = sim.values();
            for i in 0..n {
                if cur[i] != prev[i] {
                    toggles[i] += 1;
                }
                if cur[i] {
                    ones[i] += 1;
                }
            }
            prev.copy_from_slice(cur);
        }
        let cycles = options.sim_cycles.max(1) as f64;
        let toggle: Vec<f32> = toggles
            .iter()
            .map(|&t| (t as f64 / cycles) as f32)
            .collect();
        let probability: Vec<f32> = ones.iter().map(|&o| (o as f64 / cycles) as f32).collect();
        assert_eq!(sample.labels.toggle, toggle);
        assert_eq!(sample.labels.probability, probability);
    }

    fn temp_store(tag: &str) -> LabelStore {
        let dir =
            std::env::temp_dir().join(format!("moss_core_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        LabelStore::open(&dir).unwrap()
    }

    #[test]
    fn warm_store_serves_bit_identical_labels() {
        let m = counter_module();
        let lib = CellLibrary::default();
        let options = SampleOptions::default();
        let store = temp_store("warm");

        let cold = LabeledCircuit::build(&m, &lib, &options, Some(&store)).unwrap();
        assert!(!cold.cache_hit);
        let warm = LabeledCircuit::build(&m, &lib, &options, Some(&store)).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(cold.key, warm.key);

        // Bitwise equality, f64 totals included.
        assert_eq!(cold.labels.toggle, warm.labels.toggle);
        assert_eq!(cold.labels.probability, warm.labels.probability);
        assert_eq!(cold.labels.dynamic_nw, warm.labels.dynamic_nw);
        assert_eq!(cold.labels.arrival_ns, warm.labels.arrival_ns);
        assert_eq!(
            cold.labels.total_power_nw.to_bits(),
            warm.labels.total_power_nw.to_bits()
        );
        assert_eq!(
            cold.labels.leakage_nw.to_bits(),
            warm.labels.leakage_nw.to_bits()
        );

        // And identical to the store-free path.
        let plain = CircuitSample::build(&m, &lib, &options).unwrap();
        assert_eq!(plain.labels.toggle, warm.labels.toggle);
        assert_eq!(plain.labels.arrival_ns, warm.labels.arrival_ns);

        use std::sync::atomic::Ordering;
        assert_eq!(store.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().misses.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().writes.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn changed_register_init_misses_the_cache() {
        // Register reset values live on DffBindings, not in the netlist,
        // so `cnt` with `s = 0` and with `s = 5` synthesize to canonically
        // identical netlists — yet their labels diverge from cycle 0. The
        // reset hash folded into the store key must keep them apart: the
        // second build must recompute, never be served the first's labels.
        let m0 = counter_module();
        let m5 = moss_rtl::parse(
            "module cnt(input clk, input en, output [3:0] q);
               reg [3:0] s = 5;
               always @(posedge clk) s <= en ? (s + 4'd1) : s;
               assign q = s;
             endmodule",
        )
        .unwrap();
        let lib = CellLibrary::default();
        let options = SampleOptions::default();
        let store = temp_store("reset");

        let a = LabeledCircuit::build(&m0, &lib, &options, Some(&store)).unwrap();
        let b = LabeledCircuit::build(&m5, &lib, &options, Some(&store)).unwrap();

        // The premise of the hazard: the netlists really are canonically
        // identical, so without the reset hash the keys would collide.
        assert_eq!(canonical_hash(&a.netlist), canonical_hash(&b.netlist));
        assert_ne!(
            canonical_reset_hash(&a.netlist, &a.bindings),
            canonical_reset_hash(&b.netlist, &b.bindings)
        );
        assert_ne!(a.key, b.key, "distinct resets must get distinct keys");
        assert!(!a.cache_hit);
        assert!(!b.cache_hit, "served labels for a different reset state");

        // Each key serves its own labels on the rerun.
        let a2 = LabeledCircuit::build(&m0, &lib, &options, Some(&store)).unwrap();
        let b2 = LabeledCircuit::build(&m5, &lib, &options, Some(&store)).unwrap();
        assert!(a2.cache_hit && b2.cache_hit);
        assert_eq!(a.labels.probability, a2.labels.probability);
        assert_eq!(b.labels.probability, b2.labels.probability);
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// Deterministic per-name label value, so the permutation tests know
    /// the ground truth for every node regardless of its id.
    fn name_value(name: &str) -> f32 {
        let h = name
            .bytes()
            .fold(0u32, |h, b| h.wrapping_mul(31).wrapping_add(b.into()));
        (h % 1000) as f32 / 1000.0
    }

    #[test]
    fn record_order_survives_declaration_reorder() {
        // A record written for one declaration order of a netlist must be
        // readable — per-node values matched by *name* — by a permuted
        // declaration of the same netlist, because the two share a store
        // key (`canonical_hash` is declaration-order-invariant). Reorder
        // the way the canon suite does: re-emit as Verilog, reverse the
        // instance lines, parse back.
        let m = counter_module();
        let options = SampleOptions::default();
        let synth = synthesize(&m, &options.synth).unwrap();
        let src = moss_netlist::write_verilog(&synth.netlist);
        let a = moss_netlist::parse_verilog(&src).unwrap();

        let mut header = Vec::new();
        let mut instances = Vec::new();
        let mut tail = Vec::new();
        for line in src.lines() {
            let t = line.trim_start();
            if t.starts_with("module") || t.starts_with("wire") {
                header.push(line);
            } else if t.starts_with("assign") || t.starts_with("endmodule") {
                tail.push(line);
            } else if !t.is_empty() {
                instances.push(line);
            }
        }
        instances.reverse();
        let shuffled: Vec<&str> = header.into_iter().chain(instances).chain(tail).collect();
        let b = moss_netlist::parse_verilog(&shuffled.join("\n")).unwrap();
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
        assert_ne!(
            a.node_ids()
                .map(|i| a.node(i).name().to_owned())
                .collect::<Vec<_>>(),
            b.node_ids()
                .map(|i| b.node(i).name().to_owned())
                .collect::<Vec<_>>(),
            "sanity: the reorder must actually permute node ids"
        );

        // Labels on `a`, every value derived from the node's name.
        let dffs_a: Vec<usize> = a
            .node_ids()
            .filter(|&i| a.kind(i).is_dff())
            .map(|i| i.index())
            .collect();
        let labels_a = Labels {
            toggle: a.node_ids().map(|i| name_value(a.node(i).name())).collect(),
            probability: a
                .node_ids()
                .map(|i| name_value(a.node(i).name()) * 0.5)
                .collect(),
            dynamic_nw: a
                .node_ids()
                .map(|i| name_value(a.node(i).name()) * 7.0)
                .collect(),
            arrival_ns: dffs_a
                .iter()
                .map(|&id| (id, 1.0 + name_value(a.node(NodeId::new(id)).name())))
                .collect(),
            total_power_nw: 123.456,
            leakage_nw: 7.89,
        };

        let record = labels_to_record(&a, &labels_a);
        let labels_b = labels_from_record(&b, &record).unwrap();

        // Every value must land on the same-named node in `b`.
        for id_b in b.node_ids() {
            let name = b.node(id_b).name();
            assert_eq!(
                labels_b.toggle[id_b.index()].to_bits(),
                name_value(name).to_bits(),
                "toggle mismatch at {name}"
            );
            assert_eq!(
                labels_b.probability[id_b.index()].to_bits(),
                (name_value(name) * 0.5).to_bits()
            );
            assert_eq!(
                labels_b.dynamic_nw[id_b.index()].to_bits(),
                (name_value(name) * 7.0).to_bits()
            );
        }
        assert_eq!(labels_b.arrival_ns.len(), b.dff_count());
        // `arrival_ns` must come back ordered by node id (the STA
        // contract) with per-DFF values following the names.
        assert!(labels_b.arrival_ns.windows(2).all(|w| w[0].0 < w[1].0));
        for &(id, ns) in &labels_b.arrival_ns {
            let name = b.node(NodeId::new(id)).name();
            assert_eq!(ns.to_bits(), (1.0 + name_value(name)).to_bits());
        }
        assert_eq!(labels_b.total_power_nw, 123.456);
        assert_eq!(labels_b.leakage_nw, 7.89);

        // Round-tripping back through a's order is the identity.
        let back = labels_from_record(&a, &labels_to_record(&b, &labels_b)).unwrap();
        assert_eq!(back.toggle, labels_a.toggle);
        assert_eq!(back.arrival_ns, labels_a.arrival_ns);
    }

    #[test]
    fn ill_fitting_record_is_rejected_not_served() {
        let m = counter_module();
        let lib = CellLibrary::default();
        let options = SampleOptions::default();
        let sample = CircuitSample::build(&m, &lib, &options).unwrap();
        let pristine = labels_to_record(&sample.netlist, &sample.labels);
        assert!(labels_from_record(&sample.netlist, &pristine).is_some());
        assert!(pristine.arrival_ns.len() >= 2, "test wants ≥ 2 DFFs");

        // Wrong node count → None.
        let mut record = pristine.clone();
        record.toggle.push(0.0);
        assert!(labels_from_record(&sample.netlist, &record).is_none());

        // Arrival rank out of range → None, not a panic. (Mutating the
        // *last* entry keeps the rank sequence strictly increasing, so
        // this exercises the bounds check, not the ordering check.)
        let mut record = pristine.clone();
        record.arrival_ns.last_mut().unwrap().0 = u32::MAX;
        assert!(labels_from_record(&sample.netlist, &record).is_none());

        // A duplicated rank would alias one DFF's arrival onto another
        // and drop a DFF from the STA list → None.
        let mut record = pristine.clone();
        record.arrival_ns[1] = record.arrival_ns[0];
        assert!(labels_from_record(&sample.netlist, &record).is_none());

        // Out-of-order (but unique) ranks violate the record contract
        // that arrivals are sorted by rank → None.
        let mut record = pristine.clone();
        record.arrival_ns.swap(0, 1);
        assert!(labels_from_record(&sample.netlist, &record).is_none());

        // Arrival rank pointing at a non-DFF node → None. Re-sorting
        // after the swap keeps ranks strictly increasing (they stay
        // unique: no non-DFF rank equals a DFF rank), so the DFF-kind
        // check is what rejects.
        let rank = canonical_ranks(&sample.netlist);
        let non_dff_rank = sample
            .netlist
            .node_ids()
            .find(|&id| !sample.netlist.kind(id).is_dff())
            .map(|id| rank[id.index()])
            .unwrap();
        let mut record = pristine.clone();
        record.arrival_ns[0].0 = non_dff_rank;
        record.arrival_ns.sort_unstable_by_key(|&(r, _)| r);
        assert!(labels_from_record(&sample.netlist, &record).is_none());
    }

    #[test]
    fn enabled_counter_toggles_lsb_half_the_time() {
        let m = counter_module();
        let lib = CellLibrary::default();
        let s = CircuitSample::build(&m, &lib, &SampleOptions::default()).unwrap();
        // LSB of the counter toggles on ~every enabled cycle (~50% of
        // cycles with a random enable).
        let lsb = s
            .bindings
            .iter()
            .find(|b| b.bit == 0)
            .map(|b| b.dff.index())
            .unwrap();
        let rate = s.labels.toggle[lsb];
        assert!((rate - 0.5).abs() < 0.1, "lsb toggle rate {rate}");
    }
}
