//! Deterministic corpus sharding: split a `(seed, total)` corpus into
//! fixed-size seed ranges that can be generated — and labeled — one shard
//! at a time. Shard `k` covers corpus indices `[k·shard_size, …)`, and each
//! design is `corpus_module(seed, index)`, so regenerating any shard never
//! requires the rest of the corpus in memory. Concatenating every shard's
//! modules reproduces [`random_corpus`](crate::random_corpus) exactly;
//! `corpus_shards_cover_random_corpus` below pins that equivalence.

use crate::random::corpus_module;
use moss_rtl::Module;

/// A sharded generation plan for `total` random designs rooted at `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusPlan {
    /// Corpus root seed (design `i` is `corpus_module(seed, i)`).
    pub seed: u64,
    /// Total number of designs in the corpus.
    pub total: usize,
    /// Designs per shard (the final shard may be smaller).
    pub shard_size: usize,
}

impl CorpusPlan {
    /// Creates a plan; `shard_size` is clamped to at least 1.
    pub fn new(seed: u64, total: usize, shard_size: usize) -> CorpusPlan {
        CorpusPlan {
            seed,
            total,
            shard_size: shard_size.max(1),
        }
    }

    /// Number of shards (0 for an empty corpus).
    pub fn shard_count(&self) -> usize {
        self.total.div_ceil(self.shard_size)
    }

    /// The `index`-th shard (must be `< shard_count()`).
    pub fn shard(&self, index: usize) -> CorpusShard {
        let start = index * self.shard_size;
        assert!(start < self.total, "shard {index} out of range");
        CorpusShard {
            index,
            seed: self.seed,
            start,
            count: self.shard_size.min(self.total - start),
        }
    }

    /// Iterates over every shard in order.
    pub fn shards(&self) -> impl Iterator<Item = CorpusShard> + '_ {
        (0..self.shard_count()).map(|i| self.shard(i))
    }
}

/// One contiguous seed range of a [`CorpusPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusShard {
    /// Position of this shard within the plan.
    pub index: usize,
    /// The plan's root seed.
    pub seed: u64,
    /// First corpus index covered.
    pub start: usize,
    /// Number of designs in this shard.
    pub count: usize,
}

impl CorpusShard {
    /// Generates this shard's modules (and nothing else) — the
    /// bounded-memory unit the streaming labeler consumes.
    pub fn modules(&self) -> Vec<Module> {
        (self.start..self.start + self.count)
            .map(|i| corpus_module(self.seed, i))
            .collect()
    }

    /// Corpus indices covered by this shard.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_corpus;

    fn print_all(modules: &[Module]) -> Vec<String> {
        modules.iter().map(moss_rtl::print_module).collect()
    }

    #[test]
    fn corpus_shards_cover_random_corpus() {
        // Ragged final shard on purpose: 10 designs in shards of 4.
        let plan = CorpusPlan::new(0xc0ffee, 10, 4);
        assert_eq!(plan.shard_count(), 3);
        let counts: Vec<usize> = plan.shards().map(|s| s.count).collect();
        assert_eq!(counts, [4, 4, 2]);

        let sharded: Vec<Module> = plan.shards().flat_map(|s| s.modules()).collect();
        assert_eq!(
            print_all(&sharded),
            print_all(&random_corpus(0xc0ffee, 10)),
            "sharded generation must reproduce the monolithic corpus"
        );
    }

    #[test]
    fn shards_are_independent_of_each_other() {
        let plan = CorpusPlan::new(42, 9, 3);
        // Generating shard 2 alone matches its slice of the full corpus.
        let alone = plan.shard(2).modules();
        let full = random_corpus(42, 9);
        assert_eq!(print_all(&alone), print_all(&full[6..9]));
        assert_eq!(plan.shard(2).indices(), 6..9);
    }

    #[test]
    fn degenerate_plans_are_safe() {
        assert_eq!(CorpusPlan::new(1, 0, 4).shard_count(), 0);
        assert_eq!(CorpusPlan::new(1, 0, 4).shards().count(), 0);
        // shard_size 0 is clamped, not a divide-by-zero.
        let clamped = CorpusPlan::new(1, 3, 0);
        assert_eq!(clamped.shard_size, 1);
        assert_eq!(clamped.shard_count(), 3);
        // One oversized shard covers everything.
        let one = CorpusPlan::new(1, 3, 100);
        assert_eq!(one.shard_count(), 1);
        assert_eq!(one.shard(0).count, 3);
    }
}
