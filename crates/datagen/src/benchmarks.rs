//! The paper's eight named benchmark circuits (Table I), as parameterized
//! RTL generators. Default parameters are tuned so synthesized cell counts
//! land near the paper's: max_selector 278, pipeline_reg 610,
//! prbs_generator 643, shift_reg_24 731, error_logger 812, signed_mac 1306,
//! wb_data_mux 1364, mult_16x32_to_48 4144.

use moss_rtl::{BinOp, Expr, Module, SignalKind};

use crate::expr::*;

/// A maximum-of-N selector: registers the running maximum of several input
/// words (`max_selector`, 278 cells).
pub fn max_selector(inputs: usize, width: u32) -> Module {
    let mut m = Module::new("max_selector");
    m.add_signal("clk", 1, SignalKind::Input);
    let ins: Vec<_> = (0..inputs)
        .map(|i| m.add_signal(format!("in{i}"), width, SignalKind::Input))
        .collect();
    let best = m.add_signal("best", width, SignalKind::Reg);
    let out = m.add_signal("max_out", width, SignalKind::Output);

    // Tournament tree of comparator muxes.
    let mut cur: Vec<Expr> = ins.iter().map(|&s| var(s)).collect();
    let mut wire_n = 0usize;
    while cur.len() > 1 {
        let mut next = Vec::new();
        let mut iter = cur.into_iter();
        while let (Some(a), Some(b)) = (iter.next(), iter.next()) {
            let w = m.add_signal(format!("t{wire_n}"), width, SignalKind::Wire);
            wire_n += 1;
            m.add_assign(w, mux(bin(BinOp::Gt, a.clone(), b.clone()), a, b));
            next.push(var(w));
        }
        next.extend(iter);
        cur = next;
    }
    let winner = cur.pop().expect("at least one input");
    m.add_reg_update(best, winner);
    m.add_assign(out, var(best));
    m
}

/// A multi-stage pipeline with arithmetic between stages
/// (`pipeline_reg`, 610 cells).
pub fn pipeline_reg(stages: usize, width: u32) -> Module {
    let mut m = Module::new("pipeline_reg");
    m.add_signal("clk", 1, SignalKind::Input);
    let din = m.add_signal("din", width, SignalKind::Input);
    let coef = m.add_signal("coef", width, SignalKind::Input);
    let out = m.add_signal("dout", width, SignalKind::Output);
    let mut prev = var(din);
    for s in 0..stages {
        let reg = m.add_signal(format!("stage{s}"), width, SignalKind::Reg);
        let next = match s % 3 {
            0 => add(prev, var(coef)),
            1 => xor(prev, bin(BinOp::Shl, var(coef), konst((s % 4) as u64, 3))),
            _ => and(add(prev, konst(1, width)), or(var(coef), konst(5, width))),
        };
        m.add_reg_update(reg, next);
        prev = var(reg);
    }
    m.add_assign(out, prev);
    m
}

/// Parallel PRBS (LFSR) generators with XOR whitening
/// (`prbs_generator`, 643 cells).
pub fn prbs_generator(lanes: usize, width: u32) -> Module {
    let mut m = Module::new("prbs_generator");
    m.add_signal("clk", 1, SignalKind::Input);
    let seed_in = m.add_signal("seed_in", width, SignalKind::Input);
    let load = m.add_signal("load", 1, SignalKind::Input);
    let out = m.add_signal("prbs_out", width, SignalKind::Output);

    let mut lane_exprs = Vec::new();
    for l in 0..lanes {
        let lfsr = m.add_signal(format!("lfsr{l}"), width, SignalKind::Reg);
        m.add_reg_update_with_reset(
            lfsr,
            mux(
                var(load),
                add(var(seed_in), konst(l as u64 + 1, width)),
                // Fibonacci LFSR: shift left, feedback = parity of taps.
                concat(vec![
                    slice(lfsr, width - 2, 0),
                    xor(
                        bit(lfsr, width - 1),
                        xor(
                            bit(lfsr, (width * (l as u32 + 1) / (lanes as u32 + 1)) % width),
                            bit(lfsr, 1),
                        ),
                    ),
                ]),
            ),
            1 + l as u64,
        );
        lane_exprs.push(var(lfsr));
    }
    // Whitening: XOR all lanes together with a rotation.
    let mut acc = lane_exprs[0].clone();
    for (i, e) in lane_exprs.iter().enumerate().skip(1) {
        acc = xor(acc, bin(BinOp::Shr, e.clone(), konst((i % 3) as u64, 2)));
    }
    m.add_assign(out, acc);
    m
}

/// A deep, wide shift register with byte-swap feedback
/// (`shift_reg_24`, 731 cells).
pub fn shift_reg(stages: usize, width: u32) -> Module {
    let mut m = Module::new("shift_reg_24");
    m.add_signal("clk", 1, SignalKind::Input);
    let din = m.add_signal("din", width, SignalKind::Input);
    let en = m.add_signal("en", 1, SignalKind::Input);
    let out = m.add_signal("dout", width, SignalKind::Output);
    let mut prev = din;
    for s in 0..stages {
        let reg = m.add_signal(format!("sr{s}"), width, SignalKind::Reg);
        let shifted = if s % 4 == 3 && width >= 8 {
            // Occasional half-word rotate to add logic between stages.
            concat(vec![
                slice(prev, width / 2 - 1, 0),
                slice(prev, width - 1, width / 2),
            ])
        } else {
            xor(var(prev), konst((s as u64) & 0x3, width.min(2)))
        };
        m.add_reg_update(reg, mux(var(en), shifted, var(reg)));
        prev = reg;
    }
    m.add_assign(out, var(prev));
    m
}

/// An error logger: compares data against expected, accumulates an error
/// count, remembers the last mismatching word and sticky per-bit flags
/// (`error_logger`, 812 cells).
pub fn error_logger(width: u32, counter_bits: u32) -> Module {
    let mut m = Module::new("error_logger");
    m.add_signal("clk", 1, SignalKind::Input);
    let data = m.add_signal("data", width, SignalKind::Input);
    let expected = m.add_signal("expected", width, SignalKind::Input);
    let clear = m.add_signal("clear", 1, SignalKind::Input);
    let count_o = m.add_signal("err_count", counter_bits, SignalKind::Output);
    let last_o = m.add_signal("last_err", width, SignalKind::Output);
    let flags_o = m.add_signal("sticky", width, SignalKind::Output);

    let diff = m.add_signal("diff", width, SignalKind::Wire);
    m.add_assign(diff, xor(var(data), var(expected)));
    let has_err = m.add_signal("has_err", 1, SignalKind::Wire);
    m.add_assign(
        has_err,
        Expr::Unary(
            moss_rtl::UnaryOp::ReduceOr,
            Box::new(slice(diff, 1.min(width - 1), 0)),
        ),
    );

    let count = m.add_signal("count_r", counter_bits, SignalKind::Reg);
    m.add_reg_update(
        count,
        mux(
            var(clear),
            konst(0, counter_bits),
            mux(
                var(has_err),
                add(var(count), konst(1, counter_bits)),
                var(count),
            ),
        ),
    );
    let last = m.add_signal("last_r", width, SignalKind::Reg);
    m.add_reg_update(last, mux(var(has_err), var(data), var(last)));
    let sticky = m.add_signal("sticky_r", width, SignalKind::Reg);
    m.add_reg_update(
        sticky,
        mux(var(clear), konst(0, width), or(var(sticky), var(diff))),
    );
    // A small checksum pipeline to reach the paper's size.
    let sum1 = m.add_signal("sum1_r", width, SignalKind::Reg);
    m.add_reg_update(sum1, add(var(sum1), var(diff)));
    let sum2 = m.add_signal("sum2_r", width, SignalKind::Reg);
    m.add_reg_update(sum2, xor(var(sum2), add(var(sum1), var(data))));

    m.add_assign(count_o, var(count));
    m.add_assign(last_o, var(last));
    m.add_assign(
        flags_o,
        or(var(sticky), bin(BinOp::Shr, var(sum2), konst(1, 2))),
    );
    m
}

/// A multiply-accumulate unit (`signed_mac`, 1306 cells).
pub fn signed_mac(a_width: u32, b_width: u32) -> Module {
    let acc_width = (a_width + b_width + 4).min(64);
    let mut m = Module::new("signed_mac");
    m.add_signal("clk", 1, SignalKind::Input);
    let a = m.add_signal("a", a_width, SignalKind::Input);
    let b = m.add_signal("b", b_width, SignalKind::Input);
    let clear = m.add_signal("clear", 1, SignalKind::Input);
    let out = m.add_signal("acc_out", acc_width, SignalKind::Output);

    let prod = m.add_signal("prod", a_width + b_width, SignalKind::Wire);
    m.add_assign(prod, mul(var(a), var(b)));
    let acc = m.add_signal("acc_r", acc_width, SignalKind::Reg);
    m.add_reg_update(
        acc,
        mux(var(clear), konst(0, acc_width), add(var(acc), var(prod))),
    );
    m.add_assign(out, var(acc));
    m
}

/// A Wishbone-style data mux: several bus sources selected onto a registered
/// output with ready/grant logic (`wb_data_mux`, 1364 cells).
pub fn wb_data_mux(sources: usize, width: u32) -> Module {
    let mut m = Module::new("wb_data_mux");
    m.add_signal("clk", 1, SignalKind::Input);
    let sel_bits = (usize::BITS - (sources.max(2) - 1).leading_zeros()).max(1);
    let sel = m.add_signal("sel", sel_bits, SignalKind::Input);
    let ins: Vec<_> = (0..sources)
        .map(|i| m.add_signal(format!("src{i}"), width, SignalKind::Input))
        .collect();
    let valid = m.add_signal("valid", 1, SignalKind::Input);
    let out = m.add_signal("dat_o", width, SignalKind::Output);
    let ack_o = m.add_signal("ack_o", 1, SignalKind::Output);

    // Mux tree over the select register.
    let sel_r = m.add_signal("sel_r", sel_bits, SignalKind::Reg);
    m.add_reg_update(sel_r, var(sel));
    let mut cur: Vec<Expr> = ins.iter().map(|&s| var(s)).collect();
    let mut level = 0u32;
    let mut wire_n = 0usize;
    while cur.len() > 1 {
        let mut next = Vec::new();
        let mut iter = cur.into_iter();
        while let (Some(a0), Some(a1)) = (iter.next(), iter.next()) {
            let w = m.add_signal(format!("mx{wire_n}"), width, SignalKind::Wire);
            wire_n += 1;
            m.add_assign(w, mux(bit(sel_r, level.min(sel_bits - 1)), a1, a0));
            next.push(var(w));
        }
        next.extend(iter);
        cur = next;
        level += 1;
    }
    let chosen = cur.pop().expect("at least one source");
    let dat_r = m.add_signal("dat_r", width, SignalKind::Reg);
    m.add_reg_update(dat_r, mux(var(valid), chosen, var(dat_r)));
    let ack_r = m.add_signal("ack_r", 1, SignalKind::Reg);
    m.add_reg_update(ack_r, var(valid));
    // Parity tag appended to widen the datapath.
    let parity = m.add_signal("par_r", width, SignalKind::Reg);
    m.add_reg_update(parity, xor(var(parity), var(dat_r)));
    m.add_assign(out, xor(var(dat_r), and(var(parity), konst(1, width))));
    m.add_assign(ack_o, var(ack_r));
    m
}

/// A registered 16×32 → 48 multiplier (`mult_16x32_to_48`, 4144 cells).
pub fn mult_16x32_to_48() -> Module {
    let mut m = Module::new("mult_16x32_to_48");
    m.add_signal("clk", 1, SignalKind::Input);
    let a = m.add_signal("a", 16, SignalKind::Input);
    let b = m.add_signal("b", 32, SignalKind::Input);
    let out = m.add_signal("p", 48, SignalKind::Output);
    let prod = m.add_signal("prod_r", 48, SignalKind::Reg);
    m.add_reg_update(prod, mul(var(a), var(b)));
    m.add_assign(out, var(prod));
    m
}

/// The full Table I benchmark suite with paper-scale default parameters.
pub fn benchmark_suite() -> Vec<Module> {
    vec![
        max_selector(5, 8),
        pipeline_reg(10, 10),
        prbs_generator(6, 16),
        shift_reg(24, 14),
        error_logger(22, 16),
        signed_mac(10, 12),
        wb_data_mux(32, 38),
        mult_16x32_to_48(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_synth::{synthesize, SynthOptions};

    fn cells(m: &Module) -> usize {
        synthesize(m, &SynthOptions::default())
            .unwrap_or_else(|e| panic!("{} failed to synthesize: {e}", m.name()))
            .netlist
            .cell_count()
    }

    #[test]
    fn all_benchmarks_synthesize_and_simulate() {
        for m in benchmark_suite() {
            let interp = moss_rtl::Interpreter::new(&m)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", m.name()));
            drop(interp);
            let c = cells(&m);
            assert!(c > 50, "{} too small: {c}", m.name());
        }
    }

    #[test]
    fn suite_sizes_ascend_like_the_paper() {
        let sizes: Vec<(String, usize)> = benchmark_suite()
            .iter()
            .map(|m| (m.name().to_owned(), cells(m)))
            .collect();
        // The multiplier must dominate, as in Table I.
        let mult = sizes.iter().find(|(n, _)| n == "mult_16x32_to_48").unwrap();
        for (name, c) in &sizes {
            if name != "mult_16x32_to_48" {
                assert!(mult.1 > *c, "{name} ({c}) ≥ mult ({})", mult.1);
            }
        }
    }

    #[test]
    fn benchmarks_have_sequential_state() {
        for m in benchmark_suite() {
            assert!(!m.registers().is_empty(), "{} must be sequential", m.name());
        }
    }

    #[test]
    fn prbs_produces_changing_output() {
        let m = prbs_generator(3, 8);
        let mut it = moss_rtl::Interpreter::new(&m).unwrap();
        let out = m.find("prbs_out").unwrap();
        let mut values = std::collections::HashSet::new();
        for _ in 0..32 {
            it.step(&[]);
            values.insert(it.peek(out));
        }
        assert!(values.len() > 8, "PRBS cycles through many states");
    }

    #[test]
    fn max_selector_registers_per_cycle_max() {
        let m = max_selector(4, 8);
        let mut it = moss_rtl::Interpreter::new(&m).unwrap();
        let ins: Vec<_> = (0..4).map(|i| m.find(&format!("in{i}")).unwrap()).collect();
        let out = m.find("max_out").unwrap();
        it.step(&[(ins[0], 5), (ins[1], 17), (ins[2], 3), (ins[3], 9)]);
        assert_eq!(it.peek(out), 17);
        it.step(&[(ins[0], 2), (ins[1], 1), (ins[2], 4), (ins[3], 0)]);
        assert_eq!(it.peek(out), 4, "tracks the current cycle's max");
        it.step(&[(ins[0], 200), (ins[1], 1), (ins[2], 4), (ins[3], 0)]);
        assert_eq!(it.peek(out), 200);
    }

    #[test]
    fn mac_accumulates_products() {
        let m = signed_mac(8, 8);
        let mut it = moss_rtl::Interpreter::new(&m).unwrap();
        let a = m.find("a").unwrap();
        let b = m.find("b").unwrap();
        let clear = m.find("clear").unwrap();
        let out = m.find("acc_out").unwrap();
        it.step(&[(a, 3), (b, 4), (clear, 0)]);
        it.step(&[(a, 5), (b, 6), (clear, 0)]);
        assert_eq!(it.peek(out), 3 * 4 + 5 * 6);
        it.step(&[(a, 9), (b, 9), (clear, 1)]);
        assert_eq!(it.peek(out), 0, "clear wins");
    }
}
