//! # moss-datagen
//!
//! Dataset generation for the MOSS reproduction. The paper trains on 31,701
//! collected RTL designs synthesized into 100–5000-cell circuits (§V-A);
//! that dataset is private, so this crate provides:
//!
//! - the eight named Table I benchmark circuits as parameterized RTL
//!   generators ([`benchmark_suite`]: `max_selector`, `pipeline_reg`,
//!   `prbs_generator`, `shift_reg_24`, `error_logger`, `signed_mac`,
//!   `wb_data_mux`, `mult_16x32_to_48`);
//! - [`random_module`]/[`random_corpus`]: structurally-valid random
//!   sequential designs across size classes;
//! - [`random_netlist`]: random gate-level netlists at an exact cell count
//!   (simulator benchmarking and differential fuzzing);
//! - [`CorpusPlan`]/[`CorpusShard`]: deterministic seed-range shards of a
//!   random corpus, so 10k+ circuit runs generate (and label) one bounded
//!   shard at a time;
//! - [`finetune_pairs`]: contrastive text pairs (register prompt ↔ DFF
//!   context, RTL source ↔ summary) for LLM fine-tuning.
//!
//! ## Example
//!
//! ```
//! let suite = moss_datagen::benchmark_suite();
//! assert_eq!(suite.len(), 8);
//! assert!(suite.iter().any(|m| m.name() == "mult_16x32_to_48"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod benchmarks;
mod corpus;
pub mod expr;
mod extras;
mod random;
mod shard;

pub use benchmarks::{
    benchmark_suite, error_logger, max_selector, mult_16x32_to_48, pipeline_reg, prbs_generator,
    shift_reg, signed_mac, wb_data_mux,
};
pub use corpus::finetune_pairs;
pub use extras::{alu, fifo_ctrl, uart_tx};
pub use random::{corpus_module, random_corpus, random_module, random_netlist, SizeClass};
pub use shard::{CorpusPlan, CorpusShard};
