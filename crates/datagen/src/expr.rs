//! Small expression-building helpers over the `moss-rtl` AST, shared by all
//! generators.

use moss_rtl::{BinOp, Expr, SignalId, UnaryOp};

/// A whole-signal reference.
pub fn var(s: SignalId) -> Expr {
    Expr::Var(s)
}

/// A sized constant.
pub fn konst(value: u64, width: u32) -> Expr {
    Expr::constant(value, width)
}

/// A binary operation.
pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
    Expr::Binary(op, Box::new(l), Box::new(r))
}

/// `l + r`.
pub fn add(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Add, l, r)
}

/// `l ^ r`.
pub fn xor(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Xor, l, r)
}

/// `l & r`.
pub fn and(l: Expr, r: Expr) -> Expr {
    bin(BinOp::And, l, r)
}

/// `l | r`.
pub fn or(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Or, l, r)
}

/// `l * r`.
pub fn mul(l: Expr, r: Expr) -> Expr {
    bin(BinOp::Mul, l, r)
}

/// `cond ? t : e`.
pub fn mux(cond: Expr, t: Expr, e: Expr) -> Expr {
    Expr::Mux(Box::new(cond), Box::new(t), Box::new(e))
}

/// `~e`.
pub fn not(e: Expr) -> Expr {
    Expr::Unary(UnaryOp::Not, Box::new(e))
}

/// Single-bit select.
pub fn bit(s: SignalId, i: u32) -> Expr {
    Expr::Index(s, i)
}

/// Part select `[hi:lo]`.
pub fn slice(s: SignalId, hi: u32, lo: u32) -> Expr {
    Expr::Slice(s, hi, lo)
}

/// Concatenation (first part most significant).
pub fn concat(parts: Vec<Expr>) -> Expr {
    Expr::Concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_rtl::{Module, SignalKind};

    #[test]
    fn helpers_build_expected_shapes() {
        let mut m = Module::new("t");
        let a = m.add_signal("a", 4, SignalKind::Input);
        let e = mux(bit(a, 0), add(var(a), konst(1, 4)), slice(a, 3, 1));
        assert!(matches!(e, Expr::Mux(..)));
        assert_eq!(add(var(a), konst(1, 4)).width(&m), 4);
        assert_eq!(concat(vec![var(a), var(a)]).width(&m), 8);
    }
}
