//! Fine-tuning corpora: paired texts extracted from designs, mirroring the
//! paper's RTL fine-tuning data (register description prompts ↔ DFF cell
//! contexts, and RTL code ↔ functional summaries).

use moss_netlist::CellKind;
use moss_rtl::{describe_registers, module_summary, print_module, Module};
use moss_synth::{synthesize, SynthOptions};

/// Extracts contrastive text pairs from a set of designs:
///
/// - per register: (RTL register-description prompt, DFF cell-context
///   description) — trains the encoder to place a register's RTL view near
///   its netlist view;
/// - per module: (printed RTL source, functional summary) — trains global
///   RTL understanding.
///
/// Designs that fail synthesis are skipped (random corpora are validated
/// elsewhere, but this keeps the function total).
pub fn finetune_pairs(modules: &[Module]) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    for m in modules {
        let Ok(result) = synthesize(m, &SynthOptions::default()) else {
            continue;
        };
        let descs = describe_registers(m);
        for d in &descs {
            let bits: Vec<&moss_synth::DffBinding> = result
                .dffs
                .iter()
                .filter(|b| b.register_name == d.name)
                .collect();
            if bits.is_empty() {
                continue;
            }
            let fanin_hint = bits.len();
            let context = format!(
                "{} ; instances {}_reg implement the {} bits of register {} in module {} driven by the surrounding combinational logic",
                CellKind::Dff.description(),
                d.name,
                fanin_hint,
                d.name,
                m.name(),
            );
            pairs.push((d.prompt.clone(), context));
        }
        pairs.push((print_module(m), module_summary(m)));
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_corpus, random_module, SizeClass};

    #[test]
    fn pairs_cover_registers_and_modules() {
        // Seed 0 produces a design where every register survives synthesis
        // with live DFF bits, so each register yields a pair plus the one
        // module-level (source, summary) pair.
        let m = random_module(0, SizeClass::Small);
        let regs = m.registers().len();
        assert!(regs > 0, "design has registers");
        let pairs = finetune_pairs(&[m]);
        assert_eq!(pairs.len(), regs + 1);
        for (a, b) in &pairs {
            assert!(!a.is_empty() && !b.is_empty());
        }
    }

    #[test]
    fn corpus_scales_linearly() {
        let modules = random_corpus(1, 6);
        let pairs = finetune_pairs(&modules);
        assert!(pairs.len() >= modules.len(), "at least one pair per module");
    }
}
