//! Additional benchmark families beyond the paper's Table I set — UART
//! transmitter, synchronous FIFO controller, and a registered ALU. These
//! diversify the training corpus the way the paper's 31k-design collection
//! spans "diverse functionalities" (§V-A).

use moss_rtl::{BinOp, Module, SignalKind};

use crate::expr::*;

/// A UART transmitter: shift register + bit counter + busy flag, start/stop
/// bit framing.
pub fn uart_tx(data_bits: u32) -> Module {
    let frame = data_bits + 2; // start + data + stop
    let cnt_bits = 32 - (frame - 1).leading_zeros().max(1);
    let mut m = Module::new("uart_tx");
    m.add_signal("clk", 1, SignalKind::Input);
    let start = m.add_signal("start", 1, SignalKind::Input);
    let data = m.add_signal("data", data_bits, SignalKind::Input);
    let tx = m.add_signal("tx", 1, SignalKind::Output);
    let busy_o = m.add_signal("busy", 1, SignalKind::Output);

    let shreg = m.add_signal("shreg", frame, SignalKind::Reg);
    let count = m.add_signal("count", cnt_bits, SignalKind::Reg);
    let busy = m.add_signal("busy_r", 1, SignalKind::Reg);

    let kick = m.add_signal("kick", 1, SignalKind::Wire);
    m.add_assign(kick, and(var(start), not(var(busy))));
    let done = m.add_signal("done", 1, SignalKind::Wire);
    m.add_assign(
        done,
        bin(BinOp::Eq, var(count), konst(frame as u64 - 1, cnt_bits)),
    );

    // Frame layout (LSB first on the wire): start=0, data, stop=1.
    let loaded = concat(vec![konst(1, 1), var(data), konst(0, 1)]);
    m.add_reg_update(
        shreg,
        mux(var(kick), loaded, bin(BinOp::Shr, var(shreg), konst(1, 2))),
    );
    m.add_reg_update(
        count,
        mux(
            var(kick),
            konst(0, cnt_bits),
            mux(var(busy), add(var(count), konst(1, cnt_bits)), var(count)),
        ),
    );
    m.add_reg_update_with_reset(
        busy,
        mux(
            var(kick),
            konst(1, 1),
            mux(var(done), konst(0, 1), var(busy)),
        ),
        0,
    );
    m.add_assign(tx, mux(var(busy), bit(shreg, 0), konst(1, 1)));
    m.add_assign(busy_o, var(busy));
    m
}

/// A synchronous FIFO controller (pointers + occupancy, no data RAM): full/
/// empty flags and occupancy counter for a `2^addr_bits`-deep queue.
pub fn fifo_ctrl(addr_bits: u32) -> Module {
    let depth = 1u64 << addr_bits;
    let occ_bits = addr_bits + 1;
    let mut m = Module::new("fifo_ctrl");
    m.add_signal("clk", 1, SignalKind::Input);
    let push = m.add_signal("push", 1, SignalKind::Input);
    let pop = m.add_signal("pop", 1, SignalKind::Input);
    let full_o = m.add_signal("full", 1, SignalKind::Output);
    let empty_o = m.add_signal("empty", 1, SignalKind::Output);
    let occ_o = m.add_signal("occupancy", occ_bits, SignalKind::Output);
    let wptr_o = m.add_signal("wptr", addr_bits, SignalKind::Output);

    let wptr = m.add_signal("wptr_r", addr_bits, SignalKind::Reg);
    let rptr = m.add_signal("rptr_r", addr_bits, SignalKind::Reg);
    let occ = m.add_signal("occ_r", occ_bits, SignalKind::Reg);

    let full = m.add_signal("full_w", 1, SignalKind::Wire);
    m.add_assign(full, bin(BinOp::Eq, var(occ), konst(depth, occ_bits)));
    let empty = m.add_signal("empty_w", 1, SignalKind::Wire);
    m.add_assign(empty, bin(BinOp::Eq, var(occ), konst(0, occ_bits)));

    let do_push = m.add_signal("do_push", 1, SignalKind::Wire);
    m.add_assign(do_push, and(var(push), not(var(full))));
    let do_pop = m.add_signal("do_pop", 1, SignalKind::Wire);
    m.add_assign(do_pop, and(var(pop), not(var(empty))));

    m.add_reg_update(
        wptr,
        mux(var(do_push), add(var(wptr), konst(1, addr_bits)), var(wptr)),
    );
    m.add_reg_update(
        rptr,
        mux(var(do_pop), add(var(rptr), konst(1, addr_bits)), var(rptr)),
    );
    // occ' = occ + push − pop (guarded).
    m.add_reg_update(
        occ,
        bin(
            BinOp::Sub,
            add(
                var(occ),
                mux(var(do_push), konst(1, occ_bits), konst(0, occ_bits)),
            ),
            mux(var(do_pop), konst(1, occ_bits), konst(0, occ_bits)),
        ),
    );
    m.add_assign(full_o, var(full));
    m.add_assign(empty_o, var(empty));
    m.add_assign(occ_o, var(occ));
    m.add_assign(wptr_o, var(wptr));
    m
}

/// A registered ALU: add/sub/and/or/xor/shift select with zero and carry
/// flags.
pub fn alu(width: u32) -> Module {
    let mut m = Module::new("alu");
    m.add_signal("clk", 1, SignalKind::Input);
    let a = m.add_signal("a", width, SignalKind::Input);
    let b = m.add_signal("b", width, SignalKind::Input);
    let op = m.add_signal("op", 3, SignalKind::Input);
    let res_o = m.add_signal("result", width, SignalKind::Output);
    let zero_o = m.add_signal("zero", 1, SignalKind::Output);

    let sum = m.add_signal("sum_w", width, SignalKind::Wire);
    m.add_assign(sum, add(var(a), var(b)));
    let dif = m.add_signal("dif_w", width, SignalKind::Wire);
    m.add_assign(dif, bin(BinOp::Sub, var(a), var(b)));
    let res = m.add_signal("res_w", width, SignalKind::Wire);
    m.add_assign(
        res,
        mux(
            bit(op, 2),
            mux(
                bit(op, 1),
                bin(BinOp::Shl, var(a), konst(1, 2)),
                bin(BinOp::Shr, var(a), konst(1, 2)),
            ),
            mux(
                bit(op, 1),
                mux(bit(op, 0), xor(var(a), var(b)), or(var(a), var(b))),
                mux(
                    bit(op, 0),
                    and(var(a), var(b)),
                    mux(bit(op, 0), var(sum), mux(bit(op, 1), var(dif), var(sum))),
                ),
            ),
        ),
    );

    let res_r = m.add_signal("res_r", width, SignalKind::Reg);
    m.add_reg_update(res_r, var(res));
    let zero_r = m.add_signal("zero_r", 1, SignalKind::Reg);
    m.add_reg_update(zero_r, bin(BinOp::Eq, var(res), konst(0, width)));
    m.add_assign(res_o, var(res_r));
    m.add_assign(zero_o, var(zero_r));
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_rtl::Interpreter;

    #[test]
    fn uart_frames_a_byte() {
        let m = uart_tx(8);
        let mut it = Interpreter::new(&m).unwrap();
        let start = m.find("start").unwrap();
        let data = m.find("data").unwrap();
        let tx = m.find("tx").unwrap();
        let busy = m.find("busy").unwrap();
        // Idle line is high.
        it.step(&[(start, 0), (data, 0)]);
        assert_eq!(it.peek(tx), 1);
        // Kick a transmission of 0b1010_1010.
        it.step(&[(start, 1), (data, 0xAA)]);
        assert_eq!(it.peek(busy), 1);
        // First bit on the wire is the start bit (0).
        assert_eq!(it.peek(tx), 0);
        let mut bits = Vec::new();
        for _ in 0..9 {
            it.step(&[(start, 0), (data, 0)]);
            bits.push(it.peek(tx));
        }
        // 8 data bits LSB-first, then the stop bit (1).
        assert_eq!(&bits[..8], &[0, 1, 0, 1, 0, 1, 0, 1]);
        assert_eq!(bits[8], 1, "stop bit");
    }

    #[test]
    fn fifo_tracks_occupancy_and_flags() {
        let m = fifo_ctrl(2); // depth 4
        let mut it = Interpreter::new(&m).unwrap();
        let push = m.find("push").unwrap();
        let pop = m.find("pop").unwrap();
        let occ = m.find("occupancy").unwrap();
        let full = m.find("full").unwrap();
        let empty = m.find("empty").unwrap();
        assert_eq!(it.peek(empty), 1);
        for i in 1..=4 {
            it.step(&[(push, 1), (pop, 0)]);
            assert_eq!(it.peek(occ), i);
        }
        assert_eq!(it.peek(full), 1);
        // Push on full is ignored.
        it.step(&[(push, 1), (pop, 0)]);
        assert_eq!(it.peek(occ), 4);
        // Drain.
        for i in (0..4).rev() {
            it.step(&[(push, 0), (pop, 1)]);
            assert_eq!(it.peek(occ), i);
        }
        assert_eq!(it.peek(empty), 1);
    }

    #[test]
    fn alu_ops_register_results() {
        let m = alu(8);
        let mut it = Interpreter::new(&m).unwrap();
        let a = m.find("a").unwrap();
        let b = m.find("b").unwrap();
        let op = m.find("op").unwrap();
        let result = m.find("result").unwrap();
        let zero = m.find("zero").unwrap();
        // op 0b000 → sum path.
        it.step(&[(a, 12), (b, 30), (op, 0)]);
        assert_eq!(it.peek(result), 42);
        assert_eq!(it.peek(zero), 0);
        // op 0b011 → xor path; equal inputs → zero flag.
        it.step(&[(a, 0x5A), (b, 0x5A), (op, 0b011)]);
        assert_eq!(it.peek(result), 0);
        assert_eq!(it.peek(zero), 1);
        // op 0b100 → shift right.
        it.step(&[(a, 0x80), (b, 0), (op, 0b100)]);
        assert_eq!(it.peek(result), 0x40);
    }

    #[test]
    fn extras_synthesize_cleanly() {
        for m in [uart_tx(8), fifo_ctrl(3), alu(12)] {
            let r = moss_synth::synthesize(&m, &moss_synth::SynthOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert!(r.netlist.cell_count() > 20, "{}", m.name());
            assert!(r.netlist.dff_count() > 0, "{}", m.name());
        }
    }
}
