//! Random RTL design generation — the stand-in for the paper's 31,701
//! collected RTL designs (§V-A). Designs are structurally valid by
//! construction (wires reference only earlier signals; registers may
//! reference anything, giving sequential feedback).

use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};
use moss_rtl::{BinOp, Expr, Module, SignalId, SignalKind, UnaryOp};

/// Size class of a generated design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// ~100–400 cells after synthesis.
    Small,
    /// ~400–1500 cells.
    Medium,
    /// ~1500–5000 cells.
    Large,
}

impl SizeClass {
    fn params(self) -> (usize, usize, usize, u32) {
        // (registers, wires, outputs, max width)
        match self {
            SizeClass::Small => (2, 4, 2, 8),
            SizeClass::Medium => (4, 8, 3, 16),
            SizeClass::Large => (6, 12, 4, 32),
        }
    }
}

/// Generates a random, valid sequential module.
///
/// # Examples
///
/// ```
/// let m = moss_datagen::random_module(7, moss_datagen::SizeClass::Small);
/// assert!(moss_rtl::Interpreter::new(&m).is_ok());
/// assert!(!m.registers().is_empty());
/// ```
pub fn random_module(seed: u64, size: SizeClass) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let (n_regs, n_wires, n_outs, max_width) = size.params();
    let mut m = Module::new(format!("rand_{seed}"));
    m.add_signal("clk", 1, SignalKind::Input);

    let n_ins = rng.gen_range(2..=4);
    let mut readable: Vec<SignalId> = Vec::new();
    for i in 0..n_ins {
        let w = rng.gen_range(1..=max_width);
        readable.push(m.add_signal(format!("i{i}"), w, SignalKind::Input));
    }
    let regs: Vec<SignalId> = (0..n_regs)
        .map(|i| {
            let w = rng.gen_range(2..=max_width);
            m.add_signal(format!("r{i}"), w, SignalKind::Reg)
        })
        .collect();
    readable.extend(&regs);

    // Wires in order; each references only earlier signals.
    let mut wires = Vec::new();
    for i in 0..n_wires {
        let w = rng.gen_range(1..=max_width);
        let id = m.add_signal(format!("w{i}"), w, SignalKind::Wire);
        let e = random_expr(&mut rng, &m, &readable, 3, size == SizeClass::Large);
        m.add_assign(id, e);
        readable.push(id);
        wires.push(id);
    }

    // Register updates may use everything (feedback allowed).
    for &r in &regs {
        let e = random_expr(&mut rng, &m, &readable, 3, size == SizeClass::Large);
        let reset = rng.gen_range(0..=15);
        m.add_reg_update_with_reset(r, e, reset);
    }

    // Outputs driven by late wires/registers.
    for i in 0..n_outs {
        let w = rng.gen_range(1..=max_width);
        let id = m.add_signal(format!("o{i}"), w, SignalKind::Output);
        let src = readable[rng.gen_range(0..readable.len())];
        m.add_assign(id, Expr::Var(src));
    }
    m
}

fn random_expr(
    rng: &mut StdRng,
    m: &Module,
    readable: &[SignalId],
    depth: usize,
    allow_mul: bool,
) -> Expr {
    if depth == 0 || rng.gen_bool(0.25) {
        return random_leaf(rng, m, readable);
    }
    let choice = rng.gen_range(0..10);
    let sub = |rng: &mut StdRng| random_expr(rng, m, readable, depth - 1, allow_mul);
    match choice {
        0 => Expr::Binary(BinOp::Add, Box::new(sub(rng)), Box::new(sub(rng))),
        1 => Expr::Binary(BinOp::Sub, Box::new(sub(rng)), Box::new(sub(rng))),
        2 => Expr::Binary(BinOp::Xor, Box::new(sub(rng)), Box::new(sub(rng))),
        3 => Expr::Binary(BinOp::And, Box::new(sub(rng)), Box::new(sub(rng))),
        4 => Expr::Binary(BinOp::Or, Box::new(sub(rng)), Box::new(sub(rng))),
        5 if allow_mul => Expr::Binary(BinOp::Mul, Box::new(sub(rng)), Box::new(sub(rng))),
        5 => Expr::Binary(BinOp::Add, Box::new(sub(rng)), Box::new(sub(rng))),
        6 => Expr::Unary(UnaryOp::Not, Box::new(sub(rng))),
        7 => Expr::Mux(Box::new(sub(rng)), Box::new(sub(rng)), Box::new(sub(rng))),
        8 => {
            let cmp = if rng.gen_bool(0.5) {
                BinOp::Lt
            } else {
                BinOp::Eq
            };
            Expr::Binary(cmp, Box::new(sub(rng)), Box::new(sub(rng)))
        }
        _ => {
            let amount = rng.gen_range(1..4);
            let op = if rng.gen_bool(0.5) {
                BinOp::Shl
            } else {
                BinOp::Shr
            };
            Expr::Binary(op, Box::new(sub(rng)), Box::new(Expr::constant(amount, 3)))
        }
    }
}

fn random_leaf(rng: &mut StdRng, m: &Module, readable: &[SignalId]) -> Expr {
    let pick = readable[rng.gen_range(0..readable.len())];
    let width = m.signal(pick).width;
    match rng.gen_range(0..4) {
        0 => Expr::constant(rng.gen_range(0..256), rng.gen_range(1..=8)),
        1 if width > 1 => {
            let hi = rng.gen_range(1..width);
            let lo = rng.gen_range(0..=hi);
            Expr::Slice(pick, hi, lo)
        }
        2 => Expr::Index(pick, rng.gen_range(0..width)),
        _ => Expr::Var(pick),
    }
}

/// Generates a random, valid gate-level netlist with exactly `cells`
/// standard cells.
///
/// Unlike [`random_module`] + synthesis, this hits a requested cell count
/// precisely, which simulator benchmarks and differential fuzzing need
/// (e.g. the paper's 100–5000-cell circuit size band). Combinational
/// fanins reference only earlier nodes, so the combinational portion is
/// acyclic by construction; ~15% of cells are DFFs and half of their
/// D-pins are rewired to later nodes for genuine sequential feedback.
///
/// # Examples
///
/// ```
/// let nl = moss_datagen::random_netlist(3, 200);
/// assert_eq!(nl.cell_count(), 200);
/// assert!(nl.validate().is_ok());
/// assert!(moss_sim::CompiledSim::new(&nl).is_ok());
/// ```
pub fn random_netlist(seed: u64, cells: usize) -> moss_netlist::Netlist {
    use moss_netlist::{CellKind, Netlist, NodeId};

    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("rand_netlist_{seed}_{cells}"));
    let n_inputs = 8.min(cells.max(2));
    let mut nodes: Vec<NodeId> = (0..n_inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();
    let comb_kinds: Vec<CellKind> = CellKind::ALL
        .into_iter()
        .filter(|k| !k.is_sequential() && k.input_count() > 0)
        .collect();
    let mut dffs = Vec::new();
    for c in 0..cells {
        if rng.gen_bool(0.15) {
            let d = nodes[rng.gen_range(0..nodes.len())];
            let id = nl
                .add_cell(CellKind::Dff, format!("r{c}"), &[d])
                .expect("fanins exist");
            dffs.push(id);
            nodes.push(id);
        } else {
            let kind = comb_kinds[rng.gen_range(0..comb_kinds.len())];
            // Bias fanins toward recent nodes so depth grows with size.
            let fanins: Vec<NodeId> = (0..kind.input_count())
                .map(|_| {
                    let lo = nodes.len().saturating_sub(64);
                    nodes[rng.gen_range(lo..nodes.len())]
                })
                .collect();
            let id = nl
                .add_cell(kind, format!("u{c}"), &fanins)
                .expect("fanins exist");
            nodes.push(id);
        }
    }
    for &ff in &dffs {
        if rng.gen_bool(0.5) {
            let src = nodes[rng.gen_range(0..nodes.len())];
            nl.replace_fanin(ff, 0, src).expect("valid rewire");
        }
    }
    for k in 0..4usize.min(nodes.len()) {
        let src = nodes[nodes.len() - 1 - k];
        nl.add_output(format!("o{k}"), src);
    }
    nl
}

/// Generates design `index` of the corpus rooted at `seed` — the unit the
/// sharded corpus plan streams, so any sub-range of a corpus can be
/// regenerated without materializing the rest.
pub fn corpus_module(seed: u64, index: usize) -> Module {
    let class = match index % 3 {
        0 => SizeClass::Small,
        1 => SizeClass::Medium,
        _ => SizeClass::Small, // keep corpora CPU-friendly by default
    };
    random_module(seed.wrapping_add(index as u64), class)
}

/// Generates a corpus of `count` random designs across size classes.
pub fn random_corpus(seed: u64, count: usize) -> Vec<Module> {
    (0..count).map(|i| corpus_module(seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_modules_are_always_valid() {
        for seed in 0..30 {
            let m = random_module(seed, SizeClass::Small);
            moss_rtl::Interpreter::new(&m).unwrap_or_else(|e| panic!("seed {seed} invalid: {e}"));
        }
    }

    #[test]
    fn random_modules_synthesize() {
        for seed in 0..10 {
            let m = random_module(seed, SizeClass::Medium);
            let r = moss_synth::synthesize(&m, &moss_synth::SynthOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(r.netlist.validate().is_ok());
        }
    }

    #[test]
    fn random_netlists_hit_cell_count_and_simulate() {
        for seed in 0..6 {
            let nl = random_netlist(seed, 150);
            assert_eq!(nl.cell_count(), 150, "seed {seed}");
            assert!(nl.validate().is_ok(), "seed {seed}");
            assert!(nl.dff_count() > 0, "seed {seed} has flops");
            // Levelizable (no combinational cycles) and simulable.
            let report = moss_sim::toggle_rates(&nl, &[], 64, seed).unwrap();
            assert_eq!(report.cycles, 64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_module(42, SizeClass::Medium);
        let b = random_module(42, SizeClass::Medium);
        assert_eq!(a, b);
        let c = random_module(43, SizeClass::Medium);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_has_requested_count_and_distinct_names() {
        let corpus = random_corpus(9, 12);
        assert_eq!(corpus.len(), 12);
        let names: std::collections::HashSet<&str> = corpus.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn round_trip_through_printer_is_stable() {
        // Signal ids may be renumbered by the parser (ports first), so the
        // meaningful invariant is print → parse → print fixpoint.
        for seed in 0..10 {
            let m = random_module(seed, SizeClass::Small);
            let text = moss_rtl::print_module(&m);
            let again = moss_rtl::parse(&text)
                .unwrap_or_else(|e| panic!("seed {seed} reparse: {e}\n{text}"));
            assert_eq!(text, moss_rtl::print_module(&again), "seed {seed}");
        }
    }
}
