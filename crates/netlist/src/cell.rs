//! Standard-cell kinds and their logic functions.
//!
//! MOSS operates on standard-cell netlists rather than AIGs (see the paper's
//! §II-A critique of AIG-based models), so the cell vocabulary here mirrors a
//! small industrial library: inverters/buffers, 2- and 3-input NAND/NOR/
//! AND/OR, XOR/XNOR, AOI/OAI complex gates, a 2:1 mux, and a D-type
//! flip-flop. Each kind knows its pin count, logic function, and a short
//! functional description used by the LLM feature-extraction path (Fig. 3).

use std::fmt;

/// The kind of a standard cell.
///
/// # Examples
///
/// ```
/// use moss_netlist::CellKind;
///
/// assert_eq!(CellKind::Nand2.input_count(), 2);
/// assert!(CellKind::Dff.is_sequential());
/// assert_eq!(CellKind::Nand2.eval(&[true, true]), false);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// AND-OR-invert: `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert: `!((a | b) & c)`.
    Oai21,
    /// 2:1 multiplexer: pin order `(a, b, sel)`, output `sel ? b : a`.
    Mux2,
    /// Constant logic-0 tie cell (no inputs).
    Tie0,
    /// Constant logic-1 tie cell (no inputs).
    Tie1,
    /// Positive-edge D-type flip-flop; pin order `(d,)`.
    Dff,
}

impl CellKind {
    /// All cell kinds, in a stable order.
    pub const ALL: [CellKind; 18] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::And2,
        CellKind::And3,
        CellKind::Or2,
        CellKind::Or3,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Mux2,
        CellKind::Tie0,
        CellKind::Tie1,
        CellKind::Dff,
    ];

    /// Number of input pins.
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => 0,
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Nand3
            | CellKind::Nor3
            | CellKind::And3
            | CellKind::Or3
            | CellKind::Aoi21
            | CellKind::Oai21
            | CellKind::Mux2 => 3,
        }
    }

    /// Whether the cell is a state element (D-type flip-flop).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// A dense index in `0..CellKind::ALL.len()`, stable across runs.
    ///
    /// Used for one-hot node features and library lookups.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Reconstructs a kind from [`CellKind::index`].
    pub fn from_index(index: usize) -> Option<CellKind> {
        CellKind::ALL.get(index).copied()
    }

    /// Evaluates the combinational function of the cell.
    ///
    /// For [`CellKind::Dff`] this returns the D input (the value that will be
    /// latched at the next clock edge); the simulator handles the actual
    /// state update.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "cell {self} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf | CellKind::Dff => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::Tie0 => false,
            CellKind::Tie1 => true,
        }
    }

    /// The library cell name, e.g. `NAND2_X1`.
    pub fn lib_name(self) -> &'static str {
        match self {
            CellKind::Inv => "INV_X1",
            CellKind::Buf => "BUF_X1",
            CellKind::Nand2 => "NAND2_X1",
            CellKind::Nand3 => "NAND3_X1",
            CellKind::Nor2 => "NOR2_X1",
            CellKind::Nor3 => "NOR3_X1",
            CellKind::And2 => "AND2_X1",
            CellKind::And3 => "AND3_X1",
            CellKind::Or2 => "OR2_X1",
            CellKind::Or3 => "OR3_X1",
            CellKind::Xor2 => "XOR2_X1",
            CellKind::Xnor2 => "XNOR2_X1",
            CellKind::Aoi21 => "AOI21_X1",
            CellKind::Oai21 => "OAI21_X1",
            CellKind::Mux2 => "MUX2_X1",
            CellKind::Tie0 => "TIEL_X1",
            CellKind::Tie1 => "TIEH_X1",
            CellKind::Dff => "DFF_X1",
        }
    }

    /// A short functional description of the cell as found in a standard-cell
    /// datasheet. This text feeds the LLM embedding path (paper Fig. 3a:
    /// "cell description").
    pub fn description(self) -> &'static str {
        match self {
            CellKind::Inv => "inverter cell: drives the logical complement of input A onto output Y",
            CellKind::Buf => "buffer cell: drives input A onto output Y with restored strength",
            CellKind::Nand2 => "two input nand gate: output Y is low only when inputs A and B are both high",
            CellKind::Nand3 => "three input nand gate: output Y is low only when inputs A B and C are all high",
            CellKind::Nor2 => "two input nor gate: output Y is high only when inputs A and B are both low",
            CellKind::Nor3 => "three input nor gate: output Y is high only when inputs A B and C are all low",
            CellKind::And2 => "two input and gate: output Y is high when inputs A and B are both high",
            CellKind::And3 => "three input and gate: output Y is high when inputs A B and C are all high",
            CellKind::Or2 => "two input or gate: output Y is high when input A or input B is high",
            CellKind::Or3 => "three input or gate: output Y is high when any of inputs A B or C is high",
            CellKind::Xor2 => "two input exclusive or gate: output Y is high when inputs A and B differ",
            CellKind::Xnor2 => "two input exclusive nor gate: output Y is high when inputs A and B match",
            CellKind::Aoi21 => "and or invert complex gate: output Y is the complement of A and B or C",
            CellKind::Oai21 => "or and invert complex gate: output Y is the complement of A or B and C",
            CellKind::Mux2 => "two to one multiplexer: output Y selects input B when S is high otherwise input A",
            CellKind::Tie0 => "tie low cell: output Y is a constant logic zero",
            CellKind::Tie1 => "tie high cell: output Y is a constant logic one",
            CellKind::Dff => "rising edge d type flip flop: output Q captures input D at each clock edge and holds state",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.lib_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts_match_eval_arity() {
        for kind in CellKind::ALL {
            let inputs = vec![false; kind.input_count()];
            // Must not panic.
            let _ = kind.eval(&inputs);
        }
    }

    #[test]
    fn index_round_trips() {
        for kind in CellKind::ALL {
            assert_eq!(CellKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(CellKind::from_index(CellKind::ALL.len()), None);
    }

    #[test]
    fn truth_tables_of_basic_gates() {
        use CellKind::*;
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(Nand2.eval(&[a, b]), !(a & b));
            assert_eq!(Nor2.eval(&[a, b]), !(a | b));
            assert_eq!(And2.eval(&[a, b]), a & b);
            assert_eq!(Or2.eval(&[a, b]), a | b);
            assert_eq!(Xor2.eval(&[a, b]), a ^ b);
            assert_eq!(Xnor2.eval(&[a, b]), !(a ^ b));
        }
        assert!(Inv.eval(&[false]));
        assert!(!Inv.eval(&[true]));
    }

    #[test]
    fn complex_gate_truth_tables() {
        use CellKind::*;
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert_eq!(Aoi21.eval(&[a, b, c]), !((a & b) | c));
                    assert_eq!(Oai21.eval(&[a, b, c]), !((a | b) & c));
                    assert_eq!(Mux2.eval(&[a, b, c]), if c { b } else { a });
                    assert_eq!(Nand3.eval(&[a, b, c]), !(a & b & c));
                    assert_eq!(Nor3.eval(&[a, b, c]), !(a | b | c));
                }
            }
        }
    }

    #[test]
    fn dff_is_the_only_sequential_kind() {
        for kind in CellKind::ALL {
            assert_eq!(kind.is_sequential(), kind == CellKind::Dff);
        }
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn eval_panics_on_wrong_arity() {
        CellKind::Nand2.eval(&[true]);
    }

    #[test]
    fn descriptions_are_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in CellKind::ALL {
            assert!(!kind.description().is_empty());
            assert!(
                seen.insert(kind.description()),
                "duplicate description for {kind}"
            );
        }
    }
}
