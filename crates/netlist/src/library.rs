//! Timing/power characterization of the standard-cell library.
//!
//! A lightweight NLDM-style model: each cell has an intrinsic delay, a
//! load-dependent delay slope, an input pin capacitance, an output drive
//! resistance proxy, switching energy and leakage power. Values are loosely
//! modeled on a 45 nm educational library (NangateOpenCell-like magnitudes)
//! — the absolute numbers only need to be internally consistent, since the
//! experiments compare prediction accuracy against ground truth produced by
//! this same library.

use crate::cell::CellKind;

/// Per-cell electrical characterization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// Intrinsic (no-load) propagation delay, in picoseconds.
    pub intrinsic_delay_ps: f64,
    /// Additional delay per unit load capacitance, ps per fF.
    pub delay_per_ff: f64,
    /// Capacitance presented by each input pin, in femtofarads.
    pub input_cap_ff: f64,
    /// Dynamic switching energy per output transition, in femtojoules.
    pub switch_energy_fj: f64,
    /// Static leakage power, in nanowatts.
    pub leakage_nw: f64,
    /// Cell area in square micrometers.
    pub area_um2: f64,
}

/// The characterized standard-cell library.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, CellLibrary};
///
/// let lib = CellLibrary::nangate45_like();
/// let t = lib.timing(CellKind::Nand2);
/// assert!(t.intrinsic_delay_ps > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CellLibrary {
    timings: [CellTiming; CellKind::ALL.len()],
    name: String,
}

impl CellLibrary {
    /// Builds the default library with 45 nm-like magnitudes.
    pub fn nangate45_like() -> CellLibrary {
        fn t(
            intrinsic_delay_ps: f64,
            delay_per_ff: f64,
            input_cap_ff: f64,
            switch_energy_fj: f64,
            leakage_nw: f64,
            area_um2: f64,
        ) -> CellTiming {
            CellTiming {
                intrinsic_delay_ps,
                delay_per_ff,
                input_cap_ff,
                switch_energy_fj,
                leakage_nw,
                area_um2,
            }
        }
        let mut timings = [t(10.0, 3.0, 1.0, 1.0, 10.0, 1.0); CellKind::ALL.len()];
        let entries: [(CellKind, CellTiming); 18] = [
            (CellKind::Inv, t(8.0, 2.2, 1.0, 0.6, 9.0, 0.53)),
            (CellKind::Buf, t(16.0, 1.8, 1.1, 1.0, 14.0, 0.80)),
            (CellKind::Nand2, t(12.0, 2.8, 1.2, 1.1, 15.0, 0.80)),
            (CellKind::Nand3, t(16.0, 3.4, 1.3, 1.5, 21.0, 1.06)),
            (CellKind::Nor2, t(14.0, 3.2, 1.2, 1.2, 17.0, 0.80)),
            (CellKind::Nor3, t(20.0, 4.0, 1.3, 1.6, 24.0, 1.06)),
            (CellKind::And2, t(20.0, 2.4, 1.2, 1.4, 19.0, 1.06)),
            (CellKind::And3, t(24.0, 2.6, 1.3, 1.8, 26.0, 1.33)),
            (CellKind::Or2, t(22.0, 2.4, 1.2, 1.4, 19.0, 1.06)),
            (CellKind::Or3, t(27.0, 2.6, 1.3, 1.8, 26.0, 1.33)),
            (CellKind::Xor2, t(30.0, 3.6, 1.8, 2.6, 31.0, 1.60)),
            (CellKind::Xnor2, t(31.0, 3.6, 1.8, 2.6, 31.0, 1.60)),
            (CellKind::Aoi21, t(18.0, 3.8, 1.3, 1.6, 22.0, 1.06)),
            (CellKind::Oai21, t(18.0, 3.8, 1.3, 1.6, 22.0, 1.06)),
            (CellKind::Mux2, t(26.0, 3.0, 1.5, 2.2, 28.0, 1.60)),
            (CellKind::Tie0, t(0.1, 0.1, 0.1, 0.01, 2.0, 0.27)),
            (CellKind::Tie1, t(0.1, 0.1, 0.1, 0.01, 2.0, 0.27)),
            (CellKind::Dff, t(55.0, 2.5, 1.6, 5.5, 95.0, 4.52)),
        ];
        for (kind, timing) in entries {
            timings[kind.index()] = timing;
        }
        CellLibrary {
            timings,
            name: "nangate45_like".to_owned(),
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Characterization data for `kind`.
    pub fn timing(&self, kind: CellKind) -> CellTiming {
        self.timings[kind.index()]
    }

    /// Gate delay under a given output load, in picoseconds.
    ///
    /// `delay = intrinsic + slope * load`.
    pub fn delay_ps(&self, kind: CellKind, load_ff: f64) -> f64 {
        let t = self.timing(kind);
        t.intrinsic_delay_ps + t.delay_per_ff * load_ff
    }

    /// Setup time required at a DFF's D pin, in picoseconds.
    pub fn dff_setup_ps(&self) -> f64 {
        30.0
    }

    /// Clock-to-Q delay of a DFF, in picoseconds.
    pub fn dff_clk_to_q_ps(&self) -> f64 {
        self.timing(CellKind::Dff).intrinsic_delay_ps
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary::nangate45_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_characterized_positively() {
        let lib = CellLibrary::nangate45_like();
        for kind in CellKind::ALL {
            let t = lib.timing(kind);
            assert!(t.intrinsic_delay_ps > 0.0, "{kind}");
            assert!(t.delay_per_ff > 0.0, "{kind}");
            assert!(t.input_cap_ff > 0.0, "{kind}");
            assert!(t.switch_energy_fj > 0.0, "{kind}");
            assert!(t.leakage_nw > 0.0, "{kind}");
            assert!(t.area_um2 > 0.0, "{kind}");
        }
    }

    #[test]
    fn delay_grows_with_load() {
        let lib = CellLibrary::default();
        let light = lib.delay_ps(CellKind::Nand2, 1.0);
        let heavy = lib.delay_ps(CellKind::Nand2, 10.0);
        assert!(heavy > light);
    }

    #[test]
    fn dff_is_slowest_and_leakiest() {
        let lib = CellLibrary::default();
        let dff = lib.timing(CellKind::Dff);
        for kind in CellKind::ALL {
            if kind != CellKind::Dff {
                assert!(dff.leakage_nw > lib.timing(kind).leakage_nw);
            }
        }
    }
}
