//! Error types for netlist construction and analysis.

use std::error::Error;
use std::fmt;

use crate::cell::CellKind;
use crate::verilog::ParseError;

/// Errors produced while building or analyzing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A cell was connected with the wrong number of fanins.
    PinCountMismatch {
        /// The cell kind.
        cell: CellKind,
        /// Pins the cell requires.
        expected: usize,
        /// Pins supplied.
        got: usize,
    },
    /// A fanin id referenced a node that does not exist.
    UnknownNode(usize),
    /// A node has dangling (unconnected) pins.
    DanglingPins {
        /// Node index.
        node: usize,
        /// Node name.
        name: String,
        /// Pins required.
        expected: usize,
        /// Pins connected.
        got: usize,
    },
    /// Fanin and fanout adjacency lists disagree.
    InconsistentAdjacency {
        /// Driver index.
        from: usize,
        /// Sink index.
        to: usize,
    },
    /// The combinational portion of the netlist contains a cycle
    /// (a feedback loop not broken by a DFF).
    CombinationalCycle {
        /// A node on the cycle.
        node: usize,
    },
    /// Structural Verilog failed to parse. Carries the position and typed
    /// kind of the failure.
    Verilog(ParseError),
    /// A deterministic fault from `moss-faults` (`MOSS_FAULTS`) fired at
    /// this site — a rehearsed failure, not an organic one.
    FaultInjected {
        /// The fault site that fired (e.g. `"sim"`, `"sta"`).
        site: &'static str,
    },
}

impl NetlistError {
    /// True when this error is a rehearsed `moss-faults` injection rather
    /// than an organic failure (run manifests record the distinction).
    pub fn is_fault_injected(&self) -> bool {
        matches!(self, NetlistError::FaultInjected { .. })
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::PinCountMismatch {
                cell,
                expected,
                got,
            } => {
                write!(f, "cell {cell} requires {expected} fanins, got {got}")
            }
            NetlistError::UnknownNode(i) => write!(f, "fanin references unknown node {i}"),
            NetlistError::DanglingPins {
                node,
                name,
                expected,
                got,
            } => write!(
                f,
                "node {node} ({name}) has {got} connected pins, requires {expected}"
            ),
            NetlistError::InconsistentAdjacency { from, to } => {
                write!(f, "adjacency lists disagree on edge {from} -> {to}")
            }
            NetlistError::CombinationalCycle { node } => write!(
                f,
                "combinational cycle through node {node} (missing a flip-flop on a feedback path)"
            ),
            NetlistError::Verilog(e) => {
                write!(f, "verilog parse error: {e}")
            }
            NetlistError::FaultInjected { site } => {
                write!(f, "injected fault at site '{site}'")
            }
        }
    }
}

impl Error for NetlistError {}

impl From<ParseError> for NetlistError {
    fn from(e: ParseError) -> NetlistError {
        NetlistError::Verilog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NetlistError::UnknownNode(3);
        let s = e.to_string();
        assert!(s.contains('3'));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<NetlistError>();
    }
}
