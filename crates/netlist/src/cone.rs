//! Combinational cone extraction and register-to-register connectivity.
//!
//! The paper's key structural observation (Fig. 1c) is that DFFs partition a
//! sequential circuit into shallow combinational neighborhoods: each DFF
//! "aggregates upstream input information and propagates it downstream".
//! These helpers expose exactly that partition — the fanin cone of a node up
//! to the sequential boundary, and the DFF→DFF adjacency it induces.

use std::collections::{HashSet, VecDeque};

use crate::graph::{Netlist, NodeId, NodeKind};

/// The transitive fanin of `root`, walking backwards through combinational
/// cells and stopping at primary inputs and DFF outputs (the sequential
/// boundary). The returned set includes `root` and the boundary nodes.
pub fn fanin_cone(netlist: &Netlist, root: NodeId) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(root);
    queue.push_back(root);
    while let Some(id) = queue.pop_front() {
        // Stop *expanding* at sequential/primary boundaries, but keep them in
        // the cone. The root itself is always expanded one step so that the
        // cone of a DFF covers its D-side logic.
        let expand =
            id == root || matches!(netlist.kind(id), NodeKind::Cell(k) if !k.is_sequential());
        if !expand {
            continue;
        }
        for &f in netlist.fanins(id) {
            if seen.insert(f) {
                queue.push_back(f);
            }
        }
    }
    seen
}

/// Register-to-register adjacency: for each DFF (or primary output), which
/// DFFs/primary inputs drive it through combinational logic.
///
/// Returned as `(sinks, sources_per_sink)` where sinks are all DFFs and POs.
pub fn register_adjacency(netlist: &Netlist) -> Vec<(NodeId, Vec<NodeId>)> {
    let mut result = Vec::new();
    for id in netlist.node_ids() {
        let is_sink = netlist.kind(id).is_dff() || netlist.kind(id) == NodeKind::PrimaryOutput;
        if !is_sink {
            continue;
        }
        let cone = fanin_cone(netlist, id);
        let mut sources: Vec<NodeId> = cone
            .into_iter()
            .filter(|&c| {
                c != id && (netlist.kind(c).is_dff() || netlist.kind(c) == NodeKind::PrimaryInput)
            })
            .collect();
        sources.sort();
        result.push((id, sources));
    }
    result
}

/// Size of the combinational cone feeding each DFF, a proxy for the local
/// modeling difficulty the paper's DFF-anchored design exploits.
pub fn dff_cone_sizes(netlist: &Netlist) -> Vec<(NodeId, usize)> {
    netlist
        .dffs()
        .into_iter()
        .map(|d| (d, fanin_cone(netlist, d).len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    #[test]
    fn cone_stops_at_dff_boundary() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let inv_a = nl.add_cell(CellKind::Inv, "u0", &[a]).unwrap();
        let ff1 = nl.add_cell(CellKind::Dff, "r1", &[inv_a]).unwrap();
        let g = nl.add_cell(CellKind::Inv, "u1", &[ff1]).unwrap();
        let ff2 = nl.add_cell(CellKind::Dff, "r2", &[g]).unwrap();
        nl.add_output("y", ff2);

        let cone = fanin_cone(&nl, ff2);
        assert!(cone.contains(&ff2));
        assert!(cone.contains(&g));
        assert!(cone.contains(&ff1), "boundary DFF included");
        assert!(!cone.contains(&inv_a), "logic behind boundary excluded");
        assert!(!cone.contains(&a));
    }

    #[test]
    fn register_adjacency_links_flops() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff1 = nl.add_cell(CellKind::Dff, "r1", &[a]).unwrap();
        let g = nl.add_cell(CellKind::Xor2, "u1", &[ff1, a]).unwrap();
        let ff2 = nl.add_cell(CellKind::Dff, "r2", &[g]).unwrap();
        nl.add_output("y", ff2);

        let adj = register_adjacency(&nl);
        let ff2_sources = &adj.iter().find(|(s, _)| *s == ff2).unwrap().1;
        assert!(ff2_sources.contains(&ff1));
        assert!(ff2_sources.contains(&a));
        let ff1_sources = &adj.iter().find(|(s, _)| *s == ff1).unwrap().1;
        assert_eq!(ff1_sources, &vec![a]);
    }

    #[test]
    fn cone_sizes_cover_all_dffs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let f1 = nl.add_cell(CellKind::Dff, "r1", &[a]).unwrap();
        let f2 = nl.add_cell(CellKind::Dff, "r2", &[f1]).unwrap();
        nl.add_output("y", f2);
        let sizes = dff_cone_sizes(&nl);
        assert_eq!(sizes.len(), 2);
        for (_, s) in sizes {
            assert!(s >= 2);
        }
    }
}
