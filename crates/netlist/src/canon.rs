//! Canonical netlist serialization and content hashing.
//!
//! Serving and caching key circuits by *content*: two netlists that denote
//! the same circuit must produce the same key even when their nodes were
//! declared in a different order (a Verilog writer is free to emit
//! instances in any order, and parsers assign node indices by appearance).
//! The canonical form therefore orders everything by *name* — names are
//! unique within a netlist and survive reordering — and records structure
//! through name references only, never through node indices.
//!
//! The module name is deliberately excluded: renaming a design does not
//! change the circuit, and the embedding server's cache should hit on it.

use crate::graph::{Netlist, NodeId, NodeKind};

/// Renders the netlist in a declaration-order-independent canonical form.
///
/// Lines are `i <name>` (primary inputs), `c <lib_cell> <name> <fanin
/// names…>` (cells, pin order preserved), and `o <name> <driver name>`
/// (primary outputs), each group sorted lexicographically by name. Node
/// indices never appear, so any permutation of declarations yields the
/// same text.
///
/// # Examples
///
/// ```
/// use moss_netlist::{parse_verilog, canonical_form};
///
/// let a = parse_verilog("module m (input a, output y);
///                          wire n_u1; wire n_u2;
///                          INV_X1 u1 (.A(a), .Y(n_u1));
///                          INV_X1 u2 (.A(n_u1), .Y(n_u2));
///                          assign y = n_u2; endmodule")?;
/// let b = parse_verilog("module m2 (input a, output y);
///                          wire n_u1; wire n_u2;
///                          INV_X1 u2 (.A(n_u1), .Y(n_u2));
///                          INV_X1 u1 (.A(a), .Y(n_u1));
///                          assign y = n_u2; endmodule")?;
/// assert_eq!(canonical_form(&a), canonical_form(&b));
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
pub fn canonical_form(netlist: &Netlist) -> String {
    let name_of = |id: NodeId| netlist.node(id).name();

    let mut inputs: Vec<&str> = netlist.primary_inputs().into_iter().map(name_of).collect();
    inputs.sort_unstable();

    let mut cells: Vec<String> = netlist
        .node_ids()
        .filter_map(|id| match netlist.kind(id) {
            NodeKind::Cell(kind) => {
                let mut line = format!("c {} {}", kind.lib_name(), name_of(id));
                for &f in netlist.fanins(id) {
                    line.push(' ');
                    line.push_str(name_of(f));
                }
                Some(line)
            }
            _ => None,
        })
        .collect();
    cells.sort_unstable();

    let mut outputs: Vec<String> = netlist
        .primary_outputs()
        .into_iter()
        .map(|id| format!("o {} {}", name_of(id), name_of(netlist.fanins(id)[0])))
        .collect();
    outputs.sort_unstable();

    let mut out = String::new();
    for name in inputs {
        out.push_str("i ");
        out.push_str(name);
        out.push('\n');
    }
    for line in cells.iter().chain(outputs.iter()) {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Content hash of the canonicalized netlist (FNV-1a over
/// [`canonical_form`]).
///
/// Invariant to node declaration order and to the module name; sensitive
/// to every cell kind, instance name, pin connection, and port. This is
/// the embedding server's cache key, so the exact value is part of the
/// on-the-wire contract — changing the canonical form silently invalidates
/// every deployed cache (a regression test pins one value).
pub fn canonical_hash(netlist: &Netlist) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in canonical_form(netlist).as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;
    use crate::verilog::{parse_verilog, write_verilog};

    fn sample() -> Netlist {
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell(CellKind::Nand2, "u1", &[a, b]).unwrap();
        let ff = nl.add_cell(CellKind::Dff, "r0", &[g1]).unwrap();
        let g2 = nl.add_cell(CellKind::Xor2, "u2", &[ff, a]).unwrap();
        nl.add_output("y", g2);
        nl.add_output("q", ff);
        nl
    }

    /// Re-emits `nl` as Verilog with the instance lines reversed, then
    /// parses it back: same circuit, different declaration order.
    fn reordered(nl: &Netlist) -> Netlist {
        let src = write_verilog(nl);
        let mut header = Vec::new();
        let mut instances = Vec::new();
        let mut tail = Vec::new();
        for line in src.lines() {
            let t = line.trim_start();
            if t.starts_with("module") || t.starts_with("wire") {
                header.push(line);
            } else if t.starts_with("assign") || t.starts_with("endmodule") {
                tail.push(line);
            } else if !t.is_empty() {
                instances.push(line);
            }
        }
        instances.reverse();
        let shuffled: Vec<&str> = header.into_iter().chain(instances).chain(tail).collect();
        parse_verilog(&shuffled.join("\n")).unwrap()
    }

    #[test]
    fn declaration_order_does_not_change_the_hash() {
        let original = parse_verilog(&write_verilog(&sample())).unwrap();
        let shuffled = reordered(&sample());
        assert_ne!(original.node_ids().count(), 0, "sanity: non-empty netlist");
        assert_eq!(canonical_form(&original), canonical_form(&shuffled));
        assert_eq!(canonical_hash(&original), canonical_hash(&shuffled));
    }

    #[test]
    fn module_name_is_excluded() {
        let mut renamed = Netlist::new("other_name");
        let a = renamed.add_input("a");
        let b = renamed.add_input("b");
        let g1 = renamed.add_cell(CellKind::Nand2, "u1", &[a, b]).unwrap();
        let ff = renamed.add_cell(CellKind::Dff, "r0", &[g1]).unwrap();
        let g2 = renamed.add_cell(CellKind::Xor2, "u2", &[ff, a]).unwrap();
        renamed.add_output("y", g2);
        renamed.add_output("q", ff);
        assert_eq!(canonical_hash(&sample()), canonical_hash(&renamed));
    }

    #[test]
    fn structure_changes_the_hash() {
        let base = sample();
        // Different gate kind.
        let mut other = Netlist::new("demo");
        let a = other.add_input("a");
        let b = other.add_input("b");
        let g1 = other.add_cell(CellKind::Nor2, "u1", &[a, b]).unwrap();
        let ff = other.add_cell(CellKind::Dff, "r0", &[g1]).unwrap();
        let g2 = other.add_cell(CellKind::Xor2, "u2", &[ff, a]).unwrap();
        other.add_output("y", g2);
        other.add_output("q", ff);
        assert_ne!(canonical_hash(&base), canonical_hash(&other));

        // Swapped pin connections (ordered pins are structure).
        let mut swapped = Netlist::new("demo");
        let a = swapped.add_input("a");
        let b = swapped.add_input("b");
        let g1 = swapped.add_cell(CellKind::Nand2, "u1", &[b, a]).unwrap();
        let ff = swapped.add_cell(CellKind::Dff, "r0", &[g1]).unwrap();
        let g2 = swapped.add_cell(CellKind::Xor2, "u2", &[ff, a]).unwrap();
        swapped.add_output("y", g2);
        swapped.add_output("q", ff);
        assert_ne!(canonical_hash(&base), canonical_hash(&swapped));
    }

    #[test]
    fn hash_is_stable_across_calls() {
        let nl = sample();
        assert_eq!(canonical_hash(&nl), canonical_hash(&nl));
    }
}
