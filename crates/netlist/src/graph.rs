//! The netlist graph: nodes, ordered pin connections, and structural queries.
//!
//! A netlist is a directed graph `G = (V, E)` (paper §III) whose nodes are
//! primary inputs/outputs and standard cells, and whose edges carry a pin
//! index — pin order matters because different inputs of a gate have
//! different electrical and logical roles (the paper encodes this with edge
//! positional encoding, §IV-B).

use std::collections::HashMap;
use std::fmt;

use crate::cell::CellKind;
use crate::error::NetlistError;

/// Identifier of a node within one [`Netlist`].
///
/// Indices are dense and stable: the `n`-th added node has index `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a raw index.
    pub fn new(index: usize) -> NodeId {
        NodeId(index as u32)
    }

    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Primary input port.
    PrimaryInput,
    /// Primary output port (single fanin).
    PrimaryOutput,
    /// A standard cell, combinational or sequential.
    Cell(CellKind),
}

impl NodeKind {
    /// Whether this node is a D-type flip-flop.
    pub fn is_dff(self) -> bool {
        matches!(self, NodeKind::Cell(k) if k.is_sequential())
    }

    /// Whether this node is a combinational cell.
    pub fn is_combinational_cell(self) -> bool {
        matches!(self, NodeKind::Cell(k) if !k.is_sequential())
    }

    /// The expected number of fanins.
    pub fn input_count(self) -> usize {
        match self {
            NodeKind::PrimaryInput => 0,
            NodeKind::PrimaryOutput => 1,
            NodeKind::Cell(k) => k.input_count(),
        }
    }
}

/// A node: its kind plus an instance name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    kind: NodeKind,
    name: String,
}

impl Node {
    /// The node's kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The instance (or port) name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A standard-cell netlist.
///
/// # Examples
///
/// Build `y = !(a & b)` and query its structure:
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
///
/// let mut nl = Netlist::new("tiny");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_cell(CellKind::Nand2, "u1", &[a, b])?;
/// let _y = nl.add_output("y", g);
/// assert_eq!(nl.cell_count(), 1);
/// assert_eq!(nl.fanins(g), [a, b]);
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    fanins: Vec<Vec<NodeId>>,
    fanouts: Vec<Vec<NodeId>>,
    name_index: HashMap<String, NodeId>,
}

impl Netlist {
    /// Creates an empty netlist with a design name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            fanins: Vec::new(),
            fanouts: Vec::new(),
            name_index: HashMap::new(),
        }
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push_node(&mut self, kind: NodeKind, name: String) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.name_index.entry(name.clone()).or_insert(id);
        self.nodes.push(Node { kind, name });
        self.fanins.push(Vec::new());
        self.fanouts.push(Vec::new());
        id
    }

    /// Adds a primary input port.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.push_node(NodeKind::PrimaryInput, name.into())
    }

    /// Adds a primary output port driven by `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of bounds.
    pub fn add_output(&mut self, name: impl Into<String>, src: NodeId) -> NodeId {
        assert!(src.index() < self.nodes.len(), "source {src} out of bounds");
        let id = self.push_node(NodeKind::PrimaryOutput, name.into());
        self.fanins[id.index()].push(src);
        self.fanouts[src.index()].push(id);
        id
    }

    /// Adds a standard cell with ordered fanins.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::PinCountMismatch`] if `fanins.len()` does not
    /// match the cell's pin count, or [`NetlistError::UnknownNode`] if any
    /// fanin is out of bounds.
    pub fn add_cell(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        fanins: &[NodeId],
    ) -> Result<NodeId, NetlistError> {
        if fanins.len() != kind.input_count() {
            return Err(NetlistError::PinCountMismatch {
                cell: kind,
                expected: kind.input_count(),
                got: fanins.len(),
            });
        }
        for &f in fanins {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownNode(f.index()));
            }
        }
        let id = self.push_node(NodeKind::Cell(kind), name.into());
        for &f in fanins {
            self.fanins[id.index()].push(f);
            self.fanouts[f.index()].push(id);
        }
        Ok(id)
    }

    /// Adds a standard cell with no fanins connected yet.
    ///
    /// Parser-internal: the Verilog elaborator creates all instances first
    /// (nets may be driven after their first use, and DFFs form cycles) and
    /// then attaches pins in order via [`Netlist::connect_pin`]. The node is
    /// invalid until all pins are connected; [`Netlist::validate`] reports
    /// it as [`NetlistError::DanglingPins`] until then.
    pub(crate) fn add_cell_unconnected(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
    ) -> NodeId {
        self.push_node(NodeKind::Cell(kind), name.into())
    }

    /// Connects the next unconnected pin of `node` to `src`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if either id is out of bounds,
    /// or [`NetlistError::PinCountMismatch`] if every pin of `node` is
    /// already connected.
    pub(crate) fn connect_pin(&mut self, node: NodeId, src: NodeId) -> Result<(), NetlistError> {
        if node.index() >= self.nodes.len() {
            return Err(NetlistError::UnknownNode(node.index()));
        }
        if src.index() >= self.nodes.len() {
            return Err(NetlistError::UnknownNode(src.index()));
        }
        let kind = self.nodes[node.index()].kind;
        let expected = kind.input_count();
        let got = self.fanins[node.index()].len();
        if got >= expected {
            return Err(NetlistError::PinCountMismatch {
                cell: match kind {
                    NodeKind::Cell(k) => k,
                    _ => CellKind::Buf,
                },
                expected,
                got: got + 1,
            });
        }
        self.fanins[node.index()].push(src);
        self.fanouts[src.index()].push(node);
        Ok(())
    }

    /// Total node count including ports.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of standard cells (combinational + DFF), excluding ports.
    pub fn cell_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Cell(_)))
            .count()
    }

    /// Number of DFFs.
    pub fn dff_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_dff()).count()
    }

    /// Number of edges (total fanin connections).
    pub fn edge_count(&self) -> usize {
        self.fanins.iter().map(Vec::len).sum()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The kind of a node.
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()].kind
    }

    /// Ordered fanins (driving nodes, by pin index).
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        &self.fanins[id.index()]
    }

    /// Fanouts (driven nodes, unordered).
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Ids of all primary inputs, in insertion order.
    pub fn primary_inputs(&self) -> Vec<NodeId> {
        self.filter_ids(|k| k == NodeKind::PrimaryInput)
    }

    /// Ids of all primary outputs, in insertion order.
    pub fn primary_outputs(&self) -> Vec<NodeId> {
        self.filter_ids(|k| k == NodeKind::PrimaryOutput)
    }

    /// Ids of all DFFs, in insertion order. These are the paper's "anchor
    /// points" (Fig. 1c).
    pub fn dffs(&self) -> Vec<NodeId> {
        self.filter_ids(|k| k.is_dff())
    }

    fn filter_ids(&self, pred: impl Fn(NodeKind) -> bool) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| pred(self.nodes[id.index()].kind))
            .collect()
    }

    /// Looks a node up by name (first node added under that name wins).
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    /// Rewires pin `pin` of `node` to be driven by `new_src`.
    ///
    /// Used by synthesis to patch DFF feedback loops (the D input is only
    /// known after the next-state logic is built) and by optimization passes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] if `node` or `new_src` is out of
    /// bounds, or [`NetlistError::PinCountMismatch`] if `pin` is not a valid
    /// pin of `node`.
    pub fn replace_fanin(
        &mut self,
        node: NodeId,
        pin: usize,
        new_src: NodeId,
    ) -> Result<(), NetlistError> {
        if node.index() >= self.nodes.len() {
            return Err(NetlistError::UnknownNode(node.index()));
        }
        if new_src.index() >= self.nodes.len() {
            return Err(NetlistError::UnknownNode(new_src.index()));
        }
        let kind = self.nodes[node.index()].kind;
        if pin >= self.fanins[node.index()].len() {
            return Err(NetlistError::PinCountMismatch {
                cell: match kind {
                    NodeKind::Cell(k) => k,
                    _ => CellKind::Buf,
                },
                expected: kind.input_count(),
                got: pin + 1,
            });
        }
        let old = self.fanins[node.index()][pin];
        // Remove exactly one fanout entry for the old driver.
        if let Some(p) = self.fanouts[old.index()].iter().position(|&x| x == node) {
            self.fanouts[old.index()].remove(p);
        }
        self.fanins[node.index()][pin] = new_src;
        self.fanouts[new_src.index()].push(node);
        Ok(())
    }

    /// Flattens the per-node fanin lists into one contiguous CSR arena.
    ///
    /// Compilers over the netlist (e.g. the compiled simulator's instruction
    /// lowering) iterate every node's fanins exactly once; the
    /// `Vec<Vec<NodeId>>` adjacency costs one pointer chase per node. The
    /// returned [`FaninArena`] stores all fanins back-to-back with a
    /// `node_count + 1` offset table, so a full sweep is a single linear
    /// scan.
    pub fn fanin_arena(&self) -> FaninArena {
        let mut offsets = Vec::with_capacity(self.nodes.len() + 1);
        let mut data = Vec::with_capacity(self.edge_count());
        offsets.push(0);
        for fi in &self.fanins {
            data.extend_from_slice(fi);
            offsets.push(data.len() as u32);
        }
        FaninArena { offsets, data }
    }

    /// Validates structural invariants: every node has the pin count its
    /// kind requires, every primary output has exactly one driver, and
    /// fanin/fanout lists are mutually consistent.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for id in self.node_ids() {
            let node = &self.nodes[id.index()];
            let expected = node.kind.input_count();
            let got = self.fanins[id.index()].len();
            if got != expected {
                return Err(NetlistError::DanglingPins {
                    node: id.index(),
                    name: node.name.clone(),
                    expected,
                    got,
                });
            }
            for &f in &self.fanins[id.index()] {
                if !self.fanouts[f.index()].contains(&id) {
                    return Err(NetlistError::InconsistentAdjacency {
                        from: f.index(),
                        to: id.index(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Flat CSR view of every node's fanins (see [`Netlist::fanin_arena`]).
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_cell(CellKind::And2, "u1", &[a, b])?;
/// let arena = nl.fanin_arena();
/// assert_eq!(arena.fanins(g), [a, b]);
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaninArena {
    offsets: Vec<u32>,
    data: Vec<NodeId>,
}

impl FaninArena {
    /// Ordered fanins of `id`, as a slice into the shared arena.
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.data[lo..hi]
    }

    /// All fanin edges, concatenated in node-id order.
    pub fn flat(&self) -> &[NodeId] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Netlist, NodeId, NodeId, NodeId) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::And2, "u1", &[a, b]).unwrap();
        nl.add_output("y", g);
        (nl, a, b, g)
    }

    #[test]
    fn counts_and_queries() {
        let (nl, a, b, g) = tiny();
        assert_eq!(nl.node_count(), 4);
        assert_eq!(nl.cell_count(), 1);
        assert_eq!(nl.dff_count(), 0);
        assert_eq!(nl.edge_count(), 3);
        assert_eq!(nl.fanins(g), [a, b]);
        assert_eq!(nl.fanouts(a), [g]);
        assert_eq!(nl.primary_inputs(), vec![a, b]);
        assert!(nl.validate().is_ok());
    }

    #[test]
    fn fanin_arena_matches_adjacency() {
        let (nl, a, b, g) = tiny();
        let arena = nl.fanin_arena();
        for id in nl.node_ids() {
            assert_eq!(arena.fanins(id), nl.fanins(id), "node {id}");
        }
        assert_eq!(arena.fanins(g), [a, b]);
        assert_eq!(arena.flat().len(), nl.edge_count());
    }

    #[test]
    fn find_by_name() {
        let (nl, a, ..) = tiny();
        assert_eq!(nl.find("a"), Some(a));
        assert_eq!(nl.find("nope"), None);
    }

    #[test]
    fn pin_count_mismatch_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let err = nl.add_cell(CellKind::Nand2, "u1", &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::PinCountMismatch { .. }));
    }

    #[test]
    fn unknown_fanin_rejected() {
        let mut nl = Netlist::new("t");
        let err = nl
            .add_cell(CellKind::Inv, "u1", &[NodeId::new(7)])
            .unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNode(7)));
    }

    #[test]
    fn replace_fanin_rewires_both_directions() {
        let (mut nl, a, b, g) = tiny();
        let c = nl.add_input("c");
        nl.replace_fanin(g, 0, c).unwrap();
        assert_eq!(nl.fanins(g), [c, b]);
        assert!(nl.fanouts(a).is_empty());
        assert_eq!(nl.fanouts(c), [g]);
        assert!(nl.validate().is_ok());
        let _ = a;
    }

    #[test]
    fn replace_fanin_rejects_bad_pin() {
        let (mut nl, a, _, g) = tiny();
        assert!(nl.replace_fanin(g, 5, a).is_err());
        assert!(nl.replace_fanin(NodeId::new(99), 0, a).is_err());
    }

    #[test]
    fn dffs_listed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let q = nl.add_cell(CellKind::Dff, "r0", &[a]).unwrap();
        nl.add_output("y", q);
        assert_eq!(nl.dffs(), vec![q]);
        assert_eq!(nl.dff_count(), 1);
    }
}
