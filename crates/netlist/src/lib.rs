//! # moss-netlist
//!
//! Standard-cell netlist data structures for the MOSS reproduction.
//!
//! MOSS (DAC 2025) learns representations of *sequential circuits at the
//! standard-cell level* — not AIGs — because industrial labels (arrival
//! times, toggle rates, power) are annotated on standard cells. This crate
//! provides:
//!
//! - [`CellKind`]: a 16-cell library vocabulary with logic functions and
//!   datasheet-style descriptions (fed to the LLM path, paper Fig. 3);
//! - [`CellLibrary`]: NLDM-style timing/power characterization;
//! - [`Netlist`]: the directed graph with ordered (pin-indexed) edges;
//! - [`Levelization`]: topological ordering with DFFs as sequential
//!   boundaries (pseudo primary inputs/outputs, paper §IV-B);
//! - cone/register-adjacency analysis ([`fanin_cone`],
//!   [`register_adjacency`]) for the DFF-anchor structure of Fig. 1(c).
//!
//! ## Example
//!
//! ```
//! use moss_netlist::{CellKind, Netlist, Levelization, NetlistStats};
//!
//! // q_next = q XOR en  (a toggle-enable flop)
//! let mut nl = Netlist::new("toggle_en");
//! let en = nl.add_input("en");
//! let seed = nl.add_input("seed");
//! let ff = nl.add_cell(CellKind::Dff, "q_reg", &[seed])?;
//! let x = nl.add_cell(CellKind::Xor2, "u1", &[ff, en])?;
//! nl.add_output("q", ff);
//!
//! let stats = NetlistStats::of(&nl);
//! assert_eq!(stats.dffs, 1);
//! let lv = Levelization::of(&nl)?;
//! assert_eq!(lv.level(x), 1);
//! # Ok::<(), moss_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod canon;
mod cell;
mod cone;
mod error;
mod graph;
mod level;
mod library;
mod stats;
mod verilog;

pub use canon::{canonical_form, canonical_hash};
pub use cell::CellKind;
pub use cone::{dff_cone_sizes, fanin_cone, register_adjacency};
pub use error::NetlistError;
pub use graph::{FaninArena, Netlist, Node, NodeId, NodeKind};
pub use level::Levelization;
pub use library::{CellLibrary, CellTiming};
pub use stats::{to_dot, NetlistStats};
pub use verilog::{
    parse_verilog, parse_verilog_design, write_verilog, DffReset, ParseError, ParseErrorKind,
    ParsedDff, VerilogDesign,
};
