//! Levelization: topological ordering of the combinational logic between
//! sequential boundaries.
//!
//! Sequential circuits are handled the way the paper's two-phase propagation
//! does (§IV-B): DFF outputs act as *pseudo primary inputs* (PPIs) at level
//! 0, and DFF D-pins act as pseudo primary outputs. Levelization therefore
//! only walks combinational edges; a cycle among combinational cells (a
//! feedback loop not broken by a flip-flop) is an error.

use std::collections::VecDeque;

use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId, NodeKind};

/// Result of levelizing a netlist.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist, Levelization};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g1 = nl.add_cell(CellKind::Inv, "u1", &[a])?;
/// let g2 = nl.add_cell(CellKind::Inv, "u2", &[g1])?;
/// nl.add_output("y", g2);
/// let lv = Levelization::of(&nl)?;
/// assert_eq!(lv.level(g1), 1);
/// assert_eq!(lv.level(g2), 2);
/// assert_eq!(lv.max_level(), 2);
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Levelization {
    levels: Vec<u32>,
    topo_comb: Vec<NodeId>,
    max_level: u32,
}

impl Levelization {
    /// Levelizes `netlist`.
    ///
    /// Primary inputs and DFF outputs are level 0; each combinational cell is
    /// `1 + max(fanin levels)`; a primary output inherits its driver's level.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// portion is cyclic, or any error from [`Netlist::validate`].
    pub fn of(netlist: &Netlist) -> Result<Levelization, NetlistError> {
        netlist.validate()?;
        let n = netlist.node_count();
        let mut levels = vec![0u32; n];
        let mut remaining = vec![0usize; n];
        let mut queue = VecDeque::new();

        let total_comb = netlist
            .node_ids()
            .filter(|&id| netlist.kind(id).is_combinational_cell())
            .count();
        let mut comb_done = 0usize;
        let mut topo_comb = Vec::with_capacity(total_comb);

        for id in netlist.node_ids() {
            match netlist.kind(id) {
                NodeKind::PrimaryInput => queue.push_back(id),
                NodeKind::Cell(k) if k.is_sequential() => {
                    // A DFF is both a level-0 source (its Q output) and a
                    // sink for its D fanin; propagate as source immediately.
                    remaining[id.index()] = netlist.fanins(id).len();
                    queue.push_back(id);
                }
                // Zero-fanin combinational cells (tie cells) are immediately
                // ready sources at level 1.
                NodeKind::Cell(_) if netlist.fanins(id).is_empty() => {
                    levels[id.index()] = 1;
                    comb_done += 1;
                    topo_comb.push(id);
                    queue.push_back(id);
                }
                _ => remaining[id.index()] = netlist.fanins(id).len(),
            }
        }

        while let Some(id) = queue.pop_front() {
            for &f in netlist.fanouts(id) {
                let r = &mut remaining[f.index()];
                debug_assert!(*r > 0, "fanout count underflow at {f}");
                *r -= 1;
                if *r == 0 {
                    match netlist.kind(f) {
                        NodeKind::Cell(k) if !k.is_sequential() => {
                            let lvl = netlist
                                .fanins(f)
                                .iter()
                                .map(|&x| source_level(netlist, &levels, x))
                                .max()
                                .unwrap_or(0);
                            levels[f.index()] = lvl + 1;
                            comb_done += 1;
                            topo_comb.push(f);
                            queue.push_back(f);
                        }
                        NodeKind::PrimaryOutput => {
                            levels[f.index()] =
                                source_level(netlist, &levels, netlist.fanins(f)[0]);
                        }
                        // A DFF's D input is now fully determined; its level
                        // as a *source* stays 0, so nothing to propagate.
                        _ => {}
                    }
                }
            }
        }

        if comb_done != total_comb {
            let node = netlist
                .node_ids()
                .find(|&id| netlist.kind(id).is_combinational_cell() && remaining[id.index()] > 0)
                .map(|id| id.index())
                .unwrap_or(0);
            return Err(NetlistError::CombinationalCycle { node });
        }

        let max_level = levels.iter().copied().max().unwrap_or(0);
        Ok(Levelization {
            levels,
            topo_comb,
            max_level,
        })
    }

    /// The combinational level of a node (0 for PIs and DFFs-as-sources).
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// The deepest combinational level in the design (the logic depth).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Combinational cells in a valid evaluation order.
    ///
    /// Iterating this order and evaluating each cell from its fanins yields
    /// correct steady-state values for one clock cycle; DFF state updates
    /// happen separately at the clock edge.
    pub fn topo_combinational(&self) -> &[NodeId] {
        &self.topo_comb
    }

    /// All node levels as a dense slice, indexed by node id.
    ///
    /// Bulk consumers (the compiled simulator's instruction lowering, level
    /// histograms) read every entry; the slice form avoids a bounds-checked
    /// call per node.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// The "data depth" seen at a DFF's D pin: the level of its driver.
    ///
    /// This is the quantity arrival-time prediction is supervised on.
    pub fn dff_data_level(&self, netlist: &Netlist, dff: NodeId) -> u32 {
        debug_assert!(netlist.kind(dff).is_dff());
        source_level(netlist, &self.levels, netlist.fanins(dff)[0])
    }
}

/// Level of `id` viewed as a *driver*: DFF outputs count as level 0 even
/// though the DFF's D-side depth may be large.
fn source_level(netlist: &Netlist, levels: &[u32], id: NodeId) -> u32 {
    if netlist.kind(id).is_dff() {
        0
    } else {
        levels[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    #[test]
    fn dff_breaks_cycles() {
        // q = DFF(!q): a classic toggle flop; legal because the DFF breaks
        // the loop.
        let mut nl = Netlist::new("toggle");
        let a = nl.add_input("en"); // placeholder input to keep a PI around
        let _ = a;
        // Build with a forward reference: create inv with a temp fanin then
        // rebuild properly — instead create DFF after inv is impossible, so
        // wire inv from dff by adding dff first with inv as fanin requires
        // two-phase; emulate with a mux trick: dff feeding inv feeding dff is
        // not constructible in insertion order, so use the supported pattern:
        // dff.d driven by a gate added later is not allowed; instead verify a
        // DFF-broken loop via two flops in a ring.
        let mut nl2 = Netlist::new("ring");
        let seed = nl2.add_input("seed");
        let f1 = nl2.add_cell(CellKind::Dff, "r1", &[seed]).unwrap();
        let inv = nl2.add_cell(CellKind::Inv, "u1", &[f1]).unwrap();
        nl2.add_output("q", inv);
        let lv = Levelization::of(&nl2).unwrap();
        assert_eq!(lv.level(f1), 0);
        assert_eq!(lv.level(inv), 1);
        let _ = nl;
    }

    #[test]
    fn levels_are_topological() {
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell(CellKind::And2, "u1", &[a, b]).unwrap();
        let g2 = nl.add_cell(CellKind::Xor2, "u2", &[g1, b]).unwrap();
        let g3 = nl.add_cell(CellKind::Inv, "u3", &[g2]).unwrap();
        nl.add_output("y", g3);
        let lv = Levelization::of(&nl).unwrap();
        assert!(lv.level(g1) < lv.level(g2));
        assert!(lv.level(g2) < lv.level(g3));
        assert_eq!(lv.max_level(), 3);
        // topo order respects dependencies
        let order = lv.topo_combinational();
        let pos = |id| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(g1) < pos(g2));
        assert!(pos(g2) < pos(g3));
    }

    #[test]
    fn dff_data_level_reports_input_depth() {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let g1 = nl.add_cell(CellKind::Inv, "u1", &[a]).unwrap();
        let g2 = nl.add_cell(CellKind::Inv, "u2", &[g1]).unwrap();
        let ff = nl.add_cell(CellKind::Dff, "r0", &[g2]).unwrap();
        nl.add_output("q", ff);
        let lv = Levelization::of(&nl).unwrap();
        assert_eq!(lv.level(ff), 0);
        assert_eq!(lv.dff_data_level(&nl, ff), 2);
    }
}
