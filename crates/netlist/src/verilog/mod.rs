//! Structural (gate-level) Verilog export and import — the interchange
//! format a Design-Compiler-style flow writes and downstream signoff tools
//! read. Round-tripping through this format is property-tested against the
//! simulator.
//!
//! The frontend is a real tokenizer + recursive-descent parser (see
//! [`token`], [`parser`]) followed by an elaborator that enforces netlist
//! semantics: every net declared, at most one driver per net, every pin
//! connected exactly once. Failures are typed [`ParseError`]s carrying the
//! 1-based line/column and expected-vs-found.
//!
//! Accepted surface (DESIGN.md §14 has the full grammar):
//!
//! - `//` and `/* */` comments;
//! - ANSI (`module m (input a, output y);`) and non-ANSI
//!   (`module m (a, y); input a; output y;`) port declarations;
//! - multi-name declarations `wire n1, n2, n3;`;
//! - escaped identifiers `\q[0] ` (how synthesized bus bits round-trip);
//! - constant pin connections and assigns with `1'b0` / `1'b1`, elaborated
//!   to `TIEL_X1`/`TIEH_X1` cells;
//! - optional `.CK`/`.RN`/`.SN` control pins on `DFF_X1` instances,
//!   surfaced as [`ParsedDff`] metadata rather than graph edges.

mod error;
mod parser;
mod token;

pub use error::{ParseError, ParseErrorKind};

use std::collections::{HashMap, HashSet};

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId, NodeKind};

use parser::{parse_source, Ast, Dir, Item, Name, NetRef};

/// Pin names per cell kind, in the same order as the netlist's fanins.
fn pin_names(kind: CellKind) -> &'static [&'static str] {
    if kind.is_sequential() {
        return &["D"];
    }
    match kind.input_count() {
        0 => &[],
        1 => &["A"],
        2 => &["A", "B"],
        _ if kind == CellKind::Mux2 => &["A", "B", "S"],
        _ => &["A", "B", "C"],
    }
}

fn output_pin(kind: CellKind) -> &'static str {
    if kind.is_sequential() {
        "Q"
    } else {
        "Y"
    }
}

/// Optional control pins accepted (and recorded, not graphed) on DFFs.
const DFF_CONTROL_PINS: [&str; 3] = ["CK", "RN", "SN"];

/// How a parsed DFF initializes, derived from its reset-style control pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DffReset {
    /// No `RN`/`SN` pin: the flop powers up at 0 by convention.
    Implicit,
    /// An active-low reset pin (`.RN(...)`): clears to 0.
    ActiveLowReset,
    /// An active-low set pin (`.SN(...)`): presets to 1.
    ActiveLowSet,
}

impl DffReset {
    /// The register value this reset style establishes.
    pub fn initial_value(self) -> bool {
        matches!(self, DffReset::ActiveLowSet)
    }
}

/// Sequential metadata recovered from one `DFF_X1` instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedDff {
    /// The DFF's node in the parsed netlist.
    pub node: NodeId,
    /// The net connected to `.CK(...)`, when present.
    pub clock: Option<String>,
    /// Reset style derived from `.RN`/`.SN`.
    pub reset: DffReset,
}

/// A parsed module: the netlist graph plus the sequential metadata
/// (clock/reset bindings) that the graph itself does not carry.
#[derive(Debug, Clone)]
pub struct VerilogDesign {
    /// The elaborated netlist.
    pub netlist: Netlist,
    /// Per-DFF clock/reset info, in instantiation order.
    pub dffs: Vec<ParsedDff>,
}

/// Parses structural Verilog into a netlist.
///
/// Equivalent to [`parse_verilog_design`] with the sequential metadata
/// dropped.
///
/// # Errors
///
/// Returns [`NetlistError::Verilog`] wrapping a positioned [`ParseError`].
///
/// # Examples
///
/// ```
/// use moss_netlist::parse_verilog;
///
/// let nl = parse_verilog(
///     "module m (input a, output y);
///        wire n; // inverted
///        INV_X1 u1 (.A(a), .Y(n));
///        assign y = n;
///      endmodule",
/// )?;
/// assert_eq!(nl.cell_count(), 1);
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
pub fn parse_verilog(src: &str) -> Result<Netlist, NetlistError> {
    parse_verilog_design(src).map(|d| d.netlist)
}

/// Parses structural Verilog, keeping per-DFF clock/reset metadata.
///
/// # Errors
///
/// Returns [`NetlistError::Verilog`] wrapping a positioned [`ParseError`].
pub fn parse_verilog_design(src: &str) -> Result<VerilogDesign, NetlistError> {
    let ast = parse_source(src)?;
    elaborate(&ast)
}

/// What currently drives a net.
#[derive(Debug, Clone)]
enum Driver {
    /// Nothing yet.
    None,
    /// A netlist node: a primary input, or a cell's output pin.
    Node(NodeId),
    /// The right-hand side of an `assign` (resolved lazily, with cycle
    /// detection, because assigns may chain through output ports).
    Assign(NetRef),
}

#[derive(Debug)]
struct Net {
    driver: Driver,
    is_output_port: bool,
}

#[derive(Debug, Default)]
struct Ties {
    zero: Option<NodeId>,
    one: Option<NodeId>,
}

struct CellInst {
    node: NodeId,
    kind: CellKind,
    pins: HashMap<String, NetRef>,
}

fn redeclared(name: &Name) -> ParseError {
    ParseError::new(
        name.line,
        name.column,
        ParseErrorKind::Redeclared {
            name: name.text.clone(),
        },
    )
}

fn multiple_drivers(at: (u32, u32), net: &str) -> ParseError {
    ParseError::new(
        at.0,
        at.1,
        ParseErrorKind::MultipleDrivers { net: net.into() },
    )
}

/// Materializes the shared `TIEL_X1`/`TIEH_X1` cell for a constant.
fn tie(
    value: bool,
    netlist: &mut Netlist,
    ties: &mut Ties,
    declared: &mut HashSet<String>,
) -> NodeId {
    let slot = if value { &mut ties.one } else { &mut ties.zero };
    if let Some(id) = *slot {
        return id;
    }
    let base = if value { "const1" } else { "const0" };
    let mut name = base.to_owned();
    let mut k = 1u32;
    while !declared.insert(name.clone()) {
        name = format!("{base}_{k}");
        k += 1;
    }
    let kind = if value {
        CellKind::Tie1
    } else {
        CellKind::Tie0
    };
    let id = netlist
        .add_cell(kind, name, &[])
        .expect("tie cells have no input pins");
    *slot = Some(id);
    id
}

/// Resolves the node driving net `read`, chasing assign chains.
fn resolve_net(
    read: &Name,
    nets: &HashMap<String, Net>,
    netlist: &mut Netlist,
    ties: &mut Ties,
    declared: &mut HashSet<String>,
) -> Result<NodeId, ParseError> {
    let mut visited: HashSet<&str> = HashSet::new();
    let mut current: &str = &read.text;
    loop {
        let Some(net) = nets.get(current) else {
            return Err(ParseError::new(
                read.line,
                read.column,
                ParseErrorKind::UndeclaredNet {
                    net: current.to_owned(),
                },
            ));
        };
        match &net.driver {
            Driver::Node(id) => return Ok(*id),
            Driver::Assign(NetRef::Const { value, .. }) => {
                return Ok(tie(*value, netlist, ties, declared))
            }
            Driver::Assign(NetRef::Net(next)) => {
                if !visited.insert(current) {
                    return Err(ParseError::new(
                        read.line,
                        read.column,
                        ParseErrorKind::InvalidConnection {
                            message: format!("assign cycle through net '{current}'"),
                        },
                    ));
                }
                current = &next.text;
            }
            Driver::None => {
                return Err(ParseError::new(
                    read.line,
                    read.column,
                    ParseErrorKind::UndrivenNet {
                        net: current.to_owned(),
                    },
                ));
            }
        }
    }
}

fn resolve_ref(
    r: &NetRef,
    nets: &HashMap<String, Net>,
    netlist: &mut Netlist,
    ties: &mut Ties,
    declared: &mut HashSet<String>,
) -> Result<NodeId, ParseError> {
    match r {
        NetRef::Const { value, .. } => Ok(tie(*value, netlist, ties, declared)),
        NetRef::Net(n) => resolve_net(n, nets, netlist, ties, declared),
    }
}

fn elaborate(ast: &Ast) -> Result<VerilogDesign, NetlistError> {
    let lib: HashMap<&str, CellKind> = CellKind::ALL.iter().map(|&k| (k.lib_name(), k)).collect();

    // --- Namespace and port directions ----------------------------------
    // Verilog modules have a single declaration namespace: ports, wires,
    // and instance names may not collide.
    let mut declared: HashSet<String> = HashSet::new();
    let mut port_index: HashMap<&str, usize> = HashMap::new();
    let mut port_dirs: Vec<Option<Dir>> = ast.ports.iter().map(|p| p.dir).collect();
    for (i, p) in ast.ports.iter().enumerate() {
        if !declared.insert(p.name.text.clone()) {
            return Err(redeclared(&p.name).into());
        }
        port_index.insert(&p.name.text, i);
    }
    let mut wires: Vec<&Name> = Vec::new();
    for item in &ast.items {
        let Item::Decl { dir, names } = item else {
            continue;
        };
        for n in names {
            match dir {
                Dir::Wire => {
                    if !declared.insert(n.text.clone()) {
                        return Err(redeclared(n).into());
                    }
                    wires.push(n);
                }
                Dir::Input | Dir::Output => {
                    let dir_err = || {
                        ParseError::new(
                            n.line,
                            n.column,
                            ParseErrorKind::PortDirection {
                                port: n.text.clone(),
                            },
                        )
                    };
                    let Some(&i) = port_index.get(n.text.as_str()) else {
                        return Err(dir_err().into());
                    };
                    if port_dirs[i].is_some() {
                        return Err(dir_err().into());
                    }
                    port_dirs[i] = Some(*dir);
                }
            }
        }
    }
    for (p, d) in ast.ports.iter().zip(&port_dirs) {
        if d.is_none() {
            return Err(ParseError::new(
                p.name.line,
                p.name.column,
                ParseErrorKind::PortDirection {
                    port: p.name.text.clone(),
                },
            )
            .into());
        }
    }

    // --- Netlist skeleton: primary inputs, then net bookkeeping ---------
    let mut netlist = Netlist::new(ast.name.clone());
    let mut nets: HashMap<String, Net> = HashMap::new();
    for (p, d) in ast.ports.iter().zip(&port_dirs) {
        let driver = match d.expect("directions checked") {
            Dir::Input => Driver::Node(netlist.add_input(&p.name.text)),
            _ => Driver::None,
        };
        nets.insert(
            p.name.text.clone(),
            Net {
                driver,
                is_output_port: *d == Some(Dir::Output),
            },
        );
    }
    for w in &wires {
        nets.insert(
            w.text.clone(),
            Net {
                driver: Driver::None,
                is_output_port: false,
            },
        );
    }

    // --- Assigns and instances, in source order -------------------------
    let mut cells: Vec<CellInst> = Vec::new();
    for item in &ast.items {
        match item {
            Item::Decl { .. } => {}
            Item::Assign { lhs, rhs } => {
                let Some(net) = nets.get_mut(&lhs.text) else {
                    return Err(ParseError::new(
                        lhs.line,
                        lhs.column,
                        ParseErrorKind::UndeclaredNet {
                            net: lhs.text.clone(),
                        },
                    )
                    .into());
                };
                if !net.is_output_port {
                    return Err(ParseError::new(
                        lhs.line,
                        lhs.column,
                        ParseErrorKind::InvalidConnection {
                            message: format!(
                                "assign target '{}' is not an output port \
                                 (this frontend only assigns outputs)",
                                lhs.text
                            ),
                        },
                    )
                    .into());
                }
                if !matches!(net.driver, Driver::None) {
                    return Err(multiple_drivers((lhs.line, lhs.column), &lhs.text).into());
                }
                net.driver = Driver::Assign(rhs.clone());
            }
            Item::Instance(inst) => {
                let Some(&kind) = lib.get(inst.cell.text.as_str()) else {
                    return Err(ParseError::new(
                        inst.cell.line,
                        inst.cell.column,
                        ParseErrorKind::UnknownCell {
                            cell: inst.cell.text.clone(),
                        },
                    )
                    .into());
                };
                if !declared.insert(inst.name.text.clone()) {
                    return Err(redeclared(&inst.name).into());
                }
                let inputs = pin_names(kind);
                let out = output_pin(kind);
                let mut pins: HashMap<String, NetRef> = HashMap::new();
                for conn in &inst.pins {
                    let pname = conn.pin.text.as_str();
                    let known = inputs.contains(&pname)
                        || pname == out
                        || (kind.is_sequential() && DFF_CONTROL_PINS.contains(&pname));
                    if !known {
                        return Err(ParseError::new(
                            conn.pin.line,
                            conn.pin.column,
                            ParseErrorKind::UnknownPin {
                                cell: kind.lib_name().to_owned(),
                                pin: pname.to_owned(),
                            },
                        )
                        .into());
                    }
                    if pins.insert(pname.to_owned(), conn.net.clone()).is_some() {
                        return Err(ParseError::new(
                            conn.pin.line,
                            conn.pin.column,
                            ParseErrorKind::DuplicatePin {
                                pin: pname.to_owned(),
                            },
                        )
                        .into());
                    }
                }
                for required in inputs.iter().chain(std::iter::once(&out)) {
                    if !pins.contains_key(*required) {
                        return Err(ParseError::new(
                            inst.name.line,
                            inst.name.column,
                            ParseErrorKind::MissingPin {
                                cell: kind.lib_name().to_owned(),
                                pin: (*required).to_owned(),
                            },
                        )
                        .into());
                    }
                }
                if pins.contains_key("RN") && pins.contains_key("SN") {
                    return Err(ParseError::new(
                        inst.name.line,
                        inst.name.column,
                        ParseErrorKind::InvalidConnection {
                            message: format!(
                                "instance '{}' connects both RN and SN \
                                 (one reset style per flop)",
                                inst.name.text
                            ),
                        },
                    )
                    .into());
                }
                for cp in DFF_CONTROL_PINS {
                    if let Some(NetRef::Const { line, column, .. }) = pins.get(cp) {
                        return Err(ParseError::new(
                            *line,
                            *column,
                            ParseErrorKind::InvalidConnection {
                                message: format!("constant on control pin '{cp}'"),
                            },
                        )
                        .into());
                    }
                }
                let node = netlist.add_cell_unconnected(kind, &inst.name.text);
                // Register the output pin as this net's driver.
                match &pins[out] {
                    NetRef::Const { line, column, .. } => {
                        return Err(ParseError::new(
                            *line,
                            *column,
                            ParseErrorKind::InvalidConnection {
                                message: format!("constant on output pin '{out}'"),
                            },
                        )
                        .into());
                    }
                    NetRef::Net(n) => {
                        let Some(net) = nets.get_mut(&n.text) else {
                            return Err(ParseError::new(
                                n.line,
                                n.column,
                                ParseErrorKind::UndeclaredNet {
                                    net: n.text.clone(),
                                },
                            )
                            .into());
                        };
                        if !matches!(net.driver, Driver::None) {
                            return Err(multiple_drivers((n.line, n.column), &n.text).into());
                        }
                        net.driver = Driver::Node(node);
                    }
                }
                cells.push(CellInst { node, kind, pins });
            }
        }
    }

    // --- Connect pins (second pass: nets may be driven after first use) -
    let mut ties = Ties::default();
    let mut dffs: Vec<ParsedDff> = Vec::new();
    for c in &cells {
        for pin in pin_names(c.kind) {
            let src = resolve_ref(&c.pins[*pin], &nets, &mut netlist, &mut ties, &mut declared)?;
            netlist
                .connect_pin(c.node, src)
                .expect("pin arity pre-checked against the cell library");
        }
        if c.kind.is_sequential() {
            // Control nets must exist and be driven, but carry no edges:
            // the netlist graph models the D/Q data path only.
            for cp in DFF_CONTROL_PINS {
                if let Some(r) = c.pins.get(cp) {
                    resolve_ref(r, &nets, &mut netlist, &mut ties, &mut declared)?;
                }
            }
            let clock = match c.pins.get("CK") {
                Some(NetRef::Net(n)) => Some(n.text.clone()),
                _ => None,
            };
            let reset = if c.pins.contains_key("RN") {
                DffReset::ActiveLowReset
            } else if c.pins.contains_key("SN") {
                DffReset::ActiveLowSet
            } else {
                DffReset::Implicit
            };
            dffs.push(ParsedDff {
                node: c.node,
                clock,
                reset,
            });
        }
    }

    // --- Primary outputs, in port order ----------------------------------
    for (p, d) in ast.ports.iter().zip(&port_dirs) {
        if *d != Some(Dir::Output) {
            continue;
        }
        if matches!(nets[&p.name.text].driver, Driver::None) {
            return Err(ParseError::new(
                p.name.line,
                p.name.column,
                ParseErrorKind::UnassignedOutput {
                    port: p.name.text.clone(),
                },
            )
            .into());
        }
        let src = resolve_net(&p.name, &nets, &mut netlist, &mut ties, &mut declared)?;
        netlist.add_output(&p.name.text, src);
    }

    netlist.validate()?;
    Ok(VerilogDesign { netlist, dffs })
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Whether a name can be written at all (possibly escaped).
fn printable(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| !c.is_whitespace() && !c.is_control())
}

/// Last-resort rewrite for names Verilog cannot express even escaped.
fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect();
    if s.is_empty() {
        "n".to_owned()
    } else {
        s
    }
}

/// Claims `base` in `used`, suffixing `_1`, `_2`, ... on collision.
fn unique(base: String, used: &mut HashSet<String>) -> String {
    if used.insert(base.clone()) {
        return base;
    }
    let mut k = 1u32;
    loop {
        let cand = format!("{base}_{k}");
        if used.insert(cand.clone()) {
            return cand;
        }
        k += 1;
    }
}

/// Renders a name as a bare identifier when possible, escaped otherwise.
/// Escaped identifiers include their terminating space.
fn emit_name(name: &str) -> String {
    if token::is_simple_ident(name) {
        name.to_owned()
    } else {
        format!("\\{name} ")
    }
}

/// Renders the netlist as structural Verilog.
///
/// Net names are uniquified against the module's whole namespace, so a
/// primary input named `n_u1` cannot short against cell `u1`'s derived
/// output wire, and non-simple names (`q[0]`, `a.b`) are written as escaped
/// identifiers rather than lossily mangled — [`parse_verilog`] recovers the
/// original node names, preserving [`crate::canonical_hash`].
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist, write_verilog};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
/// nl.add_output("y", g);
/// let v = write_verilog(&nl);
/// assert!(v.contains("INV_X1 u1 (.A(a), .Y(n_u1));"));
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut used: HashSet<String> = HashSet::new();
    // Ports and instances keep their own names (uniquified only in the
    // degenerate duplicate-name case Verilog cannot express); derived
    // output wires always yield to them.
    let node_names: Vec<String> = netlist
        .node_ids()
        .map(|id| {
            let n = netlist.node(id).name();
            let base = if printable(n) {
                n.to_owned()
            } else {
                sanitize(n)
            };
            unique(base, &mut used)
        })
        .collect();
    let wire_names: Vec<Option<String>> = netlist
        .node_ids()
        .map(|id| {
            matches!(netlist.kind(id), NodeKind::Cell(_))
                .then(|| unique(format!("n_{}", node_names[id.index()]), &mut used))
        })
        .collect();
    let net_of = |id: NodeId| -> String {
        match netlist.kind(id) {
            NodeKind::Cell(_) => emit_name(
                wire_names[id.index()]
                    .as_deref()
                    .expect("every cell has a derived wire"),
            ),
            _ => emit_name(&node_names[id.index()]),
        }
    };

    let mut out = String::new();
    let ports: Vec<String> = netlist
        .node_ids()
        .filter_map(|id| match netlist.kind(id) {
            NodeKind::PrimaryInput => Some(format!("input {}", net_of(id))),
            NodeKind::PrimaryOutput => Some(format!("output {}", net_of(id))),
            NodeKind::Cell(_) => None,
        })
        .collect();
    out.push_str(&format!(
        "module {} ({});\n",
        emit_name(&sanitize(netlist.name())),
        ports.join(", ")
    ));
    // Wire declarations for every cell output.
    for id in netlist.node_ids() {
        if matches!(netlist.kind(id), NodeKind::Cell(_)) {
            out.push_str(&format!("  wire {};\n", net_of(id)));
        }
    }
    // Instances.
    for id in netlist.node_ids() {
        if let NodeKind::Cell(kind) = netlist.kind(id) {
            let mut pins: Vec<String> = netlist
                .fanins(id)
                .iter()
                .zip(pin_names(kind))
                .map(|(&f, pin)| format!(".{pin}({})", net_of(f)))
                .collect();
            pins.push(format!(".{}({})", output_pin(kind), net_of(id)));
            out.push_str(&format!(
                "  {} {} ({});\n",
                kind.lib_name(),
                emit_name(&node_names[id.index()]),
                pins.join(", ")
            ));
        }
    }
    // Output assigns.
    for id in netlist.primary_outputs() {
        out.push_str(&format!(
            "  assign {} = {};\n",
            net_of(id),
            net_of(netlist.fanins(id)[0])
        ));
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::canonical_hash;

    fn perr(src: &str) -> ParseError {
        match parse_verilog(src).unwrap_err() {
            NetlistError::Verilog(e) => e,
            other => panic!("expected a verilog parse error, got {other}"),
        }
    }

    fn sample() -> Netlist {
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell(CellKind::Nand2, "u1", &[a, b]).unwrap();
        let ff = nl.add_cell(CellKind::Dff, "r0", &[g1]).unwrap();
        let g2 = nl.add_cell(CellKind::Xor2, "u2", &[ff, a]).unwrap();
        nl.add_output("y", g2);
        nl.add_output("q", ff);
        nl
    }

    #[test]
    fn writes_expected_structure() {
        let v = write_verilog(&sample());
        assert!(v.starts_with("module demo (input a, input b, output y, output q);"));
        assert!(v.contains("NAND2_X1 u1 (.A(a), .B(b), .Y(n_u1));"));
        assert!(v.contains("DFF_X1 r0 (.D(n_u1), .Q(n_r0));"));
        assert!(v.contains("assign y = n_u2;"));
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn round_trip_is_node_exact_and_hash_equal() {
        let original = sample();
        let parsed = parse_verilog(&write_verilog(&original)).unwrap();
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.cell_count(), original.cell_count());
        assert_eq!(parsed.dff_count(), original.dff_count());
        // No placeholder leak: PI counts match exactly.
        assert_eq!(
            parsed.primary_inputs().len(),
            original.primary_inputs().len()
        );
        assert_eq!(
            parsed.primary_outputs().len(),
            original.primary_outputs().len()
        );
        assert!(parsed.validate().is_ok());
        assert_eq!(canonical_hash(&parsed), canonical_hash(&original));
        let lo = crate::level::Levelization::of(&original).unwrap();
        let lp = crate::level::Levelization::of(&parsed).unwrap();
        assert_eq!(lo.max_level(), lp.max_level());
    }

    #[test]
    fn dff_feedback_round_trips() {
        let mut nl = Netlist::new("fb");
        let en = nl.add_input("en");
        let ff = nl.add_cell(CellKind::Dff, "q", &[en]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u", &[ff]).unwrap();
        nl.replace_fanin(ff, 0, inv).unwrap();
        nl.add_output("out", ff);
        let parsed = parse_verilog(&write_verilog(&nl)).unwrap();
        assert_eq!(parsed.dff_count(), 1);
        assert!(crate::level::Levelization::of(&parsed).is_ok());
        assert_eq!(canonical_hash(&parsed), canonical_hash(&nl));
    }

    #[test]
    fn colliding_names_round_trip_without_shorting() {
        // A PI literally named like cell u1's derived wire, plus two PIs the
        // old lossy escape() used to merge.
        let mut nl = Netlist::new("c");
        let p = nl.add_input("n_u1");
        let x = nl.add_input("a.b");
        let y = nl.add_input("a_b");
        let g = nl.add_cell(CellKind::Inv, "u1", &[x]).unwrap();
        let h = nl.add_cell(CellKind::Xor2, "u2", &[g, p]).unwrap();
        let k = nl.add_cell(CellKind::And2, "u3", &[h, y]).unwrap();
        nl.add_output("o", k);
        let text = write_verilog(&nl);
        let parsed = parse_verilog(&text).unwrap();
        assert_eq!(parsed.primary_inputs().len(), 3);
        assert_eq!(parsed.cell_count(), nl.cell_count());
        assert_eq!(canonical_hash(&parsed), canonical_hash(&nl));
        // The XOR must read the PI, not u1's output wire.
        let u2 = parsed.find("u2").unwrap();
        let pi = parsed.find("n_u1").unwrap();
        assert!(parsed.fanins(u2).contains(&pi));
    }

    #[test]
    fn escaped_identifiers_round_trip_bus_bits() {
        let mut nl = Netlist::new("bus");
        let q0 = nl.add_input("q[0]");
        let q1 = nl.add_input("q[1]");
        let g = nl.add_cell(CellKind::Or2, "u_or2_0", &[q0, q1]).unwrap();
        nl.add_output("y[0]", g);
        let text = write_verilog(&nl);
        assert!(text.contains("\\q[0] "), "{text}");
        let parsed = parse_verilog(&text).unwrap();
        assert_eq!(canonical_hash(&parsed), canonical_hash(&nl));
        assert!(parsed.find("q[0]").is_some());
    }

    #[test]
    fn multiple_drivers_is_a_typed_error() {
        let e = perr("module m (input a, output y);\n  wire n;\n  INV_X1 u1 (.A(a), .Y(n));\n  INV_X1 u2 (.A(a), .Y(n));\n  assign y = n;\nendmodule");
        assert!(matches!(
            e.kind,
            ParseErrorKind::MultipleDrivers { ref net } if net == "n"
        ));
        assert_eq!(e.line, 4);
        // An instance output shorting an input port is the same error.
        let e = perr(
            "module m (input a, output y);\n  INV_X1 u1 (.A(a), .Y(a));\n  assign y = a;\nendmodule",
        );
        assert!(matches!(
            e.kind,
            ParseErrorKind::MultipleDrivers { ref net } if net == "a"
        ));
        // So is assigning an already-driven output twice.
        let e = perr(
            "module m (input a, output y);\n  INV_X1 u1 (.A(a), .Y(y));\n  assign y = a;\nendmodule",
        );
        assert!(matches!(e.kind, ParseErrorKind::MultipleDrivers { .. }));
    }

    #[test]
    fn duplicate_pin_is_a_typed_error() {
        let e = perr(
            "module m (input a, input b, output y);\n  wire n;\n  NAND2_X1 u1 (.A(a), .A(b), .Y(n));\n  assign y = n;\nendmodule",
        );
        assert!(matches!(
            e.kind,
            ParseErrorKind::DuplicatePin { ref pin } if pin == "A"
        ));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn comments_and_nonansi_ports_parse() {
        let nl = parse_verilog(
            "// header comment\n\
             /* block\n   comment */\n\
             module m (a, b, y);\n\
               input a, b;\n\
               output y;\n\
               wire n1, n2;\n\
               AND2_X1 u1 (.A(a), .B(b), .Y(n1)); // inline\n\
               INV_X1 u2 (.A(n1), .Y(n2));\n\
               assign y = n2;\n\
             endmodule",
        )
        .unwrap();
        assert_eq!(nl.primary_inputs().len(), 2);
        assert_eq!(nl.primary_outputs().len(), 1);
        assert_eq!(nl.cell_count(), 2);
    }

    #[test]
    fn constants_elaborate_to_tie_cells() {
        let nl = parse_verilog(
            "module m (input a, output y, output z);\n\
               wire n;\n\
               NAND2_X1 u1 (.A(a), .B(1'b1), .Y(n));\n\
               assign y = n;\n\
               assign z = 1'b0;\n\
             endmodule",
        )
        .unwrap();
        assert_eq!(nl.cell_count(), 3); // u1 + const1 + const0
        let t1 = nl.find("const1").unwrap();
        assert_eq!(nl.kind(t1), NodeKind::Cell(CellKind::Tie1));
        let u1 = nl.find("u1").unwrap();
        assert_eq!(nl.fanins(u1)[1], t1);
        let t0 = nl.find("const0").unwrap();
        assert_eq!(nl.kind(t0), NodeKind::Cell(CellKind::Tie0));
        let z = nl.primary_outputs()[1];
        assert_eq!(nl.fanins(z), [t0]);
        // A netlist with tie cells survives the round trip.
        let again = parse_verilog(&write_verilog(&nl)).unwrap();
        assert_eq!(canonical_hash(&again), canonical_hash(&nl));
    }

    #[test]
    fn dff_control_pins_are_recorded_not_graphed() {
        let d = parse_verilog_design(
            "module m (input d, input clk, input rst, output q);\n\
               DFF_X1 r0 (.D(d), .CK(clk), .RN(rst), .Q(q));\n\
             endmodule",
        )
        .unwrap();
        assert_eq!(d.dffs.len(), 1);
        assert_eq!(d.dffs[0].clock.as_deref(), Some("clk"));
        assert_eq!(d.dffs[0].reset, DffReset::ActiveLowReset);
        assert!(!d.dffs[0].reset.initial_value());
        let ff = d.dffs[0].node;
        // Only the D pin is a graph edge.
        assert_eq!(d.netlist.fanins(ff).len(), 1);
        let clk = d.netlist.find("clk").unwrap();
        assert!(d.netlist.fanouts(clk).is_empty());

        let d = parse_verilog_design(
            "module m (input d, input clk, input set, output q);\n\
               DFF_X1 r0 (.D(d), .CK(clk), .SN(set), .Q(q));\n\
             endmodule",
        )
        .unwrap();
        assert_eq!(d.dffs[0].reset, DffReset::ActiveLowSet);
        assert!(d.dffs[0].reset.initial_value());

        let e = perr(
            "module m (input d, input r, input s, output q);\n\
               DFF_X1 r0 (.D(d), .RN(r), .SN(s), .Q(q));\n\
             endmodule",
        );
        assert!(matches!(e.kind, ParseErrorKind::InvalidConnection { .. }));
        let e = perr(
            "module m (input d, output q);\n\
               DFF_X1 r0 (.D(d), .CK(1'b0), .Q(q));\n\
             endmodule",
        );
        assert!(matches!(e.kind, ParseErrorKind::InvalidConnection { .. }));
    }

    #[test]
    fn semantic_errors_are_typed_and_positioned() {
        let e = perr("module m (input a, output y);\n  FOO_X1 u (.A(a), .Y(y));\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::UnknownCell { ref cell } if cell == "FOO_X1"));
        assert_eq!((e.line, e.column), (2, 3));

        let e = perr("module m (input a, output y);\n  INV_X1 u (.A(a), .Z(y));\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::UnknownPin { ref pin, .. } if pin == "Z"));

        let e = perr("module m (input a, output y);\n  INV_X1 u (.Y(y));\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::MissingPin { ref pin, .. } if pin == "A"));

        let e = perr("module m (input a, output y);\n  INV_X1 u (.A(ghost), .Y(y));\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::UndeclaredNet { ref net } if net == "ghost"));

        let e =
            perr("module m (input a, output y);\n  wire w;\n  INV_X1 u (.A(w), .Y(y));\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::UndrivenNet { ref net } if net == "w"));

        let e = perr("module m (input a, output y);\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::UnassignedOutput { ref port } if port == "y"));

        let e = perr("module m (input a, output y);\n  wire a;\n  assign y = a;\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::Redeclared { ref name } if name == "a"));

        let e = perr("module m (a, y);\n  output y;\n  assign y = a;\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::PortDirection { ref port } if port == "a"));

        let e = perr("module m (output y, output z);\n  assign y = z;\n  assign z = y;\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::InvalidConnection { .. }));
        assert!(e.to_string().contains("cycle"), "{e}");

        let e = perr("module m (input a, output y);\n  wire n;\n  assign n = a;\nendmodule");
        assert!(matches!(e.kind, ParseErrorKind::InvalidConnection { .. }));
    }

    #[test]
    fn output_driven_directly_by_an_instance_pin() {
        let nl =
            parse_verilog("module m (input a, output y);\n  INV_X1 u1 (.A(a), .Y(y));\nendmodule")
                .unwrap();
        let y = nl.primary_outputs()[0];
        let u1 = nl.find("u1").unwrap();
        assert_eq!(nl.fanins(y), [u1]);
    }

    #[test]
    fn output_port_is_readable_through_its_assign() {
        let nl = parse_verilog(
            "module m (input a, output y, output z);\n\
               wire n;\n\
               INV_X1 u1 (.A(a), .Y(n));\n\
               assign y = n;\n\
               INV_X1 u2 (.A(y), .Y(z));\n\
             endmodule",
        )
        .unwrap();
        let u1 = nl.find("u1").unwrap();
        let u2 = nl.find("u2").unwrap();
        assert_eq!(nl.fanins(u2), [u1]);
    }
}
