//! Structured parse errors for the gate-level Verilog frontend.
//!
//! Every failure carries the 1-based line/column where it was detected and
//! a typed [`ParseErrorKind`] — expected-vs-found for syntax, and dedicated
//! kinds for the semantic checks (multiple drivers, duplicate pins,
//! undriven nets) that a netlist linter needs to report precisely.

use std::error::Error;
use std::fmt;

/// A parse failure with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the offending token or character.
    pub line: u32,
    /// 1-based source column of the offending token or character.
    pub column: u32,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl ParseError {
    /// Creates an error at a source position.
    pub fn new(line: u32, column: u32, kind: ParseErrorKind) -> ParseError {
        ParseError { line, column, kind }
    }
}

/// The typed failure categories of the Verilog frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The character stream could not be tokenized (stray character,
    /// unterminated block comment, unsupported literal, empty escaped
    /// identifier).
    Lex {
        /// Human-readable description of the lexical problem.
        message: String,
    },
    /// The token stream diverged from the grammar.
    UnexpectedToken {
        /// What the grammar required here.
        expected: String,
        /// The token actually found (`"end of input"` at EOF).
        found: String,
    },
    /// An instance referenced a cell that is not in the library.
    UnknownCell {
        /// The unrecognized cell name.
        cell: String,
    },
    /// A pin connection named a pin the cell does not have.
    UnknownPin {
        /// The library cell.
        cell: String,
        /// The unrecognized pin.
        pin: String,
    },
    /// The same pin was connected more than once on one instance.
    DuplicatePin {
        /// The doubly-connected pin.
        pin: String,
    },
    /// A required pin was left unconnected.
    MissingPin {
        /// The library cell.
        cell: String,
        /// The missing pin.
        pin: String,
    },
    /// A net has more than one driver (two instance outputs, an instance
    /// output shorting an input port, or a doubly-assigned output).
    MultipleDrivers {
        /// The multiply-driven net.
        net: String,
    },
    /// A net is read but nothing drives it.
    UndrivenNet {
        /// The undriven net.
        net: String,
    },
    /// A net is referenced but never declared.
    UndeclaredNet {
        /// The undeclared net.
        net: String,
    },
    /// A name was declared twice (two nets, two instances, an instance
    /// shadowing a port, ...).
    Redeclared {
        /// The reused name.
        name: String,
    },
    /// A port never received a direction, or received two.
    PortDirection {
        /// The port.
        port: String,
    },
    /// An output port ended up with no driver.
    UnassignedOutput {
        /// The undriven output port.
        port: String,
    },
    /// A structurally valid but meaningless connection (a constant on an
    /// output or control pin, an assign targeting a non-output, an assign
    /// cycle, conflicting RN/SN reset pins).
    InvalidConnection {
        /// Human-readable description.
        message: String,
    },
    /// A recognized Verilog construct this gate-level frontend does not
    /// model (bus ranges, a second module, primitives, ...).
    Unsupported {
        /// The unsupported construct.
        construct: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: ", self.line, self.column)?;
        match &self.kind {
            ParseErrorKind::Lex { message } => write!(f, "{message}"),
            ParseErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::UnknownCell { cell } => write!(f, "unknown cell '{cell}'"),
            ParseErrorKind::UnknownPin { cell, pin } => {
                write!(f, "cell {cell} has no pin '{pin}'")
            }
            ParseErrorKind::DuplicatePin { pin } => {
                write!(f, "pin '{pin}' connected more than once")
            }
            ParseErrorKind::MissingPin { cell, pin } => {
                write!(f, "cell {cell} is missing a connection for pin '{pin}'")
            }
            ParseErrorKind::MultipleDrivers { net } => {
                write!(f, "net '{net}' has more than one driver")
            }
            ParseErrorKind::UndrivenNet { net } => write!(f, "net '{net}' is never driven"),
            ParseErrorKind::UndeclaredNet { net } => write!(f, "net '{net}' is not declared"),
            ParseErrorKind::Redeclared { name } => write!(f, "name '{name}' declared twice"),
            ParseErrorKind::PortDirection { port } => {
                write!(
                    f,
                    "port '{port}' needs exactly one input/output declaration"
                )
            }
            ParseErrorKind::UnassignedOutput { port } => {
                write!(f, "output '{port}' is never driven")
            }
            ParseErrorKind::InvalidConnection { message } => write!(f, "{message}"),
            ParseErrorKind::Unsupported { construct } => {
                write!(f, "unsupported construct: {construct}")
            }
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position_and_expectation() {
        let e = ParseError::new(
            3,
            14,
            ParseErrorKind::UnexpectedToken {
                expected: "';'".into(),
                found: "identifier 'foo'".into(),
            },
        );
        let s = e.to_string();
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("column 14"), "{s}");
        assert!(s.contains("expected ';'"), "{s}");
        assert!(s.contains("identifier 'foo'"), "{s}");
    }

    #[test]
    fn typed_kinds_are_matchable() {
        let e = ParseError::new(1, 1, ParseErrorKind::MultipleDrivers { net: "n1".into() });
        assert!(matches!(
            e.kind,
            ParseErrorKind::MultipleDrivers { ref net } if net == "n1"
        ));
    }
}
