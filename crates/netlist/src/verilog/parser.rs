//! Recursive-descent parser: token stream → module AST.
//!
//! The grammar is the structural subset a Design-Compiler-class tool
//! writes and ISCAS/ITC-style benchmark distributions use:
//!
//! ```text
//! source   := 'module' ident '(' ports? ')' ';' item* 'endmodule'
//! ports    := port (',' port)*
//! port     := ('input' | 'output')? ident          // ANSI or plain style
//! item     := ('input'|'output'|'wire') ident (',' ident)* ';'
//!           | 'assign' ident '=' (ident | const) ';'
//!           | ident ident '(' conn (',' conn)* ')' ';'
//! conn     := '.' ident '(' (ident | const) ')'
//! const    := 1'b0 | 1'b1
//! ```
//!
//! `consume_*` combinators return `Option` and never fail; `expect_*`
//! combinators produce a positioned expected-vs-found [`ParseError`].

use super::error::{ParseError, ParseErrorKind};
use super::token::{lex, Spanned, Token};

/// An identifier with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Name {
    /// The identifier text.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
}

/// The right-hand side of a pin connection or assign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetRef {
    /// A named net.
    Net(Name),
    /// A constant bit (`1'b0` / `1'b1`).
    Const {
        /// The bit value.
        value: bool,
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        column: u32,
    },
}

/// Direction of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `wire`
    Wire,
}

/// One module-body item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// `input a, b;` / `output y;` / `wire n1, n2;`
    Decl {
        /// The declared direction.
        dir: Dir,
        /// Declared names, in source order.
        names: Vec<Name>,
    },
    /// `assign lhs = rhs;`
    Assign {
        /// The assigned net (an output port in this frontend).
        lhs: Name,
        /// The driving net or constant.
        rhs: NetRef,
    },
    /// `CELL inst (.PIN(net), ...);`
    Instance(Instance),
}

/// One cell instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The library cell name (e.g. `NAND2_X1`).
    pub cell: Name,
    /// The instance name.
    pub name: Name,
    /// Named pin connections, in source order.
    pub pins: Vec<PinConn>,
}

/// One named pin connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinConn {
    /// The pin name (e.g. `A`, `Y`, `CK`).
    pub pin: Name,
    /// The connected net or constant.
    pub net: NetRef,
}

/// One port-list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// The port name.
    pub name: Name,
    /// ANSI-style inline direction, if given in the port list.
    pub dir: Option<Dir>,
}

/// The parsed module, before elaboration into a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ast {
    /// The module name.
    pub name: String,
    /// Port list, in source order.
    pub ports: Vec<Port>,
    /// Body items, in source order.
    pub items: Vec<Item>,
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    end_line: u32,
    end_column: u32,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Position for diagnostics at the current token (or EOF).
    fn here(&self) -> (u32, u32) {
        self.peek()
            .map_or((self.end_line, self.end_column), |s| (s.line, s.column))
    }

    fn found(&self) -> String {
        self.peek()
            .map_or_else(|| "end of input".into(), |s| s.token.describe())
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        let (line, column) = self.here();
        ParseError::new(
            line,
            column,
            ParseErrorKind::UnexpectedToken {
                expected: expected.into(),
                found: self.found(),
            },
        )
    }

    /// Consumes the next token when it equals `token`.
    fn consume(&mut self, token: &Token) -> bool {
        if self.peek().is_some_and(|s| s.token == *token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes an identifier, if one is next.
    fn consume_ident(&mut self) -> Option<Name> {
        if let Some(Spanned {
            token: Token::Ident(_),
            ..
        }) = self.peek()
        {
            let s = self.advance().expect("peeked");
            let Token::Ident(text) = s.token else {
                unreachable!()
            };
            Some(Name {
                text,
                line: s.line,
                column: s.column,
            })
        } else {
            None
        }
    }

    /// Requires the next token to equal `token`.
    fn expect(&mut self, token: &Token, expected: &str) -> Result<(), ParseError> {
        if self.consume(token) {
            Ok(())
        } else {
            Err(self.unexpected(expected))
        }
    }

    /// Requires an identifier next.
    fn expect_ident(&mut self, expected: &str) -> Result<Name, ParseError> {
        self.consume_ident()
            .ok_or_else(|| self.unexpected(expected))
    }

    /// Requires an identifier or constant next.
    fn expect_net_ref(&mut self, expected: &str) -> Result<NetRef, ParseError> {
        if let Some(name) = self.consume_ident() {
            return Ok(NetRef::Net(name));
        }
        if let Some(Spanned {
            token: Token::Const(_),
            ..
        }) = self.peek()
        {
            let s = self.advance().expect("peeked");
            let Token::Const(value) = s.token else {
                unreachable!()
            };
            return Ok(NetRef::Const {
                value,
                line: s.line,
                column: s.column,
            });
        }
        Err(self.unexpected(expected))
    }

    fn parse_ports(&mut self) -> Result<Vec<Port>, ParseError> {
        let mut ports = Vec::new();
        if self.consume(&Token::RParen) {
            return Ok(ports);
        }
        loop {
            let dir = if self.consume(&Token::Input) {
                Some(Dir::Input)
            } else if self.consume(&Token::Output) {
                Some(Dir::Output)
            } else {
                None
            };
            let name = self.expect_ident("a port name")?;
            ports.push(Port { name, dir });
            if self.consume(&Token::Comma) {
                continue;
            }
            self.expect(&Token::RParen, "')' or ',' in the port list")?;
            return Ok(ports);
        }
    }

    fn parse_decl(&mut self, dir: Dir) -> Result<Item, ParseError> {
        let mut names = vec![self.expect_ident("a declared name")?];
        while self.consume(&Token::Comma) {
            names.push(self.expect_ident("a declared name")?);
        }
        self.expect(&Token::Semi, "';' after the declaration")?;
        Ok(Item::Decl { dir, names })
    }

    fn parse_assign(&mut self) -> Result<Item, ParseError> {
        let lhs = self.expect_ident("the assigned net")?;
        self.expect(&Token::Equals, "'=' in the assign")?;
        let rhs = self.expect_net_ref("a driving net or 1'b0/1'b1")?;
        self.expect(&Token::Semi, "';' after the assign")?;
        Ok(Item::Assign { lhs, rhs })
    }

    fn parse_instance(&mut self) -> Result<Item, ParseError> {
        let cell = self.expect_ident("a cell name")?;
        let name = self.expect_ident("an instance name")?;
        self.expect(&Token::LParen, "'(' opening the pin connections")?;
        let mut pins = Vec::new();
        if !self.consume(&Token::RParen) {
            loop {
                self.expect(&Token::Dot, "'.' starting a named pin connection")?;
                let pin = self.expect_ident("a pin name")?;
                self.expect(&Token::LParen, "'(' after the pin name")?;
                let net = self.expect_net_ref("a net name or 1'b0/1'b1")?;
                self.expect(&Token::RParen, "')' closing the pin connection")?;
                pins.push(PinConn { pin, net });
                if self.consume(&Token::Comma) {
                    continue;
                }
                self.expect(&Token::RParen, "')' or ',' after a pin connection")?;
                break;
            }
        }
        self.expect(&Token::Semi, "';' after the instance")?;
        Ok(Item::Instance(Instance { cell, name, pins }))
    }

    fn parse_module(&mut self) -> Result<Ast, ParseError> {
        self.expect(&Token::Module, "keyword 'module'")?;
        let name = self.expect_ident("the module name")?;
        self.expect(&Token::LParen, "'(' opening the port list")?;
        let ports = self.parse_ports()?;
        self.expect(&Token::Semi, "';' after the port list")?;

        let mut items = Vec::new();
        loop {
            if self.consume(&Token::Endmodule) {
                break;
            }
            let item = if self.consume(&Token::Input) {
                self.parse_decl(Dir::Input)?
            } else if self.consume(&Token::Output) {
                self.parse_decl(Dir::Output)?
            } else if self.consume(&Token::Wire) {
                self.parse_decl(Dir::Wire)?
            } else if self.consume(&Token::Assign) {
                self.parse_assign()?
            } else if matches!(
                self.peek(),
                Some(Spanned {
                    token: Token::Ident(_),
                    ..
                })
            ) {
                self.parse_instance()?
            } else {
                return Err(self.unexpected("a declaration, assign, instance, or 'endmodule'"));
            };
            items.push(item);
        }

        if let Some(next) = self.peek() {
            let err = if next.token == Token::Module {
                ParseError::new(
                    next.line,
                    next.column,
                    ParseErrorKind::Unsupported {
                        construct: "more than one module per source".into(),
                    },
                )
            } else {
                self.unexpected("end of input after 'endmodule'")
            };
            return Err(err);
        }
        Ok(Ast {
            name: name.text,
            ports,
            items,
        })
    }
}

/// Parses `src` into an [`Ast`].
///
/// # Errors
///
/// Returns the first lexical or syntactic [`ParseError`], positioned at
/// the offending token.
pub fn parse_source(src: &str) -> Result<Ast, ParseError> {
    let tokens = lex(src)?;
    // EOF diagnostics point one past the last token.
    let (end_line, end_column) = tokens
        .last()
        .map_or((1, 1), |s| (s.line, s.column.saturating_add(1)));
    let mut parser = Parser {
        tokens,
        pos: 0,
        end_line,
        end_column,
    };
    parser.parse_module()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ansi_and_plain_ports() {
        let ansi = parse_source("module m (input a, output y); endmodule").unwrap();
        assert_eq!(ansi.ports.len(), 2);
        assert_eq!(ansi.ports[0].dir, Some(Dir::Input));
        let plain = parse_source("module m (a, y); input a; output y; endmodule").unwrap();
        assert_eq!(plain.ports[0].dir, None);
        assert_eq!(plain.items.len(), 2);
    }

    #[test]
    fn parses_multi_name_declarations() {
        let ast = parse_source("module m (); wire a, b, c; endmodule").unwrap();
        let Item::Decl { dir, names } = &ast.items[0] else {
            panic!("expected a decl");
        };
        assert_eq!(*dir, Dir::Wire);
        let texts: Vec<&str> = names.iter().map(|n| n.text.as_str()).collect();
        assert_eq!(texts, ["a", "b", "c"]);
    }

    #[test]
    fn parses_instances_with_constants() {
        let ast = parse_source(
            "module m (input a, output y);
               wire n;
               NAND2_X1 u1 (.A(a), .B(1'b1), .Y(n));
               assign y = n;
             endmodule",
        )
        .unwrap();
        let Item::Instance(inst) = &ast.items[1] else {
            panic!("expected an instance");
        };
        assert_eq!(inst.cell.text, "NAND2_X1");
        assert_eq!(inst.pins.len(), 3);
        assert!(matches!(
            inst.pins[1].net,
            NetRef::Const { value: true, .. }
        ));
    }

    #[test]
    fn missing_semicolon_reports_position_and_expectation() {
        let err = parse_source("module m (input a)\n  wire w;\nendmodule").unwrap_err();
        assert_eq!(err.line, 2);
        let s = err.to_string();
        assert!(s.contains("';'"), "{s}");
        assert!(s.contains("keyword 'wire'"), "{s}");
    }

    #[test]
    fn truncated_source_reports_end_of_input() {
        let err = parse_source("module m (input a); INV_X1 u1 (.A(a), ").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::UnexpectedToken { ref found, .. } if found == "end of input"
        ));
    }

    #[test]
    fn second_module_is_unsupported() {
        let err = parse_source("module a (); endmodule\nmodule b (); endmodule").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Unsupported { .. }));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn positional_pin_connections_are_rejected() {
        let err = parse_source("module m (input a); INV_X1 u1 (a, y); endmodule").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedToken { .. }));
        assert!(err.to_string().contains("'.'"), "{err}");
    }
}
