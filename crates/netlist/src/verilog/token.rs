//! Tokenizer for gate-level structural Verilog.
//!
//! Produces a typed token stream with 1-based line/column spans. Handles
//! the lexical surface real benchmark netlists actually use: `//` and
//! `/* */` comments, simple and escaped (`\any[chars] `) identifiers, and
//! the single-bit constants `1'b0` / `1'b1`.

use super::error::{ParseError, ParseErrorKind};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A simple or escaped identifier (escaped identifiers are stored
    /// without the leading backslash or terminating whitespace).
    Ident(String),
    /// A single-bit constant: `1'b0` (false) or `1'b1` (true).
    Const(bool),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Equals,
    /// `module`
    Module,
    /// `endmodule`
    Endmodule,
    /// `input`
    Input,
    /// `output`
    Output,
    /// `wire`
    Wire,
    /// `assign`
    Assign,
}

impl Token {
    /// Human-readable description for expected-vs-found diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier '{s}'"),
            Token::Const(b) => format!("constant 1'b{}", u8::from(*b)),
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::Semi => "';'".into(),
            Token::Comma => "','".into(),
            Token::Dot => "'.'".into(),
            Token::Equals => "'='".into(),
            Token::Module => "keyword 'module'".into(),
            Token::Endmodule => "keyword 'endmodule'".into(),
            Token::Input => "keyword 'input'".into(),
            Token::Output => "keyword 'output'".into(),
            Token::Wire => "keyword 'wire'".into(),
            Token::Assign => "keyword 'assign'".into(),
        }
    }
}

/// A token plus the 1-based position of its first character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
}

/// Reserved words this frontend refuses as bare identifiers. Names that
/// collide with these must be written as escaped identifiers.
pub fn keyword(word: &str) -> Option<Token> {
    match word {
        "module" => Some(Token::Module),
        "endmodule" => Some(Token::Endmodule),
        "input" => Some(Token::Input),
        "output" => Some(Token::Output),
        "wire" => Some(Token::Wire),
        "assign" => Some(Token::Assign),
        _ => None,
    }
}

/// Whether `name` can be emitted as a bare (unescaped) identifier.
pub fn is_simple_ident(name: &str) -> bool {
    let mut chars = name.chars();
    let leading_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    leading_ok
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && keyword(name).is_none()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn err(&self, line: u32, column: u32, message: String) -> ParseError {
        ParseError::new(line, column, ParseErrorKind::Lex { message })
    }
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`ParseError`] with [`ParseErrorKind::Lex`] on stray
/// characters, unterminated block comments, non-single-bit literals, and
/// empty escaped identifiers; bus-range brackets get a dedicated
/// [`ParseErrorKind::Unsupported`] diagnostic.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        column: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = lx.peek() {
        let (line, column) = (lx.line, lx.column);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
            }
            b'/' if lx.peek2() == Some(b'/') => {
                while let Some(c) = lx.peek() {
                    if c == b'\n' {
                        break;
                    }
                    lx.bump();
                }
            }
            b'/' if lx.peek2() == Some(b'*') => {
                lx.bump();
                lx.bump();
                let mut closed = false;
                while let Some(c) = lx.bump() {
                    if c == b'*' && lx.peek() == Some(b'/') {
                        lx.bump();
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(lx.err(line, column, "unterminated block comment".into()));
                }
            }
            b'(' | b')' | b';' | b',' | b'.' | b'=' => {
                lx.bump();
                let token = match b {
                    b'(' => Token::LParen,
                    b')' => Token::RParen,
                    b';' => Token::Semi,
                    b',' => Token::Comma,
                    b'.' => Token::Dot,
                    _ => Token::Equals,
                };
                out.push(Spanned {
                    token,
                    line,
                    column,
                });
            }
            b'[' | b']' => {
                return Err(ParseError::new(
                    line,
                    column,
                    ParseErrorKind::Unsupported {
                        construct: "bus ranges / bit selects (flatten buses to scalar nets, \
                                    or use escaped identifiers like `\\q[0] `)"
                            .into(),
                    },
                ));
            }
            b'\\' => {
                lx.bump();
                let start = lx.pos;
                while let Some(c) = lx.peek() {
                    if c.is_ascii_whitespace() {
                        break;
                    }
                    lx.bump();
                }
                if lx.pos == start {
                    return Err(lx.err(line, column, "empty escaped identifier".into()));
                }
                // Escaped identifiers are raw bytes up to whitespace; the
                // source is UTF-8, so the slice is too.
                let name = String::from_utf8_lossy(&lx.src[start..lx.pos]).into_owned();
                out.push(Spanned {
                    token: Token::Ident(name),
                    line,
                    column,
                });
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = lx.pos;
                while let Some(c) = lx.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                        lx.bump();
                    } else {
                        break;
                    }
                }
                let word = std::str::from_utf8(&lx.src[start..lx.pos])
                    .expect("ascii ident bytes are utf-8");
                let token = keyword(word).unwrap_or_else(|| Token::Ident(word.to_owned()));
                out.push(Spanned {
                    token,
                    line,
                    column,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = lx.pos;
                while let Some(c) = lx.peek() {
                    if c.is_ascii_alphanumeric() || c == b'\'' || c == b'_' {
                        lx.bump();
                    } else {
                        break;
                    }
                }
                let lit = std::str::from_utf8(&lx.src[start..lx.pos])
                    .expect("ascii literal bytes are utf-8");
                let token = match lit {
                    "1'b0" => Token::Const(false),
                    "1'b1" => Token::Const(true),
                    _ => {
                        return Err(lx.err(
                            line,
                            column,
                            format!("unsupported literal '{lit}' (only 1'b0 and 1'b1)"),
                        ))
                    }
                };
                out.push(Spanned {
                    token,
                    line,
                    column,
                });
            }
            _ => {
                let ch = src[lx.pos..].chars().next().unwrap_or('?');
                return Err(lx.err(line, column, format!("unexpected character '{ch}'")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_the_full_surface() {
        let got = toks("module m (a); // line comment\n/* block\ncomment */ wire w; \\q[0]  1'b0 1'b1 endmodule");
        assert_eq!(
            got,
            vec![
                Token::Module,
                Token::Ident("m".into()),
                Token::LParen,
                Token::Ident("a".into()),
                Token::RParen,
                Token::Semi,
                Token::Wire,
                Token::Ident("w".into()),
                Token::Semi,
                Token::Ident("q[0]".into()),
                Token::Const(false),
                Token::Const(true),
                Token::Endmodule,
            ]
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_columns() {
        let spans = lex("module\n  foo").unwrap();
        assert_eq!((spans[0].line, spans[0].column), (1, 1));
        assert_eq!((spans[1].line, spans[1].column), (2, 3));
    }

    #[test]
    fn comment_newlines_advance_the_line_counter() {
        let spans = lex("/* a\nb\nc */ x").unwrap();
        assert_eq!((spans[0].line, spans[0].column), (3, 6));
    }

    #[test]
    fn unterminated_block_comment_is_a_lex_error_at_the_opener() {
        let err = lex("wire w; /* oops").unwrap_err();
        assert_eq!((err.line, err.column), (1, 9));
        assert!(matches!(err.kind, ParseErrorKind::Lex { .. }));
        assert!(err.to_string().contains("unterminated"), "{err}");
    }

    #[test]
    fn wide_literals_are_rejected_with_position() {
        let err = lex("module m; 4'b0101").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Lex { .. }));
        assert!(err.to_string().contains("4'b0101"), "{err}");
    }

    #[test]
    fn bus_brackets_get_a_dedicated_unsupported_error() {
        let err = lex("input [3:0] a;").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Unsupported { .. }));
    }

    #[test]
    fn escaped_identifier_preserves_special_characters() {
        assert_eq!(
            toks("\\a.b[3] x"),
            vec![Token::Ident("a.b[3]".into()), Token::Ident("x".into()),]
        );
        assert!(lex("\\ x").is_err(), "empty escaped identifier");
    }

    #[test]
    fn simple_ident_predicate_matches_the_lexer() {
        assert!(is_simple_ident("n_u1"));
        assert!(is_simple_ident("_x$2"));
        assert!(!is_simple_ident("1abc"));
        assert!(!is_simple_ident("a.b"));
        assert!(!is_simple_ident("wire"));
        assert!(!is_simple_ident(""));
    }
}
