//! Summary statistics and DOT export for netlists.

use std::fmt;

use crate::cell::CellKind;
use crate::graph::{Netlist, NodeKind};
use crate::level::Levelization;

/// Aggregate statistics for a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Total cells (combinational + DFF).
    pub cells: usize,
    /// Number of DFFs.
    pub dffs: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Total connections.
    pub edges: usize,
    /// Logic depth (max combinational level), if acyclic.
    pub depth: Option<u32>,
    /// Per-kind cell histogram, indexed by [`CellKind::index`].
    pub kind_histogram: Vec<usize>,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    pub fn of(netlist: &Netlist) -> NetlistStats {
        let mut kind_histogram = vec![0usize; CellKind::ALL.len()];
        let mut inputs = 0;
        let mut outputs = 0;
        for id in netlist.node_ids() {
            match netlist.kind(id) {
                NodeKind::PrimaryInput => inputs += 1,
                NodeKind::PrimaryOutput => outputs += 1,
                NodeKind::Cell(k) => kind_histogram[k.index()] += 1,
            }
        }
        let depth = Levelization::of(netlist).ok().map(|l| l.max_level());
        NetlistStats {
            cells: netlist.cell_count(),
            dffs: netlist.dff_count(),
            inputs,
            outputs,
            edges: netlist.edge_count(),
            depth,
            kind_histogram,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cells={} dffs={} pis={} pos={} edges={} depth={}",
            self.cells,
            self.dffs,
            self.inputs,
            self.outputs,
            self.edges,
            self.depth.map_or("cyclic".to_owned(), |d| d.to_string()),
        )
    }
}

/// Renders the netlist in Graphviz DOT format.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist, to_dot};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
/// nl.add_output("y", g);
/// let dot = to_dot(&nl);
/// assert!(dot.contains("digraph"));
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
pub fn to_dot(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "digraph \"{}\" {{\n  rankdir=LR;\n",
        netlist.name()
    ));
    for id in netlist.node_ids() {
        let node = netlist.node(id);
        let (shape, label) = match node.kind() {
            NodeKind::PrimaryInput => ("invtriangle", node.name().to_owned()),
            NodeKind::PrimaryOutput => ("triangle", node.name().to_owned()),
            NodeKind::Cell(k) if k.is_sequential() => {
                ("box", format!("{}\\n{}", node.name(), k.lib_name()))
            }
            NodeKind::Cell(k) => ("ellipse", format!("{}\\n{}", node.name(), k.lib_name())),
        };
        out.push_str(&format!(
            "  {} [shape={shape}, label=\"{label}\"];\n",
            id.index()
        ));
    }
    for id in netlist.node_ids() {
        for (pin, &f) in netlist.fanins(id).iter().enumerate() {
            out.push_str(&format!(
                "  {} -> {} [label=\"{pin}\"];\n",
                f.index(),
                id.index()
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_correctly() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::Nand2, "u1", &[a, b]).unwrap();
        let ff = nl.add_cell(CellKind::Dff, "r0", &[g]).unwrap();
        nl.add_output("y", ff);
        let s = NetlistStats::of(&nl);
        assert_eq!(s.cells, 2);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.depth, Some(1));
        assert_eq!(s.kind_histogram[CellKind::Nand2.index()], 1);
        assert_eq!(s.kind_histogram[CellKind::Dff.index()], 1);
        assert!(s.to_string().contains("cells=2"));
    }

    #[test]
    fn dot_mentions_every_node() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_cell(CellKind::Inv, "u1", &[a]).unwrap();
        nl.add_output("y", g);
        let dot = to_dot(&nl);
        assert!(dot.contains("u1"));
        assert!(dot.contains("INV_X1"));
        assert!(dot.matches("->").count() == 2);
    }
}
