//! Structural (gate-level) Verilog export and import — the interchange
//! format a Design-Compiler-style flow writes and downstream signoff tools
//! read. Round-tripping through this format is property-tested against the
//! simulator.

use std::collections::HashMap;

use crate::cell::CellKind;
use crate::error::NetlistError;
use crate::graph::{Netlist, NodeId, NodeKind};

/// Pin names per cell kind, in the same order as the netlist's fanins.
fn pin_names(kind: CellKind) -> &'static [&'static str] {
    if kind.is_sequential() {
        return &["D"];
    }
    match kind.input_count() {
        0 => &[],
        1 => &["A"],
        2 => &["A", "B"],
        _ if kind == CellKind::Mux2 => &["A", "B", "S"],
        _ => &["A", "B", "C"],
    }
}

fn output_pin(kind: CellKind) -> &'static str {
    if kind.is_sequential() {
        "Q"
    } else {
        "Y"
    }
}

/// Renders the netlist as structural Verilog.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist, write_verilog};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
/// nl.add_output("y", g);
/// let v = write_verilog(&nl);
/// assert!(v.contains("INV_X1 u1 (.A(a), .Y(n_u1));"));
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
pub fn write_verilog(netlist: &Netlist) -> String {
    let net_of = |id: NodeId| -> String {
        match netlist.kind(id) {
            NodeKind::PrimaryInput => escape(netlist.node(id).name()),
            NodeKind::PrimaryOutput => escape(netlist.node(id).name()),
            NodeKind::Cell(_) => format!("n_{}", escape(netlist.node(id).name())),
        }
    };
    let mut out = String::new();
    let ports: Vec<String> = netlist
        .node_ids()
        .filter_map(|id| match netlist.kind(id) {
            NodeKind::PrimaryInput => Some(format!("input {}", net_of(id))),
            NodeKind::PrimaryOutput => Some(format!("output {}", net_of(id))),
            NodeKind::Cell(_) => None,
        })
        .collect();
    out.push_str(&format!(
        "module {} ({});\n",
        escape(netlist.name()),
        ports.join(", ")
    ));
    // Wire declarations for every cell output.
    for id in netlist.node_ids() {
        if matches!(netlist.kind(id), NodeKind::Cell(_)) {
            out.push_str(&format!("  wire {};\n", net_of(id)));
        }
    }
    // Instances.
    for id in netlist.node_ids() {
        if let NodeKind::Cell(kind) = netlist.kind(id) {
            let mut pins: Vec<String> = netlist
                .fanins(id)
                .iter()
                .zip(pin_names(kind))
                .map(|(&f, pin)| format!(".{pin}({})", net_of(f)))
                .collect();
            pins.push(format!(".{}({})", output_pin(kind), net_of(id)));
            out.push_str(&format!(
                "  {} {} ({});\n",
                kind.lib_name(),
                escape(netlist.node(id).name()),
                pins.join(", ")
            ));
        }
    }
    // Output assigns.
    for id in netlist.primary_outputs() {
        out.push_str(&format!(
            "  assign {} = {};\n",
            net_of(id),
            net_of(netlist.fanins(id)[0])
        ));
    }
    out.push_str("endmodule\n");
    out
}

/// Parses structural Verilog produced by [`write_verilog`] (or any netlist
/// restricted to this library's cells and named pin connections).
///
/// # Errors
///
/// Returns [`NetlistError::UnknownNode`]-style errors wrapped in
/// [`NetlistError`], or a parse failure description.
pub fn parse_verilog(src: &str) -> Result<Netlist, NetlistError> {
    let lib_by_name: HashMap<&str, CellKind> =
        CellKind::ALL.iter().map(|&k| (k.lib_name(), k)).collect();

    let text = src.replace('\n', " ");
    let Some(header_start) = text.find("module") else {
        return Err(parse_err("missing 'module'"));
    };
    let after = &text[header_start + "module".len()..];
    let Some(open) = after.find('(') else {
        return Err(parse_err("missing port list"));
    };
    let name = after[..open].trim().to_owned();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(parse_err(format!("bad module name '{name}'")));
    }
    // Search for the closing paren *after* the opening one: a stray `)`
    // earlier in the text must not yield an inverted (panicking) slice.
    let Some(close) = after[open..].find(')').map(|c| open + c) else {
        return Err(parse_err("unterminated port list"));
    };
    let ports_str = &after[open + 1..close];
    let body = &after[close + 1..];

    let mut netlist = Netlist::new(name);
    let mut nets: HashMap<String, NodeId> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    for p in ports_str.split(',') {
        let p = p.trim();
        if let Some(n) = p.strip_prefix("input ") {
            let id = netlist.add_input(n.trim());
            nets.insert(n.trim().to_owned(), id);
        } else if let Some(n) = p.strip_prefix("output ") {
            outputs.push(n.trim().to_owned());
        } else if !p.is_empty() {
            return Err(parse_err(format!("bad port '{p}'")));
        }
    }

    // First pass: create all instances with placeholder fanins, recording
    // each instance's output net. (Wires may be referenced before the
    // driving instance appears, and DFFs form cycles.)
    struct Pending {
        node: NodeId,
        kind: CellKind,
        pins: Vec<(String, String)>,
    }
    let mut pending: Vec<Pending> = Vec::new();
    let mut assigns: Vec<(String, String)> = Vec::new();

    let placeholder = netlist.add_input("__vparse_placeholder__");

    for stmt in body.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt == "endmodule" || stmt.starts_with("wire ") {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("assign ") {
            let Some((lhs, rhs)) = rest.split_once('=') else {
                return Err(parse_err(format!("bad assign '{stmt}'")));
            };
            assigns.push((lhs.trim().to_owned(), rhs.trim().to_owned()));
            continue;
        }
        if stmt.starts_with("endmodule") {
            break;
        }
        // `CELL name ( .PIN(net), ... )`
        let Some(open) = stmt.find('(') else {
            return Err(parse_err(format!("bad statement '{stmt}'")));
        };
        let head: Vec<&str> = stmt[..open].split_whitespace().collect();
        let [cell_name, inst_name] = head[..] else {
            return Err(parse_err(format!("bad instance head '{stmt}'")));
        };
        let Some(&kind) = lib_by_name.get(cell_name) else {
            return Err(parse_err(format!("unknown cell '{cell_name}'")));
        };
        // An absent closing paren used to fall back to `stmt.len()`, which
        // silently mis-parsed a truncated instance (and a stray `)` before
        // the `(` inverted the slice and panicked); both are hard errors.
        let Some(close) = stmt[open + 1..].rfind(')').map(|c| open + 1 + c) else {
            return Err(parse_err(format!("unterminated instance '{stmt}'")));
        };
        let inner = stmt[open + 1..close].trim();
        let mut pins = Vec::new();
        for conn in split_pins(inner) {
            let conn = conn.trim().trim_start_matches('.');
            let Some(po) = conn.find('(') else {
                return Err(parse_err(format!("bad pin '{conn}'")));
            };
            let pin = conn[..po].trim().to_owned();
            let Some(net) = conn[po + 1..].strip_suffix(')') else {
                return Err(parse_err(format!("unterminated pin '{conn}'")));
            };
            pins.push((pin, net.trim().to_owned()));
        }
        let fanins = vec![placeholder; kind.input_count()];
        let node = netlist.add_cell(kind, inst_name, &fanins)?;
        let out_pin = output_pin(kind);
        if let Some((_, net)) = pins.iter().find(|(p, _)| p == out_pin) {
            nets.insert(net.clone(), node);
        }
        pending.push(Pending { node, kind, pins });
    }

    // Second pass: connect pins.
    for p in &pending {
        for (i, pin_name) in pin_names(p.kind).iter().enumerate() {
            let Some((_, net)) = p.pins.iter().find(|(pn, _)| pn == pin_name) else {
                return Err(parse_err(format!("instance missing pin {pin_name}")));
            };
            let Some(&src) = nets.get(net) else {
                return Err(parse_err(format!("undriven net '{net}'")));
            };
            netlist.replace_fanin(p.node, i, src)?;
        }
    }

    // Outputs.
    for out_name in outputs {
        let rhs = assigns
            .iter()
            .find(|(lhs, _)| *lhs == out_name)
            .map(|(_, r)| r.clone())
            .ok_or_else(|| parse_err(format!("output '{out_name}' unassigned")))?;
        let Some(&src) = nets.get(&rhs) else {
            return Err(parse_err(format!("undriven net '{rhs}'")));
        };
        netlist.add_output(out_name, src);
    }

    // The placeholder input must end up unused.
    if !netlist.fanouts(placeholder).is_empty() {
        return Err(parse_err("dangling pin connections remain"));
    }
    Ok(netlist)
}

fn split_pins(inner: &str) -> Vec<&str> {
    // Pin connections contain no nested commas beyond `(net)`, so a split
    // on `,` outside parentheses suffices.
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < inner.len() {
        out.push(&inner[start..]);
    }
    out
}

fn parse_err(msg: impl Into<String>) -> NetlistError {
    NetlistError::VerilogParse {
        message: msg.into(),
    }
}

fn escape(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Netlist {
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell(CellKind::Nand2, "u1", &[a, b]).unwrap();
        let ff = nl.add_cell(CellKind::Dff, "r0", &[g1]).unwrap();
        let g2 = nl.add_cell(CellKind::Xor2, "u2", &[ff, a]).unwrap();
        nl.add_output("y", g2);
        nl.add_output("q", ff);
        nl
    }

    #[test]
    fn writes_expected_structure() {
        let v = write_verilog(&sample());
        assert!(v.starts_with("module demo (input a, input b, output y, output q);"));
        assert!(v.contains("NAND2_X1 u1 (.A(a), .B(b), .Y(n_u1));"));
        assert!(v.contains("DFF_X1 r0 (.D(n_u1), .Q(n_r0));"));
        assert!(v.contains("assign y = n_u2;"));
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = sample();
        let parsed = parse_verilog(&write_verilog(&original)).unwrap();
        assert_eq!(parsed.name(), original.name());
        assert_eq!(parsed.cell_count(), original.cell_count());
        assert_eq!(parsed.dff_count(), original.dff_count());
        assert_eq!(
            parsed.primary_inputs().len(),
            original.primary_inputs().len() + 1
        );
        assert_eq!(
            parsed.primary_outputs().len(),
            original.primary_outputs().len()
        );
        assert!(parsed.validate().is_ok());
        // Logic depth preserved.
        let lo = crate::level::Levelization::of(&original).unwrap();
        let lp = crate::level::Levelization::of(&parsed).unwrap();
        assert_eq!(lo.max_level(), lp.max_level());
    }

    #[test]
    fn dff_feedback_round_trips() {
        let mut nl = Netlist::new("fb");
        let en = nl.add_input("en");
        let ff = nl.add_cell(CellKind::Dff, "q", &[en]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u", &[ff]).unwrap();
        nl.replace_fanin(ff, 0, inv).unwrap();
        nl.add_output("out", ff);
        let parsed = parse_verilog(&write_verilog(&nl)).unwrap();
        assert_eq!(parsed.dff_count(), 1);
        assert!(crate::level::Levelization::of(&parsed).is_ok());
    }

    #[test]
    fn rejects_unknown_cells_and_bad_nets() {
        assert!(parse_verilog("module m (input a); FOO_X1 u (.A(a), .Y(n)); endmodule").is_err());
        assert!(
            parse_verilog("module m (input a, output y); assign y = ghost; endmodule").is_err()
        );
        assert!(parse_verilog("no module here").is_err());
    }
}
