//! No-panic fuzzing of the structural-Verilog parser: `parse_verilog` over
//! thousands of seeded mutations of valid netlists must either parse or
//! return a `NetlistError` — never panic and never slice out of bounds.
//! (ISSUE 5 satellite: the old parser fell back to `stmt.len()` when an
//! instance's closing paren was missing, silently mis-parsing, and sliced
//! `conn.len() - 1` off pin connections, a panic on multibyte input.)

use moss_netlist::{parse_verilog, write_verilog, CellKind, Netlist};
use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};

fn sample_netlists() -> Vec<Netlist> {
    let mut combinational = Netlist::new("comb");
    let a = combinational.add_input("a");
    let b = combinational.add_input("b");
    let n1 = combinational
        .add_cell(CellKind::Nand2, "u1", &[a, b])
        .unwrap();
    let n2 = combinational
        .add_cell(CellKind::Xor2, "u2", &[n1, a])
        .unwrap();
    let n3 = combinational.add_cell(CellKind::Inv, "u3", &[n2]).unwrap();
    combinational.add_output("y", n3);

    let mut sequential = Netlist::new("seq");
    let d = sequential.add_input("d");
    let en = sequential.add_input("en");
    let g = sequential.add_cell(CellKind::And2, "u1", &[d, en]).unwrap();
    let ff = sequential.add_cell(CellKind::Dff, "r0", &[g]).unwrap();
    let inv = sequential.add_cell(CellKind::Inv, "u2", &[ff]).unwrap();
    let fb = sequential.add_cell(CellKind::Dff, "r1", &[inv]).unwrap();
    let x = sequential
        .add_cell(CellKind::Xor2, "u3", &[ff, fb])
        .unwrap();
    sequential.add_output("q", x);

    vec![combinational, sequential]
}

/// One seeded mutation of `src`: truncation, byte flip, byte deletion, or
/// byte insertion — the corruption classes a half-written or bit-rotted
/// netlist file exhibits.
fn mutate(src: &str, rng: &mut StdRng) -> String {
    let mut bytes = src.as_bytes().to_vec();
    match rng.gen_range(0..4u32) {
        0 => {
            let cut = rng.gen_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        1 => {
            if !bytes.is_empty() {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        2 => {
            if !bytes.is_empty() {
                let i = rng.gen_range(0..bytes.len());
                bytes.remove(i);
            }
        }
        _ => {
            let i = rng.gen_range(0..=bytes.len());
            // Bias toward structurally interesting bytes.
            let choices = b"();.,= \xc3\xa9";
            let c = choices[rng.gen_range(0..choices.len())];
            bytes.insert(i, c);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn parser_never_panics_on_mutated_netlists() {
    let sources: Vec<String> = sample_netlists().iter().map(write_verilog).collect();
    let mut rng = StdRng::seed_from_u64(0xf722);
    let mut parsed_ok = 0usize;
    for round in 0..10_000usize {
        let mut src = sources[round % sources.len()].clone();
        // Stack 1–3 mutations so later rounds stray further from valid.
        for _ in 0..rng.gen_range(1..=3u32) {
            src = mutate(&src, &mut rng);
        }
        if parse_verilog(&src).is_ok() {
            parsed_ok += 1;
        }
    }
    // Some mutations are benign (whitespace, unused-wire edits); most must
    // be rejected. Either way, reaching here means no panic in 10k rounds.
    assert!(
        parsed_ok < 10_000,
        "every mutation parsing would mean the fuzz is inert"
    );
}

#[test]
fn unterminated_instance_is_an_error_not_a_misparse() {
    // The exact regression: an instance whose closing `)` is missing used
    // to be sliced to end-of-statement and mis-parsed.
    let src = "module m (input a, output y);\n\
               wire n_u1;\n\
               INV_X1 u1 (.A(a), .Y(n_u1);\n\
               assign y = n_u1;\n\
               endmodule\n";
    let err = parse_verilog(src).unwrap_err();
    assert!(
        err.to_string().contains("unterminated"),
        "expected an unterminated-instance error, got: {err}"
    );

    // A stray `)` ahead of the port list must not invert the header slice.
    assert!(parse_verilog("module m )q( input a ); endmodule").is_err());

    // A pin connection missing its closing paren is rejected, multibyte
    // content included.
    assert!(parse_verilog(
        "module m (input a, output y); INV_X1 u1 (.A(a), .Y(né); assign y = né; endmodule"
    )
    .is_err());
}
