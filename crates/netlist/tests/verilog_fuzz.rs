//! No-panic fuzzing of the structural-Verilog frontend: `parse_verilog`
//! over thousands of seeded mutations of valid netlists must either parse
//! or return a *typed* `NetlistError::Verilog(ParseError)` — never panic,
//! never slice out of bounds, never report an untyped failure. Sources are
//! the committed ITC'99-style benchmark fixture plus writer-generated
//! netlists, so both hand-written and machine-written shapes are covered.

use moss_netlist::{parse_verilog, write_verilog, CellKind, Netlist, NetlistError};
use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};

const B01: &str = include_str!("fixtures/b01_net.v");

fn sample_netlists() -> Vec<Netlist> {
    let mut combinational = Netlist::new("comb");
    let a = combinational.add_input("a");
    let b = combinational.add_input("b");
    let n1 = combinational
        .add_cell(CellKind::Nand2, "u1", &[a, b])
        .unwrap();
    let n2 = combinational
        .add_cell(CellKind::Xor2, "u2", &[n1, a])
        .unwrap();
    let n3 = combinational.add_cell(CellKind::Inv, "u3", &[n2]).unwrap();
    combinational.add_output("y", n3);

    let mut sequential = Netlist::new("seq");
    let d = sequential.add_input("d");
    let en = sequential.add_input("en");
    let g = sequential.add_cell(CellKind::And2, "u1", &[d, en]).unwrap();
    let ff = sequential.add_cell(CellKind::Dff, "r0", &[g]).unwrap();
    let inv = sequential.add_cell(CellKind::Inv, "u2", &[ff]).unwrap();
    let fb = sequential.add_cell(CellKind::Dff, "r1", &[inv]).unwrap();
    let x = sequential
        .add_cell(CellKind::Xor2, "u3", &[ff, fb])
        .unwrap();
    sequential.add_output("q", x);

    vec![combinational, sequential]
}

/// One seeded mutation of `src`: truncation, byte flip, byte deletion, or
/// byte insertion — the corruption classes a half-written or bit-rotted
/// netlist file exhibits.
fn mutate(src: &str, rng: &mut StdRng) -> String {
    let mut bytes = src.as_bytes().to_vec();
    match rng.gen_range(0..4u32) {
        0 => {
            let cut = rng.gen_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        1 => {
            if !bytes.is_empty() {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        2 => {
            if !bytes.is_empty() {
                let i = rng.gen_range(0..bytes.len());
                bytes.remove(i);
            }
        }
        _ => {
            let i = rng.gen_range(0..=bytes.len());
            // Bias toward structurally interesting bytes.
            let choices = b"();.,= \\'[\xc3\xa9";
            let c = choices[rng.gen_range(0..choices.len())];
            bytes.insert(i, c);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn parser_never_panics_and_errors_stay_typed() {
    let mut sources: Vec<String> = sample_netlists().iter().map(write_verilog).collect();
    sources.push(B01.to_owned());
    let mut rng = StdRng::seed_from_u64(0xf722);
    let mut parsed_ok = 0usize;
    for round in 0..10_000usize {
        let mut src = sources[round % sources.len()].clone();
        // Stack 1–3 mutations so later rounds stray further from valid.
        for _ in 0..rng.gen_range(1..=3u32) {
            src = mutate(&src, &mut rng);
        }
        match parse_verilog(&src) {
            Ok(_) => parsed_ok += 1,
            Err(NetlistError::Verilog(e)) => {
                // Every rejection is positioned: 1-based line and column.
                assert!(e.line >= 1 && e.column >= 1, "unpositioned error: {e}");
            }
            Err(other) => panic!("untyped parse failure: {other}"),
        }
    }
    // Some mutations are benign (whitespace, comment edits); most must be
    // rejected. Either way, reaching here means no panic in 10k rounds.
    assert!(
        parsed_ok < 10_000,
        "every mutation parsing would mean the fuzz is inert"
    );
}

#[test]
fn truncation_is_an_error_not_a_misparse() {
    // The old parser's regression: an instance whose closing `)` is
    // missing used to be sliced to end-of-statement and mis-parsed; now it
    // is an expected-vs-found syntax error.
    let src = "module m (input a, output y);\n\
               wire w;\n\
               INV_X1 u1 (.A(a), .Y(w);\n\
               assign y = w;\n\
               endmodule\n";
    let err = parse_verilog(src).unwrap_err();
    let NetlistError::Verilog(e) = err else {
        panic!("expected a typed parse error");
    };
    assert_eq!(e.line, 3);

    // A stray `)` ahead of the port list must not invert any slice.
    assert!(parse_verilog("module m )q( input a ); endmodule").is_err());

    // A pin connection missing its closing paren is rejected, multibyte
    // content included.
    assert!(parse_verilog(
        "module m (input a, output y); INV_X1 u1 (.A(a), .Y(né); assign y = né; endmodule"
    )
    .is_err());

    // Every prefix of the fixture is handled without panicking (the
    // sharpest truncation sweep: all 0..len cut points, char-aligned).
    for cut in (0..B01.len()).filter(|&i| B01.is_char_boundary(i)) {
        let _ = parse_verilog(&B01[..cut]);
    }
}
