//! The committed ITC'99-style benchmark fixture must parse, validate,
//! levelize, and survive a write/parse round trip hash-identically —
//! proving the frontend handles a real benchmark-shaped netlist, not just
//! our own writer's output.

use moss_netlist::{
    canonical_hash, parse_verilog, parse_verilog_design, write_verilog, DffReset, Levelization,
    NodeKind,
};

const B01: &str = include_str!("fixtures/b01_net.v");

#[test]
fn fixture_parses_and_validates() {
    let nl = parse_verilog(B01).expect("fixture must parse");
    assert_eq!(nl.name(), "b01_net");
    assert_eq!(nl.primary_inputs().len(), 4);
    assert_eq!(nl.primary_outputs().len(), 2);
    // 22 combinational gates + 1 tie cell (the 1'b1 pin) + 5 DFFs.
    assert_eq!(nl.cell_count(), 28);
    assert_eq!(nl.dff_count(), 5);
    assert!(nl.validate().is_ok());
    assert!(Levelization::of(&nl).is_ok());
}

#[test]
fn fixture_sequential_metadata_is_recovered() {
    let design = parse_verilog_design(B01).unwrap();
    assert_eq!(design.dffs.len(), 5);
    for dff in &design.dffs {
        assert_eq!(dff.clock.as_deref(), Some("clock"));
        assert_eq!(dff.reset, DffReset::ActiveLowReset);
        assert!(!dff.reset.initial_value());
        assert!(matches!(
            design.netlist.kind(dff.node),
            NodeKind::Cell(k) if k.is_sequential()
        ));
    }
    // Clock and reset exist as PIs but carry no data edges.
    let clock = design.netlist.find("clock").unwrap();
    let reset = design.netlist.find("reset").unwrap();
    assert!(design.netlist.fanouts(clock).is_empty());
    assert!(design.netlist.fanouts(reset).is_empty());
}

#[test]
fn fixture_round_trips_hash_identically() {
    let nl = parse_verilog(B01).unwrap();
    let again = parse_verilog(&write_verilog(&nl)).unwrap();
    assert_eq!(again.primary_inputs().len(), nl.primary_inputs().len());
    assert_eq!(again.primary_outputs().len(), nl.primary_outputs().len());
    assert_eq!(again.cell_count(), nl.cell_count());
    assert_eq!(again.dff_count(), nl.dff_count());
    assert_eq!(canonical_hash(&again), canonical_hash(&nl));
}

#[test]
fn fixture_parse_is_deterministic() {
    let a = parse_verilog(B01).unwrap();
    let b = parse_verilog(B01).unwrap();
    assert_eq!(canonical_hash(&a), canonical_hash(&b));
    assert_eq!(
        moss_netlist::canonical_form(&a),
        moss_netlist::canonical_form(&b)
    );
}
