/*
 * b01_net.v — ITC'99-style b01-class benchmark netlist (FSM comparing
 * two serial input flows), mapped onto the MOSS standard-cell library.
 *
 * Exercises the full frontend surface: non-ANSI ports with body
 * input/output declarations, multi-name wire declarations, block and
 * line comments, a constant pin connection, DFF instances with
 * .CK/.RN control pins, an output port driven directly by a Q pin
 * (outp), and an output port driven through an assign (overflw).
 */
module b01_net (line1, line2, reset, clock, outp, overflw);
  input line1, line2;
  input reset, clock;
  output outp, overflw;

  // Flip-flop outputs: state bits, output register, overflow latch.
  wire q0, q1, q2, ovfq;
  // Next-state functions.
  wire n0, n1, n2;
  // Datapath.
  wire x1, x2, a1, a2, o1;
  wire aoi1, oai1, carry, ovd, od, odb;
  wire t1, t2, nb, nr;
  wire w1, w2, w3, w4;

  /* Input comparators. */
  XOR2_X1  g_x1 (.A(line1), .B(line2), .Y(x1));
  XNOR2_X1 g_x2 (.A(line1), .B(line2), .Y(x2));

  // State-dependent datapath.
  AND2_X1  g_a1 (.A(q0), .B(x1), .Y(a1));
  AND2_X1  g_a2 (.A(q1), .B(x2), .Y(a2));
  OR2_X1   g_o1 (.A(a1), .B(a2), .Y(o1));
  XOR2_X1  g_n0 (.A(o1), .B(q2), .Y(n0));
  MUX2_X1  g_n1 (.A(a1), .B(a2), .S(q0), .Y(n1));
  AOI21_X1 g_aoi (.A(q0), .B(q1), .C(x1), .Y(aoi1));
  OAI21_X1 g_oai (.A(q2), .B(x2), .C(o1), .Y(oai1));
  NAND2_X1 g_n2 (.A(aoi1), .B(oai1), .Y(n2));
  AND3_X1  g_carry (.A(q0), .B(q1), .C(q2), .Y(carry));

  // Tied-high comparator leg (constant pin connection).
  NAND2_X1 g_t1 (.A(x1), .B(1'b1), .Y(t1));
  INV_X1   g_inv (.A(t1), .Y(t2));
  NOR2_X1  g_nb (.A(t2), .B(n0), .Y(nb));
  NOR3_X1  g_nr (.A(nb), .B(a1), .C(q2), .Y(nr));

  // Sticky overflow.
  OR2_X1   g_ovd (.A(carry), .B(ovfq), .Y(ovd));

  // Output cone.
  NAND3_X1 g_n3 (.A(x1), .B(x2), .C(o1), .Y(w1));
  INV_X1   g_i2 (.A(w1), .Y(w2));
  XOR2_X1  g_x3 (.A(w2), .B(carry), .Y(w3));
  NOR2_X1  g_nz (.A(w3), .B(t2), .Y(w4));
  OR3_X1   g_od (.A(nr), .B(w4), .C(n2), .Y(od));
  BUF_X1   g_buf (.A(od), .Y(odb));

  // State and output registers, active-low reset, all cleared to 0.
  DFF_X1 s0_reg (.D(n0), .CK(clock), .RN(reset), .Q(q0));
  DFF_X1 s1_reg (.D(n1), .CK(clock), .RN(reset), .Q(q1));
  DFF_X1 s2_reg (.D(n2), .CK(clock), .RN(reset), .Q(q2));
  DFF_X1 outp_reg (.D(odb), .CK(clock), .RN(reset), .Q(outp));
  DFF_X1 ovf_reg (.D(ovd), .CK(clock), .RN(reset), .Q(ovfq));

  assign overflw = ovfq;
endmodule
