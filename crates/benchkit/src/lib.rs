//! # moss-benchkit
//!
//! A minimal, dependency-free benchmarking harness for the MOSS workspace.
//! The container this repo builds in has no network access, so the usual
//! Criterion dependency is replaced by this crate: warmup + timed
//! iterations with `std::time::Instant`, mean/min statistics, optional
//! GFLOP/s when the caller declares a flop count, and a hand-rolled JSON
//! report writer so perf trajectories can be recorded as `BENCH_*.json`
//! artifacts at the workspace root. Statistics are the per-iteration mean
//! and the best per-iteration mean over a timed batch
//! ([`Measurement::min_batch_ns`]); single-iteration minima are never
//! measured.
//!
//! ## Example
//!
//! ```no_run
//! let mut suite = moss_benchkit::Suite::new("kernels");
//! suite.bench("square/64", || {
//!     let mut acc = 0u64;
//!     for i in 0..64u64 {
//!         acc = acc.wrapping_add(i * i);
//!     }
//!     std::hint::black_box(acc);
//! });
//! suite.write_json("BENCH_kernels.json").unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// One benchmark's timing result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name, e.g. `"matmul/naive/2048x64x64"`.
    pub name: String,
    /// Number of timed iterations.
    pub iters: u64,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Lowest per-iteration *mean across a timed batch*, in nanoseconds —
    /// an optimistic steady-state estimate (the least-disturbed batch),
    /// not the fastest single iteration. Iterations are timed in batches,
    /// so a single-iteration minimum is never observed.
    pub min_batch_ns: f64,
    /// Throughput in GFLOP/s, when the caller declared a flop count.
    pub gflops: Option<f64>,
    /// Throughput in items/s, when the caller declared an item count (e.g.
    /// simulated cycles or lane-cycles per iteration).
    pub items_per_sec: Option<f64>,
}

/// A named collection of benchmarks that can be reported as JSON.
#[derive(Debug)]
pub struct Suite {
    name: String,
    warmup: Duration,
    measure: Duration,
    results: Vec<Measurement>,
}

impl Suite {
    /// A suite with default budgets (0.2 s warmup, 1 s measurement).
    pub fn new(name: &str) -> Suite {
        Suite {
            name: name.to_string(),
            warmup: Duration::from_millis(200),
            measure: Duration::from_secs(1),
            results: Vec::new(),
        }
    }

    /// Overrides the per-benchmark warmup and measurement budgets.
    pub fn with_budget(mut self, warmup: Duration, measure: Duration) -> Suite {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Times `f` and records the result under `name`.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) -> &Measurement {
        self.bench_flops(name, None, None, f)
    }

    /// Times `f`, recording throughput from `flops` floating-point ops
    /// per iteration.
    pub fn bench_with_flops<F: FnMut()>(&mut self, name: &str, flops: u64, f: F) -> &Measurement {
        self.bench_flops(name, Some(flops), None, f)
    }

    /// Times `f`, recording throughput from `items` work units per
    /// iteration (e.g. simulated cycles) as items/second.
    pub fn bench_with_items<F: FnMut()>(&mut self, name: &str, items: u64, f: F) -> &Measurement {
        self.bench_flops(name, None, Some(items), f)
    }

    fn bench_flops<F: FnMut()>(
        &mut self,
        name: &str,
        flops: Option<u64>,
        items: Option<u64>,
        mut f: F,
    ) -> &Measurement {
        // The very first call pays any one-time lazy initialization in the
        // benched code (thread-pool spawn, SIMD feature detection, …). Run
        // it outside the timed window so it can skew neither the
        // per-iteration estimate below nor the first measured batch.
        f();

        // Warmup: run until the budget elapses so caches/branch predictors
        // settle and we can estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            f();
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Measure in batches sized to ~10 per measurement budget, timing
        // each batch to capture a minimum over batches.
        let batch = ((self.measure.as_secs_f64() / 10.0 / per_iter).ceil() as u64).max(1);
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let mut min_batch_ns = f64::INFINITY;
        while total < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            let elapsed = t.elapsed();
            min_batch_ns = min_batch_ns.min(elapsed.as_nanos() as f64 / batch as f64);
            total += elapsed;
            iters += batch;
        }

        let mean_ns = total.as_nanos() as f64 / iters as f64;
        let gflops = flops.map(|fl| fl as f64 / mean_ns);
        let items_per_sec = items.map(|it| it as f64 * 1e9 / mean_ns);
        self.results.push(Measurement {
            name: name.to_string(),
            iters,
            mean_ns,
            min_batch_ns,
            gflops,
            items_per_sec,
        });
        let m = self.results.last().expect("just pushed");
        match (m.gflops, m.items_per_sec) {
            (Some(g), _) => eprintln!(
                "{:40} {:>12.0} ns/iter  ({:.2} GFLOP/s, {} iters)",
                m.name, m.mean_ns, g, m.iters
            ),
            (None, Some(r)) => eprintln!(
                "{:40} {:>12.0} ns/iter  ({:.3e} items/s, {} iters)",
                m.name, m.mean_ns, r, m.iters
            ),
            (None, None) => eprintln!(
                "{:40} {:>12.0} ns/iter  ({} iters)",
                m.name, m.mean_ns, m.iters
            ),
        }
        m
    }

    /// All measurements recorded so far, in execution order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Serializes the suite to a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"bench\": {:?},\n  \"results\": [", self.name);
        for (i, m) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": {:?}, \"iters\": {}, \"mean_ns\": {:.1}, \"min_batch_ns\": {:.1}",
                m.name, m.iters, m.mean_ns, m.min_batch_ns
            );
            if let Some(g) = m.gflops {
                let _ = write!(out, ", \"gflops\": {g:.4}");
            }
            if let Some(r) = m.items_per_sec {
                let _ = write!(out, ", \"items_per_sec\": {r:.1}");
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    pub fn write_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path.as_ref(), self.to_json())?;
        eprintln!("wrote {}", path.as_ref().display());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_suite() -> Suite {
        Suite::new("test").with_budget(Duration::from_millis(1), Duration::from_millis(5))
    }

    #[test]
    fn records_measurements() {
        let mut suite = quick_suite();
        suite.bench("noop", || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(suite.results().len(), 1);
        let m = &suite.results()[0];
        assert_eq!(m.name, "noop");
        assert!(m.iters > 0);
        assert!(m.mean_ns >= 0.0);
        assert!(m.min_batch_ns <= m.mean_ns * 1.001);
    }

    #[test]
    fn computes_gflops() {
        let mut suite = quick_suite();
        let m = suite
            .bench_with_flops("flops", 1000, || {
                let mut x = 0.0f32;
                for i in 0..500 {
                    x += (i as f32) * 2.0;
                }
                std::hint::black_box(x);
            })
            .clone();
        let g = m.gflops.expect("gflops recorded");
        assert!(g > 0.0);
        assert!((g - 1000.0 / m.mean_ns).abs() < 1e-9);
    }

    #[test]
    fn computes_items_per_sec() {
        let mut suite = quick_suite();
        let m = suite
            .bench_with_items("cycles", 64, || {
                std::hint::black_box(1 + 1);
            })
            .clone();
        let r = m.items_per_sec.expect("items/s recorded");
        assert!(r > 0.0);
        assert!((r - 64.0 * 1e9 / m.mean_ns).abs() / r < 1e-9);
        assert!(m.gflops.is_none());
    }

    #[test]
    fn json_is_well_formed() {
        let mut suite = quick_suite();
        suite.bench_with_flops("a/b", 10, || {
            std::hint::black_box(0);
        });
        let json = suite.to_json();
        assert!(json.contains("\"bench\": \"test\""));
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.contains("\"gflops\""));
        assert!(json.contains("\"min_batch_ns\""));
        assert!(!json.contains("\"min_ns\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
