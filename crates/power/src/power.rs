//! Switching + leakage power estimation from toggle rates.

use moss_netlist::{CellLibrary, Netlist, NodeId, NodeKind};
use moss_sim::ToggleReport;

/// Power breakdown for one netlist under a given activity profile.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Per-node dynamic power in nanowatts (0 for ports).
    pub dynamic_nw: Vec<f64>,
    /// Per-node leakage power in nanowatts (0 for ports).
    pub leakage_nw: Vec<f64>,
    /// Clock frequency assumed, in megahertz.
    pub clock_mhz: f64,
}

impl PowerReport {
    /// Estimates power from simulated toggle activity.
    ///
    /// Dynamic power per cell = toggle rate × switching energy × clock
    /// frequency; leakage comes straight from the library. This mirrors how
    /// PrimePower combines VCS activity with library data (§V-A: "power is
    /// reported by PrimePower based on their toggle rates").
    ///
    /// # Panics
    ///
    /// Panics if `toggles` was collected on a different-sized netlist.
    pub fn estimate(
        netlist: &Netlist,
        lib: &CellLibrary,
        toggles: &ToggleReport,
        clock_mhz: f64,
    ) -> PowerReport {
        assert_eq!(
            toggles.toggles.len(),
            netlist.node_count(),
            "toggle report does not match netlist"
        );
        let n = netlist.node_count();
        let mut dynamic_nw = vec![0.0; n];
        let mut leakage_nw = vec![0.0; n];
        for id in netlist.node_ids() {
            if let NodeKind::Cell(kind) = netlist.kind(id) {
                let t = lib.timing(kind);
                let rate = toggles.rate(id);
                // fJ × MHz = nW  (1e-15 J × 1e6 1/s = 1e-9 W).
                dynamic_nw[id.index()] = rate * t.switch_energy_fj * clock_mhz;
                leakage_nw[id.index()] = t.leakage_nw;
            }
        }
        PowerReport {
            dynamic_nw,
            leakage_nw,
            clock_mhz,
        }
    }

    /// Total dynamic power, nanowatts.
    pub fn total_dynamic_nw(&self) -> f64 {
        self.dynamic_nw.iter().sum()
    }

    /// Total leakage power, nanowatts.
    pub fn total_leakage_nw(&self) -> f64 {
        self.leakage_nw.iter().sum()
    }

    /// Total power, nanowatts.
    pub fn total_nw(&self) -> f64 {
        self.total_dynamic_nw() + self.total_leakage_nw()
    }

    /// Per-node total power.
    pub fn node_nw(&self, id: NodeId) -> f64 {
        self.dynamic_nw[id.index()] + self.leakage_nw[id.index()]
    }
}

/// Total cell area of the design, in square micrometers.
pub fn total_area_um2(netlist: &Netlist, lib: &CellLibrary) -> f64 {
    netlist
        .node_ids()
        .filter_map(|id| match netlist.kind(id) {
            NodeKind::Cell(k) => Some(lib.timing(k).area_um2),
            _ => None,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_netlist::CellKind;
    use moss_sim::toggle_rates;

    fn xor_pair() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::Xor2, "u", &[a, b]).unwrap();
        nl.add_output("y", g);
        nl
    }

    #[test]
    fn power_scales_with_frequency() {
        let nl = xor_pair();
        let lib = CellLibrary::default();
        let toggles = toggle_rates(&nl, &[], 2000, 5).unwrap();
        let slow = PowerReport::estimate(&nl, &lib, &toggles, 100.0);
        let fast = PowerReport::estimate(&nl, &lib, &toggles, 1000.0);
        assert!(fast.total_dynamic_nw() > slow.total_dynamic_nw() * 9.0);
        assert_eq!(fast.total_leakage_nw(), slow.total_leakage_nw());
    }

    #[test]
    fn idle_circuit_burns_only_leakage() {
        let mut nl = Netlist::new("idle");
        let _a = nl.add_input("a");
        let t1 = nl.add_cell(CellKind::Tie1, "t", &[]).unwrap();
        nl.add_output("y", t1);
        let lib = CellLibrary::default();
        let toggles = toggle_rates(&nl, &[], 500, 1).unwrap();
        let p = PowerReport::estimate(&nl, &lib, &toggles, 500.0);
        assert_eq!(p.total_dynamic_nw(), 0.0);
        assert!(p.total_leakage_nw() > 0.0);
    }

    #[test]
    fn ports_consume_nothing() {
        let nl = xor_pair();
        let lib = CellLibrary::default();
        let toggles = toggle_rates(&nl, &[], 500, 2).unwrap();
        let p = PowerReport::estimate(&nl, &lib, &toggles, 500.0);
        let a = nl.find("a").unwrap();
        assert_eq!(p.node_nw(a), 0.0);
    }

    #[test]
    fn area_sums_cells() {
        let nl = xor_pair();
        let lib = CellLibrary::default();
        let area = total_area_um2(&nl, &lib);
        assert!((area - lib.timing(CellKind::Xor2).area_um2).abs() < 1e-12);
    }
}
