//! # moss-power
//!
//! Activity-based power estimation for the MOSS reproduction — the stand-in
//! for Synopsys PrimePower: per-cell dynamic power from simulated toggle
//! rates plus library leakage (paper §V-A). The circuit-level total is the
//! supervision signal for the power-prediction (PP) task in Table I.
//!
//! ## Example
//!
//! ```
//! use moss_netlist::{CellKind, CellLibrary, Netlist};
//! use moss_power::PowerReport;
//! use moss_sim::toggle_rates;
//!
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
//! nl.add_output("y", g);
//! let toggles = toggle_rates(&nl, &[], 1_000, 7)?;
//! let power = PowerReport::estimate(&nl, &CellLibrary::default(), &toggles, 500.0);
//! assert!(power.total_nw() > 0.0);
//! # Ok::<(), moss_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod power;

pub use power::{total_area_um2, PowerReport};
