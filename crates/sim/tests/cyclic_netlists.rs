//! Regression tests for combinational-cycle rejection (ISSUE 5 satellite):
//! a hand-built feedback loop with no flip-flop on it must be refused by
//! both simulator constructors — termination of `settle`/`full_settle` is
//! guaranteed *by construction*, not by an iteration cap, so the
//! construction-time check is the load-bearing guard.

use moss_netlist::{CellKind, Netlist, NetlistError};
use moss_sim::{CompiledSim, GateSim};

/// Two inverters feeding each other: `u1 → u2 → u1`, no DFF in the loop.
fn combinational_ring() -> Netlist {
    let mut nl = Netlist::new("ring");
    let a = nl.add_input("a");
    let g1 = nl.add_cell(CellKind::Inv, "u1", &[a]).unwrap();
    let g2 = nl.add_cell(CellKind::Inv, "u2", &[g1]).unwrap();
    nl.replace_fanin(g1, 0, g2).unwrap();
    nl.add_output("y", g2);
    nl
}

/// A NAND latch-style loop buried behind real logic, to make sure the
/// check is not fooled by acyclic surroundings.
fn buried_loop() -> Netlist {
    let mut nl = Netlist::new("buried");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let front = nl.add_cell(CellKind::And2, "front", &[a, b]).unwrap();
    let n1 = nl.add_cell(CellKind::Nand2, "n1", &[front, b]).unwrap();
    let n2 = nl.add_cell(CellKind::Nand2, "n2", &[n1, a]).unwrap();
    nl.replace_fanin(n1, 0, n2).unwrap();
    let back = nl.add_cell(CellKind::Inv, "back", &[n2]).unwrap();
    nl.add_output("y", back);
    nl
}

#[test]
fn gatesim_rejects_combinational_cycles() {
    for nl in [combinational_ring(), buried_loop()] {
        match GateSim::new(&nl) {
            Err(NetlistError::CombinationalCycle { .. }) => {}
            other => panic!("{}: expected CombinationalCycle, got {other:?}", nl.name()),
        }
    }
}

#[test]
fn compiled_sim_rejects_combinational_cycles() {
    for nl in [combinational_ring(), buried_loop()] {
        match CompiledSim::new(&nl) {
            Err(NetlistError::CombinationalCycle { .. }) => {}
            other => panic!("{}: expected CombinationalCycle, got {other:?}", nl.name()),
        }
    }
}

#[test]
fn dff_broken_loops_still_simulate() {
    // The same ring with a DFF on the feedback path is legal and must
    // settle (one clock of a toggle loop).
    let mut nl = Netlist::new("divider");
    let en = nl.add_input("en");
    let ff = nl.add_cell(CellKind::Dff, "r0", &[en]).unwrap();
    let inv = nl.add_cell(CellKind::Inv, "u1", &[ff]).unwrap();
    nl.replace_fanin(ff, 0, inv).unwrap();
    nl.add_output("q", ff);

    let mut gate = GateSim::new(&nl).unwrap();
    gate.full_settle();
    let before = gate.values()[ff.index()];
    gate.step();
    assert_ne!(gate.values()[ff.index()], before, "divider toggles");
    assert!(CompiledSim::new(&nl).is_ok());
}
