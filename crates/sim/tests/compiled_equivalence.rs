//! Differential property tests: `CompiledSim` vs the `GateSim` oracle.
//!
//! The compiled engine produces the ground-truth labels for every
//! experiment, so its single-lane path must be **bit-identical** to the
//! event-driven reference — values every cycle, toggle counts, and ones
//! counts, over randomized sequential netlists and randomized stimulus with
//! pinned seeds.

use moss_netlist::{CellKind, Netlist, NodeId};
use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};
use moss_sim::{
    simulate_random, simulate_random_compiled, simulate_random_wide, CompiledSim, GateSim,
};

/// Random-netlist cases per property (deterministic seeded draws).
const CASES: u64 = 24;

/// Builds a random valid sequential netlist with roughly `cells` standard
/// cells: combinational fanins always reference earlier nodes (so the
/// combinational portion is acyclic by construction), and a fraction of DFF
/// D-pins are rewired to later nodes to create genuine sequential feedback.
fn random_netlist(seed: u64, cells: usize) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new(format!("rand_{seed}"));
    let n_inputs = rng.gen_range(2..6usize);
    let mut nodes: Vec<NodeId> = (0..n_inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();
    let comb_kinds: Vec<CellKind> = CellKind::ALL
        .into_iter()
        .filter(|k| !k.is_sequential())
        .collect();
    let mut dffs = Vec::new();
    for c in 0..cells {
        if rng.gen_bool(0.15) {
            let d = nodes[rng.gen_range(0..nodes.len())];
            let id = nl.add_cell(CellKind::Dff, format!("r{c}"), &[d]).unwrap();
            dffs.push(id);
            nodes.push(id);
        } else {
            let kind = comb_kinds[rng.gen_range(0..comb_kinds.len())];
            let fanins: Vec<NodeId> = (0..kind.input_count())
                .map(|_| nodes[rng.gen_range(0..nodes.len())])
                .collect();
            let id = nl.add_cell(kind, format!("u{c}"), &fanins).unwrap();
            nodes.push(id);
        }
    }
    // Sequential feedback: D-pins may legally point "forward" in insertion
    // order (the flop breaks the cycle).
    for &ff in &dffs {
        if rng.gen_bool(0.5) {
            let src = nodes[rng.gen_range(0..nodes.len())];
            nl.replace_fanin(ff, 0, src).unwrap();
        }
    }
    for k in 0..rng.gen_range(1..4usize) {
        let src = nodes[rng.gen_range(0..nodes.len())];
        nl.add_output(format!("o{k}"), src);
    }
    nl
}

/// Random DFF reset assignment, identical for both engines.
fn random_resets(netlist: &Netlist, rng: &mut StdRng) -> Vec<(NodeId, bool)> {
    netlist
        .dffs()
        .into_iter()
        .map(|d| (d, rng.gen_bool(0.5)))
        .collect()
}

#[test]
fn values_lockstep_equivalence() {
    for case in 0..CASES {
        let seed = 0xc0de ^ (case << 16);
        let netlist = random_netlist(seed, 40 + (case as usize % 3) * 60);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);

        let mut oracle = GateSim::new(&netlist).unwrap();
        let mut compiled = CompiledSim::new(&netlist).unwrap();
        for (d, v) in random_resets(&netlist, &mut rng) {
            oracle.set_state(d, v);
            compiled.set_state(d, v);
        }
        oracle.full_settle();
        compiled.settle();
        assert_eq!(
            oracle.values(),
            compiled.values_lane0(),
            "case {case} reset"
        );

        let inputs = netlist.primary_inputs();
        for cycle in 0..64 {
            for &pi in &inputs {
                let v = rng.gen_bool(0.5);
                oracle.set_input(pi, v);
                compiled.set_input(pi, v);
            }
            oracle.step();
            compiled.step();
            assert_eq!(
                oracle.values(),
                compiled.values_lane0(),
                "case {case} cycle {cycle}"
            );
        }
    }
}

#[test]
fn toggle_reports_are_bit_identical() {
    for case in 0..CASES {
        let seed = 0xface ^ (case << 12);
        let netlist = random_netlist(seed, 30 + (case as usize % 5) * 40);
        let stim_seed = seed.wrapping_mul(0x9e37_79b9);
        let reference = simulate_random(&mut GateSim::new(&netlist).unwrap(), 200, stim_seed);
        let compiled =
            simulate_random_compiled(&mut CompiledSim::new(&netlist).unwrap(), 200, stim_seed);
        assert_eq!(reference, compiled, "case {case}");
    }
}

#[test]
fn toggle_rates_helper_matches_gatesim_reference_path() {
    // `toggle_rates` now runs on CompiledSim; pin it against the
    // hand-driven GateSim reference including resets.
    for case in 0..8u64 {
        let seed = 0xab1e ^ (case << 9);
        let netlist = random_netlist(seed, 80);
        let mut rng = StdRng::seed_from_u64(seed);
        let resets = random_resets(&netlist, &mut rng);

        let mut oracle = GateSim::new(&netlist).unwrap();
        for &(d, v) in &resets {
            oracle.set_state(d, v);
        }
        oracle.settle();
        let reference = simulate_random(&mut oracle, 150, seed ^ 1);

        let from_helper = moss_sim::toggle_rates(&netlist, &resets, 150, seed ^ 1).unwrap();
        assert_eq!(reference, from_helper, "case {case}");
    }
}

#[test]
fn wide_mode_statistics_track_single_lane() {
    // The 64-lane batch mode is a different stimulus stream, so exact
    // equality is not expected — but with 64x the samples its rate
    // estimates must agree with the single-lane estimates statistically.
    for case in 0..6u64 {
        let seed = 0xbeef ^ (case << 10);
        let netlist = random_netlist(seed, 120);
        let single = simulate_random(&mut GateSim::new(&netlist).unwrap(), 2_000, seed);
        let wide = simulate_random_wide(&mut CompiledSim::new(&netlist).unwrap(), 500, seed);
        for id in netlist.node_ids() {
            let (s, w) = (single.rate(id), wide.rate(id));
            assert!(
                (s - w).abs() < 0.08,
                "case {case} node {id}: single {s:.3} vs wide {w:.3}"
            );
        }
    }
}

#[test]
fn wide_aggregate_equals_sum_of_lane_totals() {
    let netlist = random_netlist(0x77, 100);
    let mut sim = CompiledSim::new(&netlist).unwrap();
    let wide = simulate_random_wide(&mut sim, 300, 9);
    let cell_total: u64 = netlist
        .node_ids()
        .filter(|&id| matches!(netlist.kind(id), moss_netlist::NodeKind::Cell(_)))
        .map(|id| wide.toggles[id.index()])
        .sum();
    let lane_total: u64 = wide.lane_cell_toggles.iter().sum();
    assert_eq!(cell_total, lane_total);
}
