//! Compiled bit-parallel gate-level simulation.
//!
//! [`GateSim`](crate::GateSim) interprets the netlist graph: every gate eval
//! chases `Vec<Vec<NodeId>>` adjacency, dispatches on the cell-kind enum,
//! and the event queue bookkeeping costs more than the logic itself once
//! random stimulus keeps activity high. [`CompiledSim`] instead lowers the
//! levelized netlist *once* into a flat instruction stream and replays that
//! stream obliviously every cycle:
//!
//! - **Instruction stream**: one `u8` truth-table opcode per combinational
//!   cell plus four `u32` slot indices (`[out, a, b, c]`) in a single
//!   contiguous arena, emitted in levelized topological order. Gates with
//!   fewer than three pins pad with a constant-zero slot; their truth table
//!   is replicated so padded inputs are don't-cares.
//! - **Packed values**: every net holds a `u64` word — 64 independent
//!   simulation lanes. One bitwise op evaluates a gate for all lanes.
//! - **Branchless eval**: the canonical single-lane path indexes an 8-bit
//!   truth table with the fanin bits (`tt >> (a | b<<1 | c<<2) & 1`); the
//!   64-lane path evaluates the same table as a three-level mask mux tree.
//!   No enum dispatch, no per-eval allocation, no branches in either loop.
//! - **Fused toggle counting**: [`CompiledSim::step_count`] threads a
//!   [`ToggleAccum`] through the clock-step commit loop, recording toggles
//!   and ones at the write site of every DFF commit, combinational eval,
//!   output mirror, and input sample — the separate post-step counting pass
//!   over a `Vec<bool>` snapshot disappears.
//!
//! # Determinism contract
//!
//! The single-lane path (`settle`, `step`, `step_count`, and
//! [`simulate_random_compiled`](crate::simulate_random_compiled)) is
//! **bit-identical** to `GateSim` under the same stimulus: same two-phase
//! semantics (settle → capture D → commit → settle), same sampled values,
//! same toggle counts. `GateSim` stays the reference oracle; the
//! differential tests in `tests/compiled_equivalence.rs` enforce the
//! contract on random netlists and random stimulus.

use moss_netlist::{CellKind, Levelization, Netlist, NetlistError, NodeId, NodeKind};

/// Number of distinct cell kinds (truth-table/opcode table size).
const NKINDS: usize = CellKind::ALL.len();

/// Bit-planes in the vertical per-lane counter (counts up to `2^16 - 1`
/// additions between flushes).
const LANE_PLANES: usize = 16;

/// The 8-row truth table of a combinational cell over its (up to three)
/// inputs, replicated so unused input positions are don't-cares.
fn truth_table8(kind: CellKind) -> u8 {
    let pins = kind.input_count();
    let mut tt = 0u8;
    for row in 0..8u8 {
        let bits = [row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1];
        if kind.eval(&bits[..pins]) {
            tt |= 1 << row;
        }
    }
    tt
}

/// A compiled bit-parallel simulator for one netlist.
///
/// The canonical single-lane API mirrors [`GateSim`](crate::GateSim)
/// (`set_input` / `set_state` / `settle` / `step` / `value`) and is
/// bit-identical to it. The `_word` / `_wide` variants drive all 64 lanes
/// at once for batched workloads.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
/// use moss_sim::CompiledSim;
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_cell(CellKind::Xor2, "u1", &[a, b])?;
/// let y = nl.add_output("y", g);
/// let mut sim = CompiledSim::new(&nl)?;
/// sim.set_input(a, true);
/// sim.set_input(b, false);
/// sim.settle();
/// assert!(sim.value(y));
/// // 64-lane mode: one op simulates the gate for 64 stimulus streams.
/// sim.set_input_word(a, 0b1100);
/// sim.set_input_word(b, 0b1010);
/// sim.settle_wide();
/// assert_eq!(sim.word(y) & 0xf, 0b0110);
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSim {
    netlist: Netlist,
    /// Truth-table opcode (a `CellKind` index) per instruction.
    ops: Vec<u8>,
    /// Slot arena, stride 4 per instruction: `[out, a, b, c]`.
    slots: Vec<u32>,
    /// Packed net values, one word per node, plus a trailing slot pinned to
    /// zero that pads unused fanin positions.
    words: Vec<u64>,
    /// DFF output (Q) slots, in netlist DFF order.
    dff_q: Vec<u32>,
    /// DFF data (D-driver) slots, aligned with `dff_q`.
    dff_d: Vec<u32>,
    /// Captured next-state words between settle and commit.
    dff_next: Vec<u64>,
    /// Primary-output `(po, driver)` slot pairs.
    outputs: Vec<(u32, u32)>,
    /// Primary-input slots (for fused input toggle counting).
    pi_slots: Vec<u32>,
    /// Per-opcode expanded truth-table masks for the 64-lane mux tree.
    masks: [[u64; 8]; NKINDS],
    /// Per-opcode 8-bit truth tables for the single-lane path.
    tts: [u8; NKINDS],
}

impl CompiledSim {
    /// Compiles a netlist into an instruction stream; all DFFs start at
    /// logic 0 and all inputs low (in every lane), matching
    /// [`GateSim::new`](crate::GateSim::new).
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist is invalid or combinationally
    /// cyclic.
    pub fn new(netlist: &Netlist) -> Result<CompiledSim, NetlistError> {
        if moss_faults::fire(moss_faults::Site::Sim, moss_faults::key(netlist.name())) {
            return Err(NetlistError::FaultInjected { site: "sim" });
        }
        let levels = Levelization::of(netlist)?;
        let n = netlist.node_count();
        let zero_slot = n as u32;
        let arena = netlist.fanin_arena();

        let mut masks = [[0u64; 8]; NKINDS];
        let mut tts = [0u8; NKINDS];
        for kind in CellKind::ALL {
            if kind.is_sequential() {
                continue;
            }
            let tt = truth_table8(kind);
            tts[kind.index()] = tt;
            for (row, mask) in masks[kind.index()].iter_mut().enumerate() {
                *mask = if tt >> row & 1 == 1 { u64::MAX } else { 0 };
            }
        }

        let topo = levels.topo_combinational();
        let mut ops = Vec::with_capacity(topo.len());
        let mut slots = Vec::with_capacity(topo.len() * 4);
        for &id in topo {
            let kind = match netlist.kind(id) {
                NodeKind::Cell(k) => k,
                _ => unreachable!("topo_combinational yields cells only"),
            };
            ops.push(kind.index() as u8);
            slots.push(id.index() as u32);
            let fanins = arena.fanins(id);
            for pin in 0..3 {
                slots.push(fanins.get(pin).map_or(zero_slot, |f| f.index() as u32));
            }
        }

        let dffs = netlist.dffs();
        let dff_q: Vec<u32> = dffs.iter().map(|d| d.index() as u32).collect();
        let dff_d: Vec<u32> = dffs
            .iter()
            .map(|&d| arena.fanins(d)[0].index() as u32)
            .collect();
        let outputs: Vec<(u32, u32)> = netlist
            .primary_outputs()
            .iter()
            .map(|&po| (po.index() as u32, arena.fanins(po)[0].index() as u32))
            .collect();
        let pi_slots: Vec<u32> = netlist
            .primary_inputs()
            .iter()
            .map(|pi| pi.index() as u32)
            .collect();

        let mut sim = CompiledSim {
            netlist: netlist.clone(),
            ops,
            slots,
            words: vec![0u64; n + 1],
            dff_next: vec![0u64; dff_q.len()],
            dff_q,
            dff_d,
            outputs,
            pi_slots,
            masks,
            tts,
        };
        sim.settle_wide();
        Ok(sim)
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Current lane-0 logic value of a node.
    pub fn value(&self, id: NodeId) -> bool {
        self.words[id.index()] & 1 == 1
    }

    /// Current packed 64-lane word of a node.
    pub fn word(&self, id: NodeId) -> u64 {
        self.words[id.index()]
    }

    /// All packed words, indexed by node id.
    pub fn words(&self) -> &[u64] {
        &self.words[..self.netlist.node_count()]
    }

    /// Lane-0 values of all nodes (for differential checks against
    /// [`GateSim::values`](crate::GateSim::values)).
    pub fn values_lane0(&self) -> Vec<bool> {
        self.words().iter().map(|&w| w & 1 == 1).collect()
    }

    /// Drives a primary input on lane 0 (lanes 1–63 are cleared).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a primary input.
    pub fn set_input(&mut self, id: NodeId, value: bool) {
        self.set_input_word(id, value as u64);
    }

    /// Drives a primary input with a packed 64-lane word.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a primary input.
    pub fn set_input_word(&mut self, id: NodeId, word: u64) {
        assert_eq!(
            self.netlist.kind(id),
            NodeKind::PrimaryInput,
            "{id} is not a primary input"
        );
        self.words[id.index()] = word;
    }

    /// Forces a DFF's state in every lane (e.g. applying a reset value).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a DFF.
    pub fn set_state(&mut self, id: NodeId, value: bool) {
        self.set_state_word(id, if value { u64::MAX } else { 0 });
    }

    /// Forces a DFF's state with a packed 64-lane word.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a DFF.
    pub fn set_state_word(&mut self, id: NodeId, word: u64) {
        assert!(self.netlist.kind(id).is_dff(), "{id} is not a DFF");
        self.words[id.index()] = word;
    }

    /// Evaluates all combinational logic on lane 0 (the canonical path).
    ///
    /// Writes each combinational node's word as `0` or `1`, so lanes 1–63
    /// of combinational nets are cleared; re-run [`settle_wide`] to restore
    /// full-word state.
    ///
    /// ## Termination
    ///
    /// Always terminates: the compiled program is a straight-line
    /// instruction stream in levelized topological order, and
    /// [`CompiledSim::new`] rejects combinational cycles
    /// ([`NetlistError::CombinationalCycle`]) before compiling.
    ///
    /// [`settle_wide`]: CompiledSim::settle_wide
    pub fn settle(&mut self) {
        self.eval_pass::<false>(None);
    }

    /// Evaluates all combinational logic across all 64 lanes.
    pub fn settle_wide(&mut self) {
        self.eval_pass::<true>(None);
    }

    /// Advances one clock edge on lane 0: settle, capture D pins, commit,
    /// settle — the same two-phase semantics as
    /// [`GateSim::step`](crate::GateSim::step).
    pub fn step(&mut self) {
        self.eval_pass::<false>(None);
        self.capture_commit::<false>(None);
        self.eval_pass::<false>(None);
    }

    /// Advances one clock edge across all 64 lanes.
    pub fn step_wide(&mut self) {
        self.eval_pass::<true>(None);
        self.capture_commit::<true>(None);
        self.eval_pass::<true>(None);
    }

    /// Single-lane clock step with fused toggle counting.
    ///
    /// Equivalent to [`step`](CompiledSim::step) followed by comparing every
    /// node against the previous cycle's sample, but the comparison happens
    /// at each node's write site inside the step itself. Counts exactly
    /// match [`simulate_random`](crate::simulate_random)'s per-cycle
    /// sampled-toggle semantics.
    pub fn step_count(&mut self, acc: &mut ToggleAccum) {
        self.step_counted::<false>(acc);
    }

    /// 64-lane clock step with fused toggle counting (population counts
    /// across all lanes, plus per-lane cell-toggle totals).
    pub fn step_count_wide(&mut self, acc: &mut ToggleAccum) {
        self.step_counted::<true>(acc);
    }

    fn step_counted<const WIDE: bool>(&mut self, acc: &mut ToggleAccum) {
        // Pre-edge settle: propagates the new inputs; values here are
        // intermediate, so no counting.
        self.eval_pass::<WIDE>(None);
        self.capture_commit::<WIDE>(Some(acc));
        // Post-edge settle produces the cycle's sampled values: count each
        // combinational cell and output mirror as it is written.
        self.eval_pass::<WIDE>(Some(acc));
        for &pi in &self.pi_slots {
            acc.record::<WIDE>(pi as usize, self.words[pi as usize]);
        }
        acc.cycles += 1;
    }

    /// Replays the instruction stream in levelized order, then mirrors
    /// primary outputs from their drivers.
    fn eval_pass<const WIDE: bool>(&mut self, mut acc: Option<&mut ToggleAccum>) {
        let CompiledSim {
            ops,
            slots,
            words,
            outputs,
            masks,
            tts,
            ..
        } = self;
        let mut s = 0usize;
        for &op in ops.iter() {
            let out = slots[s] as usize;
            let new = if WIDE {
                let a = words[slots[s + 1] as usize];
                let b = words[slots[s + 2] as usize];
                let c = words[slots[s + 3] as usize];
                // Three-level mux tree over the expanded truth-table masks:
                // branchless, and one op covers all 64 lanes.
                let m = &masks[op as usize];
                let na = !a;
                let s0 = (m[1] & a) | (m[0] & na);
                let s1 = (m[3] & a) | (m[2] & na);
                let s2 = (m[5] & a) | (m[4] & na);
                let s3 = (m[7] & a) | (m[6] & na);
                let nb = !b;
                let u0 = (s1 & b) | (s0 & nb);
                let u1 = (s3 & b) | (s2 & nb);
                (u1 & c) | (u0 & !c)
            } else {
                // Single lane: the fanin bits index the 8-bit truth table
                // directly.
                let row = (words[slots[s + 1] as usize] & 1)
                    | ((words[slots[s + 2] as usize] & 1) << 1)
                    | ((words[slots[s + 3] as usize] & 1) << 2);
                (tts[op as usize] as u64 >> row) & 1
            };
            words[out] = new;
            if let Some(acc) = acc.as_deref_mut() {
                acc.record_cell::<WIDE>(out, new);
            }
            s += 4;
        }
        for &(po, drv) in outputs.iter() {
            let v = words[drv as usize];
            words[po as usize] = v;
            if let Some(acc) = acc.as_deref_mut() {
                acc.record::<WIDE>(po as usize, v);
            }
        }
    }

    /// Captures every DFF's D word from the settled logic, then commits all
    /// captures simultaneously (two-phase clock edge).
    fn capture_commit<const WIDE: bool>(&mut self, mut acc: Option<&mut ToggleAccum>) {
        let CompiledSim {
            dff_q,
            dff_d,
            dff_next,
            words,
            ..
        } = self;
        for (next, &d) in dff_next.iter_mut().zip(dff_d.iter()) {
            *next = words[d as usize];
        }
        for (&q, &next) in dff_q.iter().zip(dff_next.iter()) {
            words[q as usize] = next;
            if let Some(acc) = acc.as_deref_mut() {
                acc.record_cell::<WIDE>(q as usize, next);
            }
        }
    }
}

/// Streaming per-node toggle/ones counters fused into
/// [`CompiledSim::step_count`] / [`CompiledSim::step_count_wide`].
///
/// Holds the previous cycle's sampled words internally; construct one right
/// after applying resets and settling, then thread it through every step.
/// In wide mode a bit-sliced vertical counter additionally accumulates
/// per-lane toggle totals over all standard cells, which the
/// [`WideToggleReport`](crate::WideToggleReport) turns into per-lane mean
/// activity for variance/confidence estimation.
#[derive(Debug, Clone)]
pub struct ToggleAccum {
    pub(crate) cycles: u64,
    prev: Vec<u64>,
    pub(crate) toggles: Vec<u64>,
    pub(crate) ones: Vec<u64>,
    /// Vertical (bit-sliced) counter planes: plane `k` holds bit `k` of a
    /// per-lane running count of cell toggles.
    lane_planes: [u64; LANE_PLANES],
    lane_adds: u32,
    lane_totals: [u64; 64],
}

impl ToggleAccum {
    /// Starts counting from `sim`'s current values (the cycle-0 reference
    /// sample).
    pub fn new(sim: &CompiledSim) -> ToggleAccum {
        let n = sim.netlist().node_count();
        ToggleAccum {
            cycles: 0,
            prev: sim.words().to_vec(),
            toggles: vec![0u64; n],
            ones: vec![0u64; n],
            lane_planes: [0u64; LANE_PLANES],
            lane_adds: 0,
            lane_totals: [0u64; 64],
        }
    }

    /// Cycles counted so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-node toggle counts (lane 0 in single-lane mode, summed across
    /// lanes in wide mode).
    pub fn toggles(&self) -> &[u64] {
        &self.toggles
    }

    /// Per-node counts of cycles sampled at logic 1.
    pub fn ones(&self) -> &[u64] {
        &self.ones
    }

    /// Per-lane toggle totals summed over all standard cells (wide mode
    /// only; all zeros for single-lane runs).
    pub fn lane_cell_toggles(&mut self) -> [u64; 64] {
        self.flush_lanes();
        self.lane_totals
    }

    #[inline(always)]
    fn record<const WIDE: bool>(&mut self, slot: usize, new: u64) {
        let diff = new ^ self.prev[slot];
        self.prev[slot] = new;
        if WIDE {
            self.toggles[slot] += u64::from(diff.count_ones());
            self.ones[slot] += u64::from(new.count_ones());
        } else {
            self.toggles[slot] += diff & 1;
            self.ones[slot] += new & 1;
        }
    }

    /// Like [`record`](Self::record), but for standard-cell nodes: wide
    /// mode also feeds the per-lane vertical counter.
    #[inline(always)]
    fn record_cell<const WIDE: bool>(&mut self, slot: usize, new: u64) {
        let diff = new ^ self.prev[slot];
        self.prev[slot] = new;
        if WIDE {
            self.toggles[slot] += u64::from(diff.count_ones());
            self.ones[slot] += u64::from(new.count_ones());
            self.add_lane(diff);
        } else {
            self.toggles[slot] += diff & 1;
            self.ones[slot] += new & 1;
        }
    }

    /// Adds one 0/1-per-lane bit vector to the vertical counter: ripple
    /// carry across the planes, amortized ~2 ops per addition.
    #[inline(always)]
    fn add_lane(&mut self, mut x: u64) {
        for plane in self.lane_planes.iter_mut() {
            let carry = *plane & x;
            *plane ^= x;
            x = carry;
            if x == 0 {
                break;
            }
        }
        self.lane_adds += 1;
        if self.lane_adds == (1 << LANE_PLANES) - 1 {
            self.flush_lanes();
        }
    }

    /// Drains the vertical counter planes into the 64 per-lane totals.
    fn flush_lanes(&mut self) {
        for (k, plane) in self.lane_planes.iter_mut().enumerate() {
            if *plane == 0 {
                continue;
            }
            for (lane, total) in self.lane_totals.iter_mut().enumerate() {
                *total += (*plane >> lane & 1) << k;
            }
            *plane = 0;
        }
        self.lane_adds = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_replicate_dont_cares() {
        // Inverter depends only on input a: rows with the same a bit agree.
        let tt = truth_table8(CellKind::Inv);
        for row in 0..8 {
            assert_eq!(tt >> row & 1, u8::from(row & 1 == 0), "row {row}");
        }
        assert_eq!(truth_table8(CellKind::Tie0), 0x00);
        assert_eq!(truth_table8(CellKind::Tie1), 0xff);
        assert_eq!(truth_table8(CellKind::And2) & 0x0f, 0b1000);
    }

    #[test]
    fn counter_behaviour_matches_rtl_semantics() {
        // 2-bit counter: q0' = !q0 ; q1' = q1 ^ q0 (same circuit as the
        // GateSim unit test).
        let mut nl = Netlist::new("cnt2");
        let tie = nl.add_input("tie_placeholder");
        let q0 = nl.add_cell(CellKind::Dff, "q0", &[tie]).unwrap();
        let q1 = nl.add_cell(CellKind::Dff, "q1", &[tie]).unwrap();
        let n0 = nl.add_cell(CellKind::Inv, "u0", &[q0]).unwrap();
        let n1 = nl.add_cell(CellKind::Xor2, "u1", &[q1, q0]).unwrap();
        nl.replace_fanin(q0, 0, n0).unwrap();
        nl.replace_fanin(q1, 0, n1).unwrap();
        let o0 = nl.add_output("o0", q0);
        let o1 = nl.add_output("o1", q1);

        let mut sim = CompiledSim::new(&nl).unwrap();
        let mut expected = 0u8;
        for _ in 0..10 {
            sim.step();
            expected = (expected + 1) % 4;
            let got = sim.value(o0) as u8 | ((sim.value(o1) as u8) << 1);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn wide_counter_runs_all_lanes_in_lockstep() {
        let mut nl = Netlist::new("t");
        let tie = nl.add_input("tie");
        let q0 = nl.add_cell(CellKind::Dff, "q0", &[tie]).unwrap();
        let n0 = nl.add_cell(CellKind::Inv, "u0", &[q0]).unwrap();
        nl.replace_fanin(q0, 0, n0).unwrap();
        let y = nl.add_output("y", q0);
        let mut sim = CompiledSim::new(&nl).unwrap();
        // A toggle flop flips every cycle in every lane simultaneously.
        sim.step_wide();
        assert_eq!(sim.word(y), u64::MAX);
        sim.step_wide();
        assert_eq!(sim.word(y), 0);
    }

    #[test]
    fn wide_lanes_are_independent() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::And2, "u", &[a, b]).unwrap();
        let y = nl.add_output("y", g);
        let mut sim = CompiledSim::new(&nl).unwrap();
        sim.set_input_word(a, 0xdead_beef_0123_4567);
        sim.set_input_word(b, 0xffff_0000_ffff_0000);
        sim.settle_wide();
        assert_eq!(sim.word(y), 0xdead_beef_0123_4567 & 0xffff_0000_ffff_0000);
    }

    #[test]
    fn tie_cells_hold_constants_in_every_lane() {
        let mut nl = Netlist::new("t");
        let _a = nl.add_input("a");
        let t1 = nl.add_cell(CellKind::Tie1, "t1", &[]).unwrap();
        let t0 = nl.add_cell(CellKind::Tie0, "t0", &[]).unwrap();
        let g = nl.add_cell(CellKind::And2, "u", &[t1, t0]).unwrap();
        let y = nl.add_output("y", g);
        let sim = CompiledSim::new(&nl).unwrap();
        assert_eq!(sim.word(t1), u64::MAX);
        assert_eq!(sim.word(t0), 0);
        assert_eq!(sim.word(y), 0);
        assert!(sim.value(t1));
    }

    #[test]
    fn set_state_applies_reset() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "r0", &[a]).unwrap();
        let y = nl.add_output("y", ff);
        let mut sim = CompiledSim::new(&nl).unwrap();
        sim.set_state(ff, true);
        sim.settle();
        assert!(sim.value(y));
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn set_input_rejects_cells() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let g = nl.add_cell(CellKind::Inv, "u", &[a]).unwrap();
        nl.add_output("y", g);
        let mut sim = CompiledSim::new(&nl).unwrap();
        sim.set_input(g, true);
    }

    #[test]
    fn vertical_lane_counter_counts_exactly() {
        let mut nl = Netlist::new("t");
        let _ = nl.add_input("a");
        let sim = CompiledSim::new(&nl).unwrap();
        let mut acc = ToggleAccum::new(&sim);
        // Lane L receives exactly L additions of a set bit.
        for round in 0..64u64 {
            let word = !0u64 << round;
            acc.add_lane(word);
        }
        let totals = acc.lane_cell_toggles();
        for (lane, &total) in totals.iter().enumerate() {
            assert_eq!(total, lane as u64 + 1, "lane {lane}");
        }
    }
}
