//! # moss-sim
//!
//! Event-driven gate-level simulation for the MOSS reproduction — the
//! stand-in for Synopsys VCS in the paper's ground-truth pipeline (§V-A):
//! toggle rates are collected from cycle simulations with random inputs.
//!
//! - [`GateSim`]: zero-delay, two-phase cycle simulator with event-driven
//!   settling (only gates whose fanins changed are re-evaluated) — the
//!   reference oracle;
//! - [`CompiledSim`]: the production engine — the levelized netlist lowered
//!   once into a flat, branchless instruction stream over packed 64-lane
//!   `u64` net values, with toggle counting fused into the clock step.
//!   Single-lane results are bit-identical to [`GateSim`]; the 64-lane
//!   batch mode runs 64 independent stimulus streams per bitwise op;
//! - [`simulate_random`] / [`simulate_random_compiled`] / [`toggle_rates`]:
//!   random-stimulus runs producing per-cell [`ToggleReport`]s, the
//!   supervision signal for the paper's toggle-rate prediction task;
//! - [`simulate_random_wide`] / [`toggle_rates_wide`]: 64-lane batched runs
//!   producing [`WideToggleReport`]s with per-lane activity statistics for
//!   variance/confidence estimation.
//!
//! ## Example
//!
//! ```
//! use moss_netlist::{CellKind, Netlist};
//! use moss_sim::toggle_rates;
//!
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
//! nl.add_output("y", g);
//! let report = toggle_rates(&nl, &[], 2_000, 42)?;
//! assert!(report.rate(g) > 0.3);
//! # Ok::<(), moss_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compiled;
mod saif;
mod sim;
mod toggle;
mod vcd;

pub use compiled::{CompiledSim, ToggleAccum};
pub use saif::write_saif;
pub use sim::GateSim;
pub use toggle::{
    simulate_random, simulate_random_compiled, simulate_random_wide, toggle_rates,
    toggle_rates_wide, ToggleReport, WideToggleReport,
};
pub use vcd::VcdWriter;
