//! # moss-sim
//!
//! Event-driven gate-level simulation for the MOSS reproduction — the
//! stand-in for Synopsys VCS in the paper's ground-truth pipeline (§V-A):
//! toggle rates are collected from cycle simulations with random inputs.
//!
//! - [`GateSim`]: zero-delay, two-phase cycle simulator with event-driven
//!   settling (only gates whose fanins changed are re-evaluated);
//! - [`simulate_random`] / [`toggle_rates`]: random-stimulus runs producing
//!   per-cell [`ToggleReport`]s, the supervision signal for the paper's
//!   toggle-rate prediction task.
//!
//! ## Example
//!
//! ```
//! use moss_netlist::{CellKind, Netlist};
//! use moss_sim::toggle_rates;
//!
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
//! nl.add_output("y", g);
//! let report = toggle_rates(&nl, &[], 2_000, 42)?;
//! assert!(report.rate(g) > 0.3);
//! # Ok::<(), moss_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod saif;
mod sim;
mod toggle;
mod vcd;

pub use saif::write_saif;
pub use sim::GateSim;
pub use toggle::{simulate_random, toggle_rates, ToggleReport};
pub use vcd::VcdWriter;
