//! Random-stimulus simulation and toggle-rate ground truth.
//!
//! Replaces the paper's VCS flow: "Toggle Rate is derived from VCS
//! simulations over 60,000 cycles with random inputs" (§V-A). The toggle
//! rate of a node is the fraction of clock cycles on which its sampled value
//! changes.

use moss_netlist::{Netlist, NetlistError, NodeId, NodeKind};
use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};

use crate::compiled::{CompiledSim, ToggleAccum};
use crate::sim::GateSim;

/// Per-node toggle statistics from a random-stimulus run.
#[derive(Debug, Clone, PartialEq)]
pub struct ToggleReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Per-node toggle counts, indexed by node id.
    pub toggles: Vec<u64>,
    /// Per-node count of cycles sampled at logic 1 (for signal probability
    /// and SAIF `T1` durations).
    pub ones: Vec<u64>,
}

impl ToggleReport {
    /// Toggle rate of one node: toggles per cycle in `[0, 1]`.
    pub fn rate(&self, id: NodeId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[id.index()] as f64 / self.cycles as f64
        }
    }

    /// All rates, indexed by node id.
    pub fn rates(&self) -> Vec<f64> {
        (0..self.toggles.len())
            .map(|i| self.rate(NodeId::new(i)))
            .collect()
    }

    /// Signal probability of one node: fraction of cycles sampled at 1.
    pub fn probability(&self, id: NodeId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ones[id.index()] as f64 / self.cycles as f64
        }
    }

    /// Mean toggle rate across standard cells (excludes ports).
    pub fn mean_cell_rate(&self, netlist: &Netlist) -> f64 {
        let cells: Vec<NodeId> = netlist
            .node_ids()
            .filter(|&id| matches!(netlist.kind(id), NodeKind::Cell(_)))
            .collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().map(|&c| self.rate(c)).sum::<f64>() / cells.len() as f64
    }
}

/// Simulates `cycles` clock cycles with uniform-random primary inputs and
/// counts per-node toggles.
///
/// Input values are redrawn every cycle; initial DFF state is whatever `sim`
/// currently holds (apply resets with [`GateSim::set_state`] first).
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
/// use moss_sim::{GateSim, simulate_random};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
/// nl.add_output("y", g);
/// let mut sim = GateSim::new(&nl)?;
/// let report = simulate_random(&mut sim, 1000, 42);
/// // A free-running random input toggles roughly half the time.
/// assert!((report.rate(a) - 0.5).abs() < 0.1);
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
pub fn simulate_random(sim: &mut GateSim, cycles: u64, seed: u64) -> ToggleReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = sim.netlist().primary_inputs();
    let n = sim.netlist().node_count();
    let mut toggles = vec![0u64; n];
    let mut ones = vec![0u64; n];
    let mut prev: Vec<bool> = sim.values().to_vec();
    for _ in 0..cycles {
        for &pi in &inputs {
            sim.set_input(pi, rng.gen_bool(0.5));
        }
        sim.step();
        let cur = sim.values();
        for i in 0..n {
            if cur[i] != prev[i] {
                toggles[i] += 1;
            }
            if cur[i] {
                ones[i] += 1;
            }
        }
        prev.copy_from_slice(cur);
    }
    ToggleReport {
        cycles,
        toggles,
        ones,
    }
}

/// Like [`simulate_random`], but on the compiled engine with fused toggle
/// counting — bit-identical results (same PRNG stream, same sampled
/// semantics), several times the throughput.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
/// use moss_sim::{simulate_random, simulate_random_compiled, CompiledSim, GateSim};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_cell(CellKind::Xor2, "u1", &[a, a])?;
/// nl.add_output("y", g);
/// let slow = simulate_random(&mut GateSim::new(&nl)?, 500, 9);
/// let fast = simulate_random_compiled(&mut CompiledSim::new(&nl)?, 500, 9);
/// assert_eq!(slow, fast);
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
pub fn simulate_random_compiled(sim: &mut CompiledSim, cycles: u64, seed: u64) -> ToggleReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = sim.netlist().primary_inputs();
    let mut acc = ToggleAccum::new(sim);
    for _ in 0..cycles {
        for &pi in &inputs {
            sim.set_input(pi, rng.gen_bool(0.5));
        }
        sim.step_count(&mut acc);
    }
    ToggleReport {
        cycles: acc.cycles(),
        toggles: acc.toggles().to_vec(),
        ones: acc.ones().to_vec(),
    }
}

/// Per-node toggle statistics from a 64-lane batched random-stimulus run.
///
/// Every lane is an independent stimulus stream; counts aggregate over all
/// lanes, so `cycles` simulated cycles yield `cycles * 64` lane-cycles of
/// samples. The per-lane cell-toggle totals expose cross-lane variance for
/// confidence estimation at a fraction of the single-lane cost.
#[derive(Debug, Clone, PartialEq)]
pub struct WideToggleReport {
    /// Cycles simulated per lane.
    pub cycles: u64,
    /// Number of parallel lanes (one per bit of the packed words).
    pub lanes: u32,
    /// Per-node toggle counts summed across all lanes.
    pub toggles: Vec<u64>,
    /// Per-node counts of lane-cycles sampled at logic 1.
    pub ones: Vec<u64>,
    /// Per-lane toggle totals summed over all standard cells.
    pub lane_cell_toggles: Vec<u64>,
}

impl WideToggleReport {
    /// Total lane-cycles sampled (`cycles * lanes`).
    pub fn lane_cycles(&self) -> u64 {
        self.cycles * u64::from(self.lanes)
    }

    /// Toggle rate of one node, averaged over all lanes.
    pub fn rate(&self, id: NodeId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[id.index()] as f64 / self.lane_cycles() as f64
        }
    }

    /// Signal probability of one node, averaged over all lanes.
    pub fn probability(&self, id: NodeId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ones[id.index()] as f64 / self.lane_cycles() as f64
        }
    }

    /// Mean toggle rate across standard cells (excludes ports).
    pub fn mean_cell_rate(&self, netlist: &Netlist) -> f64 {
        let cells = netlist.cell_count();
        if cells == 0 || self.cycles == 0 {
            return 0.0;
        }
        let total: u64 = netlist
            .node_ids()
            .filter(|&id| matches!(netlist.kind(id), NodeKind::Cell(_)))
            .map(|id| self.toggles[id.index()])
            .sum();
        total as f64 / (self.lane_cycles() as f64 * cells as f64)
    }

    /// Each lane's mean cell toggle rate — 64 independent estimates of the
    /// circuit's activity.
    pub fn lane_mean_cell_rates(&self, netlist: &Netlist) -> Vec<f64> {
        let cells = netlist.cell_count();
        if cells == 0 || self.cycles == 0 {
            return vec![0.0; self.lanes as usize];
        }
        let denom = self.cycles as f64 * cells as f64;
        self.lane_cell_toggles
            .iter()
            .map(|&t| t as f64 / denom)
            .collect()
    }

    /// Mean cell activity and its standard error across lanes, for
    /// confidence intervals on how many cycles a toggle estimate needs.
    pub fn mean_cell_rate_confidence(&self, netlist: &Netlist) -> (f64, f64) {
        let rates = self.lane_mean_cell_rates(netlist);
        let n = rates.len() as f64;
        let mean = rates.iter().sum::<f64>() / n;
        let var = rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / (n - 1.0).max(1.0);
        (mean, (var / n).sqrt())
    }
}

/// Runs `cycles` clock cycles of 64 independent uniform-random stimulus
/// streams simultaneously and aggregates per-node toggle counts.
///
/// One full-word bitwise op evaluates each gate for all 64 lanes, so the
/// aggregate lane-cycle throughput is over an order of magnitude beyond the
/// single-lane path. Lane streams draw from the same seeded PRNG but are
/// distinct from the single-lane [`simulate_random`] stream.
pub fn simulate_random_wide(sim: &mut CompiledSim, cycles: u64, seed: u64) -> WideToggleReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = sim.netlist().primary_inputs();
    let mut acc = ToggleAccum::new(sim);
    for _ in 0..cycles {
        for &pi in &inputs {
            sim.set_input_word(pi, rng.next_u64());
        }
        sim.step_count_wide(&mut acc);
    }
    let lane_cell_toggles = acc.lane_cell_toggles().to_vec();
    WideToggleReport {
        cycles: acc.cycles(),
        lanes: 64,
        toggles: acc.toggles().to_vec(),
        ones: acc.ones().to_vec(),
        lane_cell_toggles,
    }
}

/// Convenience: build a simulator, apply DFF reset states, and run a random
/// toggle-rate collection in one call.
///
/// Runs on [`CompiledSim`]; the result is bit-identical to driving
/// [`GateSim`] with [`simulate_random`] (the differential tests pin this).
///
/// `resets` pairs DFF node ids with their initial values.
///
/// # Errors
///
/// Propagates netlist validation errors from [`CompiledSim::new`].
pub fn toggle_rates(
    netlist: &Netlist,
    resets: &[(NodeId, bool)],
    cycles: u64,
    seed: u64,
) -> Result<ToggleReport, NetlistError> {
    let mut sim = CompiledSim::new(netlist)?;
    for &(dff, v) in resets {
        sim.set_state(dff, v);
    }
    sim.settle();
    Ok(simulate_random_compiled(&mut sim, cycles, seed))
}

/// [`toggle_rates`], batched: 64 independent stimulus streams in one run.
///
/// # Errors
///
/// Propagates netlist validation errors from [`CompiledSim::new`].
pub fn toggle_rates_wide(
    netlist: &Netlist,
    resets: &[(NodeId, bool)],
    cycles: u64,
    seed: u64,
) -> Result<WideToggleReport, NetlistError> {
    let mut sim = CompiledSim::new(netlist)?;
    for &(dff, v) in resets {
        sim.set_state(dff, v);
    }
    sim.settle_wide();
    Ok(simulate_random_wide(&mut sim, cycles, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_netlist::CellKind;

    #[test]
    fn toggle_flop_toggles_every_cycle() {
        // q' = !q toggles once per cycle regardless of inputs.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u", &[ff]).unwrap();
        nl.replace_fanin(ff, 0, inv).unwrap();
        nl.add_output("y", ff);
        let report = toggle_rates(&nl, &[], 100, 1).unwrap();
        assert_eq!(report.rate(ff), 1.0);
        assert_eq!(report.rate(inv), 1.0);
    }

    #[test]
    fn constant_nodes_never_toggle() {
        let mut nl = Netlist::new("t");
        let _a = nl.add_input("a");
        let t1 = nl.add_cell(CellKind::Tie1, "t1", &[]).unwrap();
        nl.add_output("y", t1);
        let report = toggle_rates(&nl, &[], 200, 7).unwrap();
        assert_eq!(report.rate(t1), 0.0);
    }

    #[test]
    fn xor_of_independent_inputs_toggles_about_half() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::Xor2, "u", &[a, b]).unwrap();
        nl.add_output("y", g);
        let report = toggle_rates(&nl, &[], 4000, 3).unwrap();
        assert!(
            (report.rate(g) - 0.5).abs() < 0.05,
            "rate {}",
            report.rate(g)
        );
    }

    #[test]
    fn and_gate_toggles_less_than_inputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::And2, "u", &[a, b]).unwrap();
        nl.add_output("y", g);
        let report = toggle_rates(&nl, &[], 4000, 9).unwrap();
        // AND output is 1 only 1/4 of the time: toggle probability 2*1/4*3/4.
        assert!((report.rate(g) - 0.375).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        nl.add_output("y", ff);
        let r1 = toggle_rates(&nl, &[], 500, 11).unwrap();
        let r2 = toggle_rates(&nl, &[], 500, 11).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn compiled_matches_gatesim_on_toggle_flop() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u", &[ff]).unwrap();
        nl.replace_fanin(ff, 0, inv).unwrap();
        nl.add_output("y", ff);
        let reference = simulate_random(&mut GateSim::new(&nl).unwrap(), 300, 21);
        let compiled = simulate_random_compiled(&mut CompiledSim::new(&nl).unwrap(), 300, 21);
        assert_eq!(reference, compiled);
    }

    #[test]
    fn wide_toggle_flop_toggles_in_every_lane() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u", &[ff]).unwrap();
        nl.replace_fanin(ff, 0, inv).unwrap();
        nl.add_output("y", ff);
        let report = toggle_rates_wide(&nl, &[], 100, 5).unwrap();
        assert_eq!(report.lane_cycles(), 6_400);
        assert_eq!(report.rate(ff), 1.0);
        assert_eq!(report.rate(inv), 1.0);
        // Both cells toggle once per cycle in every lane.
        for (lane, &t) in report.lane_cell_toggles.iter().enumerate() {
            assert_eq!(t, 2 * report.cycles, "lane {lane}");
        }
    }

    #[test]
    fn wide_report_agrees_with_single_lane_statistics() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::Xor2, "u", &[a, b]).unwrap();
        nl.add_output("y", g);
        let wide = toggle_rates_wide(&nl, &[], 500, 3).unwrap();
        // 32k lane-cycles of XOR of independent inputs: rate ~0.5, with a
        // much tighter estimate than 500 single-lane cycles would give.
        assert!((wide.rate(g) - 0.5).abs() < 0.02, "rate {}", wide.rate(g));
        let (mean, stderr) = wide.mean_cell_rate_confidence(&nl);
        assert!((mean - wide.mean_cell_rate(&nl)).abs() < 1e-12);
        assert!(stderr > 0.0 && stderr < 0.05, "stderr {stderr}");
    }

    #[test]
    fn wide_report_deterministic_given_seed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        nl.add_output("y", ff);
        let r1 = toggle_rates_wide(&nl, &[], 200, 11).unwrap();
        let r2 = toggle_rates_wide(&nl, &[], 200, 11).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn reset_state_affects_first_cycle() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        let y = nl.add_output("y", ff);
        let mut sim = GateSim::new(&nl).unwrap();
        sim.set_state(ff, true);
        sim.settle();
        assert!(sim.value(y));
    }
}
