//! Random-stimulus simulation and toggle-rate ground truth.
//!
//! Replaces the paper's VCS flow: "Toggle Rate is derived from VCS
//! simulations over 60,000 cycles with random inputs" (§V-A). The toggle
//! rate of a node is the fraction of clock cycles on which its sampled value
//! changes.

use moss_netlist::{Netlist, NetlistError, NodeId, NodeKind};
use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};

use crate::sim::GateSim;

/// Per-node toggle statistics from a random-stimulus run.
#[derive(Debug, Clone, PartialEq)]
pub struct ToggleReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Per-node toggle counts, indexed by node id.
    pub toggles: Vec<u64>,
    /// Per-node count of cycles sampled at logic 1 (for signal probability
    /// and SAIF `T1` durations).
    pub ones: Vec<u64>,
}

impl ToggleReport {
    /// Toggle rate of one node: toggles per cycle in `[0, 1]`.
    pub fn rate(&self, id: NodeId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[id.index()] as f64 / self.cycles as f64
        }
    }

    /// All rates, indexed by node id.
    pub fn rates(&self) -> Vec<f64> {
        (0..self.toggles.len())
            .map(|i| self.rate(NodeId::new(i)))
            .collect()
    }

    /// Signal probability of one node: fraction of cycles sampled at 1.
    pub fn probability(&self, id: NodeId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ones[id.index()] as f64 / self.cycles as f64
        }
    }

    /// Mean toggle rate across standard cells (excludes ports).
    pub fn mean_cell_rate(&self, netlist: &Netlist) -> f64 {
        let cells: Vec<NodeId> = netlist
            .node_ids()
            .filter(|&id| matches!(netlist.kind(id), NodeKind::Cell(_)))
            .collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().map(|&c| self.rate(c)).sum::<f64>() / cells.len() as f64
    }
}

/// Simulates `cycles` clock cycles with uniform-random primary inputs and
/// counts per-node toggles.
///
/// Input values are redrawn every cycle; initial DFF state is whatever `sim`
/// currently holds (apply resets with [`GateSim::set_state`] first).
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
/// use moss_sim::{GateSim, simulate_random};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
/// nl.add_output("y", g);
/// let mut sim = GateSim::new(&nl)?;
/// let report = simulate_random(&mut sim, 1000, 42);
/// // A free-running random input toggles roughly half the time.
/// assert!((report.rate(a) - 0.5).abs() < 0.1);
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
pub fn simulate_random(sim: &mut GateSim, cycles: u64, seed: u64) -> ToggleReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = sim.netlist().primary_inputs();
    let n = sim.netlist().node_count();
    let mut toggles = vec![0u64; n];
    let mut ones = vec![0u64; n];
    let mut prev: Vec<bool> = sim.values().to_vec();
    for _ in 0..cycles {
        for &pi in &inputs {
            sim.set_input(pi, rng.gen_bool(0.5));
        }
        sim.step();
        let cur = sim.values();
        for i in 0..n {
            if cur[i] != prev[i] {
                toggles[i] += 1;
            }
            if cur[i] {
                ones[i] += 1;
            }
        }
        prev.copy_from_slice(cur);
    }
    ToggleReport {
        cycles,
        toggles,
        ones,
    }
}

/// Convenience: build a simulator, apply DFF reset states, and run a random
/// toggle-rate collection in one call.
///
/// `resets` pairs DFF node ids with their initial values.
///
/// # Errors
///
/// Propagates netlist validation errors from [`GateSim::new`].
pub fn toggle_rates(
    netlist: &Netlist,
    resets: &[(NodeId, bool)],
    cycles: u64,
    seed: u64,
) -> Result<ToggleReport, NetlistError> {
    let mut sim = GateSim::new(netlist)?;
    for &(dff, v) in resets {
        sim.set_state(dff, v);
    }
    sim.settle();
    Ok(simulate_random(&mut sim, cycles, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_netlist::CellKind;

    #[test]
    fn toggle_flop_toggles_every_cycle() {
        // q' = !q toggles once per cycle regardless of inputs.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u", &[ff]).unwrap();
        nl.replace_fanin(ff, 0, inv).unwrap();
        nl.add_output("y", ff);
        let report = toggle_rates(&nl, &[], 100, 1).unwrap();
        assert_eq!(report.rate(ff), 1.0);
        assert_eq!(report.rate(inv), 1.0);
    }

    #[test]
    fn constant_nodes_never_toggle() {
        let mut nl = Netlist::new("t");
        let _a = nl.add_input("a");
        let t1 = nl.add_cell(CellKind::Tie1, "t1", &[]).unwrap();
        nl.add_output("y", t1);
        let report = toggle_rates(&nl, &[], 200, 7).unwrap();
        assert_eq!(report.rate(t1), 0.0);
    }

    #[test]
    fn xor_of_independent_inputs_toggles_about_half() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::Xor2, "u", &[a, b]).unwrap();
        nl.add_output("y", g);
        let report = toggle_rates(&nl, &[], 4000, 3).unwrap();
        assert!(
            (report.rate(g) - 0.5).abs() < 0.05,
            "rate {}",
            report.rate(g)
        );
    }

    #[test]
    fn and_gate_toggles_less_than_inputs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_cell(CellKind::And2, "u", &[a, b]).unwrap();
        nl.add_output("y", g);
        let report = toggle_rates(&nl, &[], 4000, 9).unwrap();
        // AND output is 1 only 1/4 of the time: toggle probability 2*1/4*3/4.
        assert!((report.rate(g) - 0.375).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        nl.add_output("y", ff);
        let r1 = toggle_rates(&nl, &[], 500, 11).unwrap();
        let r2 = toggle_rates(&nl, &[], 500, 11).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn reset_state_affects_first_cycle() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        let y = nl.add_output("y", ff);
        let mut sim = GateSim::new(&nl).unwrap();
        sim.set_state(ff, true);
        sim.settle();
        assert!(sim.value(y));
    }
}
