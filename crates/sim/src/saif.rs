//! SAIF (Switching Activity Interchange Format) output — the activity file
//! a PrimePower-style power flow consumes. Written from a [`ToggleReport`].

use std::io::{self, Write};

use moss_netlist::{Netlist, NodeKind};

use crate::toggle::ToggleReport;

/// Writes a backward-SAIF file covering every net in the netlist (primary
/// inputs, cell outputs, primary outputs).
///
/// Durations are in cycles: `T1` is the number of cycles the net was
/// sampled high, `T0 = duration − T1`, and `TC` is the toggle count.
///
/// # Errors
///
/// Propagates writer I/O errors.
///
/// # Panics
///
/// Panics if `report` was collected on a different-sized netlist.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
/// use moss_sim::{toggle_rates, write_saif};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
/// nl.add_output("y", g);
/// let report = toggle_rates(&nl, &[], 500, 3)?;
/// let mut out = Vec::new();
/// write_saif(&mut out, &nl, &report)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("(SAIFILE"));
/// assert!(text.contains("(DURATION 500)"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_saif<W: Write>(
    mut writer: W,
    netlist: &Netlist,
    report: &ToggleReport,
) -> io::Result<()> {
    assert_eq!(
        report.toggles.len(),
        netlist.node_count(),
        "toggle report does not match netlist"
    );
    writeln!(writer, "(SAIFILE")?;
    writeln!(writer, "  (SAIFVERSION \"2.0\")")?;
    writeln!(writer, "  (DIRECTION \"backward\")")?;
    writeln!(writer, "  (DESIGN \"{}\")", sanitize(netlist.name()))?;
    writeln!(writer, "  (TIMESCALE 1 ns)")?;
    writeln!(writer, "  (DURATION {})", report.cycles)?;
    writeln!(writer, "  (INSTANCE {}", sanitize(netlist.name()))?;
    writeln!(writer, "    (NET")?;
    for id in netlist.node_ids() {
        let name = match netlist.kind(id) {
            NodeKind::PrimaryInput | NodeKind::PrimaryOutput => sanitize(netlist.node(id).name()),
            NodeKind::Cell(_) => format!("n_{}", sanitize(netlist.node(id).name())),
        };
        let t1 = report.ones[id.index()];
        let t0 = report.cycles.saturating_sub(t1);
        let tc = report.toggles[id.index()];
        writeln!(writer, "      ({name} (T0 {t0}) (T1 {t1}) (TC {tc}))")?;
    }
    writeln!(writer, "    )")?;
    writeln!(writer, "  )")?;
    writeln!(writer, ")")?;
    Ok(())
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toggle::toggle_rates;
    use moss_netlist::CellKind;

    fn toggler() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("en");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u", &[ff]).unwrap();
        nl.replace_fanin(ff, 0, inv).unwrap();
        nl.add_output("out", ff);
        nl
    }

    #[test]
    fn saif_counts_are_consistent() {
        let nl = toggler();
        let report = toggle_rates(&nl, &[], 100, 5).unwrap();
        let mut out = Vec::new();
        write_saif(&mut out, &nl, &report).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("(DURATION 100)"));
        // The toggle flop alternates: T0 + T1 = 100 and TC = 100.
        let q_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("(n_q "))
            .expect("q net present");
        assert!(q_line.contains("(TC 100)"), "{q_line}");
        assert!(
            q_line.contains("(T0 50)") && q_line.contains("(T1 50)"),
            "{q_line}"
        );
    }

    #[test]
    fn every_node_has_a_net_entry() {
        let nl = toggler();
        let report = toggle_rates(&nl, &[], 32, 5).unwrap();
        let mut out = Vec::new();
        write_saif(&mut out, &nl, &report).unwrap();
        let text = String::from_utf8(out).unwrap();
        let entries = text.lines().filter(|l| l.contains("(TC ")).count();
        assert_eq!(entries, nl.node_count());
    }
}
