//! Event-driven cycle simulation of standard-cell netlists.
//!
//! Zero-delay, two-phase semantics matching the RTL interpreter: each clock
//! cycle, combinational logic settles level-by-level (only re-evaluating
//! gates whose fanins changed — the event-driven part), then every DFF
//! simultaneously captures the value at its D pin.

use moss_netlist::{Levelization, Netlist, NetlistError, NodeId, NodeKind};

/// A gate-level simulator for one netlist.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
/// use moss_sim::GateSim;
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_cell(CellKind::Xor2, "u1", &[a, b])?;
/// let y = nl.add_output("y", g);
/// let mut sim = GateSim::new(&nl)?;
/// sim.set_input(a, true);
/// sim.set_input(b, false);
/// sim.settle();
/// assert!(sim.value(y));
/// # Ok::<(), moss_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GateSim {
    netlist: Netlist,
    levels: Levelization,
    values: Vec<bool>,
    /// Per-level event buckets for the current settle pass.
    buckets: Vec<Vec<NodeId>>,
    queued: Vec<bool>,
    dff_ids: Vec<NodeId>,
}

impl GateSim {
    /// Builds a simulator; all DFFs start at logic 0 and all inputs low.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist is invalid or combinationally cyclic.
    pub fn new(netlist: &Netlist) -> Result<GateSim, NetlistError> {
        let levels = Levelization::of(netlist)?;
        let n = netlist.node_count();
        let max_level = levels.max_level() as usize;
        let mut sim = GateSim {
            netlist: netlist.clone(),
            dff_ids: netlist.dffs(),
            levels,
            values: vec![false; n],
            buckets: vec![Vec::new(); max_level + 1],
            queued: vec![false; n],
        };
        sim.full_settle();
        Ok(sim)
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Current logic value of a node.
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// All current values (indexed by node id).
    pub fn values(&self) -> &[bool] {
        &self.values
    }

    /// Drives a primary input.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a primary input.
    pub fn set_input(&mut self, id: NodeId, value: bool) {
        assert_eq!(
            self.netlist.kind(id),
            NodeKind::PrimaryInput,
            "{id} is not a primary input"
        );
        if self.values[id.index()] != value {
            self.values[id.index()] = value;
            self.enqueue_fanouts(id);
        }
    }

    /// Forces a DFF's state (e.g. applying a reset value).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a DFF.
    pub fn set_state(&mut self, id: NodeId, value: bool) {
        assert!(self.netlist.kind(id).is_dff(), "{id} is not a DFF");
        if self.values[id.index()] != value {
            self.values[id.index()] = value;
            self.enqueue_fanouts(id);
        }
    }

    /// Propagates pending events until the combinational logic is stable.
    ///
    /// ## Termination
    ///
    /// Always terminates, by construction: [`GateSim::new`] levelizes the
    /// netlist and rejects combinational cycles
    /// ([`NetlistError::CombinationalCycle`]), so every event moves
    /// strictly upward through the level buckets — a node at level `l` only
    /// enqueues fanouts at levels `> l`, and a level's bucket drains before
    /// the next level is visited. No iteration cap is needed; an
    /// oscillating (cyclic) netlist cannot reach this method.
    pub fn settle(&mut self) {
        for level in 1..self.buckets.len() {
            while let Some(id) = self.buckets[level].pop() {
                self.queued[id.index()] = false;
                let new = self.eval(id);
                if new != self.values[id.index()] {
                    self.values[id.index()] = new;
                    self.enqueue_fanouts(id);
                }
            }
        }
        // Primary outputs mirror their drivers (level buckets exclude them
        // only when their driver level is 0).
        for id in self.netlist.primary_outputs() {
            let v = self.values[self.netlist.fanins(id)[0].index()];
            self.values[id.index()] = v;
        }
    }

    /// Advances one clock edge: settle, capture all D pins, commit, settle.
    pub fn step(&mut self) {
        self.settle();
        let next: Vec<(NodeId, bool)> = self
            .dff_ids
            .iter()
            .map(|&d| (d, self.values[self.netlist.fanins(d)[0].index()]))
            .collect();
        for (d, v) in next {
            if self.values[d.index()] != v {
                self.values[d.index()] = v;
                self.enqueue_fanouts(d);
            }
        }
        self.settle();
    }

    /// Re-evaluates every node from scratch (used at construction and after
    /// bulk state changes).
    ///
    /// ## Termination
    ///
    /// One pass over the levelized topological order — bounded by the node
    /// count. Cyclic combinational netlists are rejected at
    /// [`GateSim::new`], so the order always covers every node.
    pub fn full_settle(&mut self) {
        for i in 0..self.levels.topo_combinational().len() {
            let id = self.levels.topo_combinational()[i];
            self.values[id.index()] = self.eval(id);
        }
        for id in self.netlist.primary_outputs() {
            self.values[id.index()] = self.values[self.netlist.fanins(id)[0].index()];
        }
        // Drop any stale events.
        for b in &mut self.buckets {
            b.clear();
        }
        self.queued.fill(false);
    }

    fn eval(&self, id: NodeId) -> bool {
        match self.netlist.kind(id) {
            NodeKind::Cell(kind) if !kind.is_sequential() => {
                // Widest combinational cell has 3 pins; a fixed buffer keeps
                // the per-gate eval allocation-free.
                let fanins = self.netlist.fanins(id);
                let mut inputs = [false; 3];
                for (slot, &f) in inputs.iter_mut().zip(fanins) {
                    *slot = self.values[f.index()];
                }
                kind.eval(&inputs[..fanins.len()])
            }
            _ => self.values[id.index()],
        }
    }

    fn enqueue_fanouts(&mut self, id: NodeId) {
        for &f in self.netlist.fanouts(id) {
            if self.netlist.kind(f).is_combinational_cell() && !self.queued[f.index()] {
                self.queued[f.index()] = true;
                let level = self.levels.level(f) as usize;
                self.buckets[level].push(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_netlist::CellKind;

    #[test]
    fn counter_behaviour_matches_rtl_semantics() {
        // 2-bit counter: q0' = !q0 ; q1' = q1 ^ q0.
        let mut nl = Netlist::new("cnt2");
        let seed = nl.add_input("unused");
        let _ = seed;
        // Build with DFF forward patching via a second netlist construction
        // trick: d-pins reference gates of the DFF outputs, so create DFFs
        // first with a placeholder, then rewire.
        let mut nl = Netlist::new("cnt2");
        let tie = nl.add_input("tie_placeholder");
        let q0 = nl.add_cell(CellKind::Dff, "q0", &[tie]).unwrap();
        let q1 = nl.add_cell(CellKind::Dff, "q1", &[tie]).unwrap();
        let n0 = nl.add_cell(CellKind::Inv, "u0", &[q0]).unwrap();
        let n1 = nl.add_cell(CellKind::Xor2, "u1", &[q1, q0]).unwrap();
        nl.replace_fanin(q0, 0, n0).unwrap();
        nl.replace_fanin(q1, 0, n1).unwrap();
        let o0 = nl.add_output("o0", q0);
        let o1 = nl.add_output("o1", q1);

        let mut sim = GateSim::new(&nl).unwrap();
        let mut expected = 0u8;
        for _ in 0..10 {
            sim.step();
            expected = (expected + 1) % 4;
            let got = sim.value(o0) as u8 | ((sim.value(o1) as u8) << 1);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn event_driven_matches_full_settle() {
        // A chain where only part of the logic sees events.
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell(CellKind::And2, "u1", &[a, b]).unwrap();
        let g2 = nl.add_cell(CellKind::Or2, "u2", &[g1, b]).unwrap();
        let g3 = nl.add_cell(CellKind::Xor2, "u3", &[g2, a]).unwrap();
        nl.add_output("y", g3);

        let mut ev = GateSim::new(&nl).unwrap();
        for pattern in 0..4u8 {
            ev.set_input(a, pattern & 1 == 1);
            ev.set_input(b, pattern & 2 == 2);
            ev.settle();
            let mut full = ev.clone();
            full.full_settle();
            assert_eq!(ev.values(), full.values(), "pattern {pattern}");
        }
    }

    #[test]
    fn set_state_applies_reset() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let ff = nl.add_cell(CellKind::Dff, "r0", &[a]).unwrap();
        let y = nl.add_output("y", ff);
        let mut sim = GateSim::new(&nl).unwrap();
        sim.set_state(ff, true);
        sim.settle();
        assert!(sim.value(y));
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn set_input_rejects_cells() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let g = nl.add_cell(CellKind::Inv, "u", &[a]).unwrap();
        nl.add_output("y", g);
        let mut sim = GateSim::new(&nl).unwrap();
        sim.set_input(g, true);
    }

    #[test]
    fn tie_cells_hold_constants() {
        let mut nl = Netlist::new("t");
        let _a = nl.add_input("a");
        let t1 = nl.add_cell(CellKind::Tie1, "t1", &[]).unwrap();
        let t0 = nl.add_cell(CellKind::Tie0, "t0", &[]).unwrap();
        let g = nl.add_cell(CellKind::And2, "u", &[t1, t0]).unwrap();
        let y = nl.add_output("y", g);
        let mut sim = GateSim::new(&nl).unwrap();
        sim.settle();
        assert!(sim.value(t1));
        assert!(!sim.value(t0));
        assert!(!sim.value(y));
    }
}
