//! VCD (Value Change Dump, IEEE 1364) waveform output.
//!
//! Lets any simulation run be inspected in GTKWave & friends — the artifact
//! a VCS-style flow would hand to debugging engineers.

use std::io::{self, Write};

use moss_netlist::{Netlist, NodeId, NodeKind};

use crate::sim::GateSim;

/// Streams value changes from a [`GateSim`] into VCD format.
///
/// # Examples
///
/// ```
/// use moss_netlist::{CellKind, Netlist};
/// use moss_sim::{GateSim, VcdWriter};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_cell(CellKind::Inv, "u1", &[a])?;
/// nl.add_output("y", g);
/// let mut sim = GateSim::new(&nl)?;
///
/// let mut out = Vec::new();
/// let mut vcd = VcdWriter::new(&mut out, &nl, "10ns")?;
/// for cycle in 0..4 {
///     sim.set_input(a, cycle % 2 == 0);
///     sim.step();
///     vcd.sample(&sim)?;
/// }
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.contains("$enddefinitions"));
/// assert!(text.contains("#0"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    writer: W,
    /// `(node, vcd id)` for every traced signal.
    traced: Vec<(NodeId, String)>,
    last: Vec<Option<bool>>,
    time: u64,
}

impl<W: Write> VcdWriter<W> {
    /// Writes the VCD header, tracing all ports and DFFs of `netlist`.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn new(mut writer: W, netlist: &Netlist, timescale: &str) -> io::Result<VcdWriter<W>> {
        writeln!(writer, "$date moss-sim $end")?;
        writeln!(writer, "$version moss-sim 0.1 $end")?;
        writeln!(writer, "$timescale {timescale} $end")?;
        writeln!(writer, "$scope module {} $end", sanitize(netlist.name()))?;
        let mut traced = Vec::new();
        for id in netlist.node_ids() {
            let trace = matches!(
                netlist.kind(id),
                NodeKind::PrimaryInput | NodeKind::PrimaryOutput
            ) || netlist.kind(id).is_dff();
            if trace {
                let code = vcd_id(traced.len());
                writeln!(
                    writer,
                    "$var wire 1 {code} {} $end",
                    sanitize(netlist.node(id).name())
                )?;
                traced.push((id, code));
            }
        }
        writeln!(writer, "$upscope $end")?;
        writeln!(writer, "$enddefinitions $end")?;
        let n = traced.len();
        Ok(VcdWriter {
            writer,
            traced,
            last: vec![None; n],
            time: 0,
        })
    }

    /// Records the current simulator values as one timestep; only changed
    /// signals are emitted (plus everything on the first sample).
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn sample(&mut self, sim: &GateSim) -> io::Result<()> {
        let mut wrote_time = false;
        for (i, (node, code)) in self.traced.iter().enumerate() {
            let v = sim.value(*node);
            if self.last[i] != Some(v) {
                if !wrote_time {
                    writeln!(self.writer, "#{}", self.time)?;
                    wrote_time = true;
                }
                writeln!(self.writer, "{}{code}", if v { 1 } else { 0 })?;
                self.last[i] = Some(v);
            }
        }
        self.time += 1;
        Ok(())
    }

    /// Number of traced signals.
    pub fn traced_count(&self) -> usize {
        self.traced.len()
    }
}

/// Short printable VCD identifier codes: `!`, `"`, …, `!!`, …
fn vcd_id(index: usize) -> String {
    let mut i = index;
    let mut out = String::new();
    loop {
        out.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    out
}

/// VCD identifiers may not contain whitespace or brackets.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            '[' => '(',
            ']' => ')',
            c if c.is_whitespace() => '_',
            c => c,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_netlist::CellKind;

    fn toggler() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("en");
        let ff = nl.add_cell(CellKind::Dff, "q", &[a]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u", &[ff]).unwrap();
        nl.replace_fanin(ff, 0, inv).unwrap();
        nl.add_output("out", ff);
        nl
    }

    #[test]
    fn header_lists_ports_and_dffs() {
        let nl = toggler();
        let mut out = Vec::new();
        let vcd = VcdWriter::new(&mut out, &nl, "1ns").unwrap();
        assert_eq!(vcd.traced_count(), 3, "en, q, out");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$var wire 1 ! en $end"));
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn samples_emit_only_changes() {
        let nl = toggler();
        let mut sim = GateSim::new(&nl).unwrap();
        let mut out = Vec::new();
        let mut vcd = VcdWriter::new(&mut out, &nl, "1ns").unwrap();
        for _ in 0..4 {
            sim.step();
            vcd.sample(&sim).unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        // The toggle flop changes every cycle → a timestamp per sample.
        for t in 0..4 {
            assert!(text.contains(&format!("#{t}\n")), "timestep {t} present");
        }
        // The constant-0 input is only dumped once (initial value).
        let en_changes = text
            .lines()
            .filter(|l| l.ends_with('!') && (l.starts_with('0') || l.starts_with('1')))
            .count();
        assert_eq!(en_changes, 1, "input never changes after init");
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = vcd_id(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "duplicate at {i}");
        }
    }

    #[test]
    fn sanitize_replaces_brackets() {
        assert_eq!(sanitize("data[3]"), "data(3)");
        assert_eq!(sanitize("a b"), "a_b");
    }
}
