//! # moss-store
//!
//! A sharded, content-addressed on-disk label store. MOSS pretrains on
//! tens of thousands of circuits whose ground-truth labels (toggle rates,
//! arrival times, power) cost minutes of simulation and analysis per
//! corpus — and are pure functions of the circuit plus the labeling
//! settings. This crate persists each label record under a key derived
//! from `moss_netlist::canonical_hash` so re-runs pay only parse + hash on
//! hits, and a killed labeling run resumes from whatever it already wrote.
//!
//! ## Layout
//!
//! ```text
//! <root>/shard00/<key:016x>.lbl
//! <root>/shard01/…
//! …          (SHARD_COUNT = 64 shards, shard = key % 64)
//! ```
//!
//! One record per file keeps writes independent: records are written to a
//! per-writer-unique sibling scratch file and atomically renamed into
//! place, so a `SIGKILL` at any instant leaves either no record or a
//! complete one — never a torn file that poisons later runs — and
//! concurrent publishes of the same key cannot interleave on one scratch
//! path.
//!
//! ## Record format (`MOSSLBL1`)
//!
//! ```text
//! magic "MOSSLBL1"
//! schema version u32
//! n_nodes u32, n_dffs u32
//! toggle f32×n, probability f32×n, dynamic_nw f32×n
//! arrival (rank u32, ns f32)×n_dffs
//! total_power_nw f64, leakage_nw f64
//! crc32 (IEEE) of every preceding byte, little-endian u32
//! ```
//!
//! All integers and floats are little-endian. The CRC footer turns silent
//! corruption (bit rot, short writes) into a detected miss: [`LabelStore::load`]
//! evicts the damaged file and returns `None`, and the caller recomputes
//! and rewrites — corrupt records are never served. The `store` fault site
//! (`MOSS_FAULTS=store:<rate>`) rehearses exactly this by corrupting
//! records as they are written.
//!
//! ## Invalidation
//!
//! [`store_key`] folds the circuit's canonical hash together with the
//! label-schema version, a hash of the DFF reset (initial) values the
//! simulation is seeded from, and every labeling setting (simulation
//! cycles, stimulus seed, clock frequency). Changing any of them changes the key,
//! so stale records are simply never looked up again; they can be garbage
//! collected by deleting the store directory.
//!
//! Per-store hit/miss/corrupt/byte counters are kept on [`LabelStore`] and
//! mirrored into `moss-obs` (`store.hit`, `store.miss`, `store.corrupt`,
//! `store.evict`, `store.bytes_read`, `store.bytes_written`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the label record schema. Part of [`store_key`], so bumping
/// it invalidates every existing record without touching the files.
pub const SCHEMA_VERSION: u32 = 1;

/// Number of shard directories (`shard00` … `shard3f`).
pub const SHARD_COUNT: u64 = 64;

const MAGIC: &[u8; 8] = b"MOSSLBL1";

/// Decode refuses per-node vectors longer than this: a corrupt length
/// field must not allocate gigabytes before the CRC check runs.
const MAX_LEN: u32 = 1 << 24;

// ---- CRC32 (IEEE 802.3, reflected — the MOSSCKP2 footer polynomial) -----

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize] ^ (crc >> 8);
    }
    crc ^ 0xffff_ffff
}

// ---- keys ----------------------------------------------------------------

/// Derives the store key for one labeling job: the circuit's canonical
/// hash folded (FNV-1a) with the schema version and every setting the
/// labels depend on. Two jobs share a key exactly when their labels are
/// guaranteed bit-identical.
///
/// `reset_hash` covers the DFF reset (initial) values the simulation is
/// seeded from — they are *not* part of the netlist, so canonically
/// identical netlists with different register init values must still get
/// distinct keys (`moss_core::canonical_reset_hash` derives it in
/// canonical rank order so it is as declaration-order-invariant as
/// `circuit_hash`).
pub fn store_key(
    circuit_hash: u64,
    reset_hash: u64,
    sim_cycles: u64,
    stimulus_seed: u64,
    clock_mhz: f64,
) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(u64::from(SCHEMA_VERSION));
    eat(circuit_hash);
    eat(reset_hash);
    eat(sim_cycles);
    eat(stimulus_seed);
    eat(clock_mhz.to_bits());
    h
}

// ---- the record ----------------------------------------------------------

/// One circuit's persisted ground-truth labels, in canonical (name-sorted)
/// node order so the record is as declaration-order-invariant as the key:
/// per-node vectors are indexed by the node's rank among all node names
/// sorted lexicographically, and arrival entries carry that rank.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LabelRecord {
    /// Per-node toggle rate, canonical order.
    pub toggle: Vec<f32>,
    /// Per-node signal probability, canonical order.
    pub probability: Vec<f32>,
    /// Per-node dynamic power in nanowatts, canonical order.
    pub dynamic_nw: Vec<f32>,
    /// Per-DFF `(canonical rank, arrival ns)`, sorted by rank.
    pub arrival_ns: Vec<(u32, f32)>,
    /// Total circuit power (dynamic + leakage), nanowatts.
    pub total_power_nw: f64,
    /// Total leakage, nanowatts.
    pub leakage_nw: f64,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl LabelRecord {
    /// Serializes the record, CRC32 footer included.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.toggle.len();
        debug_assert_eq!(n, self.probability.len());
        debug_assert_eq!(n, self.dynamic_nw.len());
        let mut out = Vec::with_capacity(8 + 12 + n * 12 + self.arrival_ns.len() * 8 + 20);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&(self.arrival_ns.len() as u32).to_le_bytes());
        for v in self
            .toggle
            .iter()
            .chain(&self.probability)
            .chain(&self.dynamic_nw)
        {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &(rank, ns) in &self.arrival_ns {
            out.extend_from_slice(&rank.to_le_bytes());
            out.extend_from_slice(&ns.to_le_bytes());
        }
        out.extend_from_slice(&self.total_power_nw.to_le_bytes());
        out.extend_from_slice(&self.leakage_nw.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Deserializes a record written by [`LabelRecord::encode`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on bad magic, schema mismatch, truncation, oversized
    /// length fields, trailing garbage, or a CRC mismatch — never a panic.
    pub fn decode(bytes: &[u8]) -> io::Result<LabelRecord> {
        if bytes.len() < 4 {
            return Err(invalid("truncated label record"));
        }
        let (payload, footer) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(footer.try_into().expect("4-byte footer"));
        if crc32(payload) != want {
            return Err(invalid("label record crc mismatch"));
        }
        let mut r = Cursor {
            buf: payload,
            pos: 0,
        };
        if r.take(8)? != MAGIC {
            return Err(invalid("not a moss label record"));
        }
        if r.u32()? != SCHEMA_VERSION {
            return Err(invalid("label record schema version mismatch"));
        }
        let n = r.u32()?;
        let n_dffs = r.u32()?;
        if n > MAX_LEN || n_dffs > MAX_LEN {
            return Err(invalid("label record length field out of range"));
        }
        let mut f32s =
            |count: u32| -> io::Result<Vec<f32>> { (0..count).map(|_| r.f32()).collect() };
        let toggle = f32s(n)?;
        let probability = f32s(n)?;
        let dynamic_nw = f32s(n)?;
        let arrival_ns = (0..n_dffs)
            .map(|_| Ok((r.u32()?, r.f32()?)))
            .collect::<io::Result<Vec<_>>>()?;
        let total_power_nw = r.f64()?;
        let leakage_nw = r.f64()?;
        if r.pos != payload.len() {
            return Err(invalid("label record has trailing bytes"));
        }
        Ok(LabelRecord {
            toggle,
            probability,
            dynamic_nw,
            arrival_ns,
            total_power_nw,
            leakage_nw,
        })
    }

    /// FNV-1a digest of the encoded record — a stable per-circuit label
    /// fingerprint used by the bit-identity gates (cold run == warm run ==
    /// resumed run).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.encode() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Bounds-checked little-endian reads over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| invalid("truncated label record"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

// ---- the store -----------------------------------------------------------

/// Per-store monotonic counters (mirrored into `moss-obs`).
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Records served from disk.
    pub hits: AtomicU64,
    /// Lookups that found no (valid) record.
    pub misses: AtomicU64,
    /// Records rejected by the CRC/format check and evicted.
    pub corrupt: AtomicU64,
    /// Records written.
    pub writes: AtomicU64,
    /// Bytes read from valid records.
    pub bytes_read: AtomicU64,
    /// Bytes written (tmp + rename publishes).
    pub bytes_written: AtomicU64,
}

impl StoreStats {
    fn bump(counter: &AtomicU64, obs: &'static str, delta: u64) {
        counter.fetch_add(delta, Ordering::Relaxed);
        moss_obs::counter(obs, delta);
    }
}

/// A sharded label store rooted at one directory. Concurrent use from the
/// labeling fan-out is safe: lookups and publishes touch disjoint files
/// per key, and publishes are atomic renames.
#[derive(Debug)]
pub struct LabelStore {
    root: PathBuf,
    stats: StoreStats,
}

impl LabelStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open<P: AsRef<Path>>(root: P) -> io::Result<LabelStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(LabelStore {
            root,
            stats: StoreStats::default(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's counters.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Where `key`'s record lives (whether or not it exists yet).
    pub fn path_of(&self, key: u64) -> PathBuf {
        self.root
            .join(format!("shard{:02x}", key % SHARD_COUNT))
            .join(format!("{key:016x}.lbl"))
    }

    /// Loads the record stored under `key`. Returns `None` on a miss *or*
    /// on a corrupt record — a failed CRC/format check evicts the damaged
    /// file (counted under `store.corrupt` / `store.evict`) so the caller
    /// recomputes and rewrites; poisoned labels are never served.
    pub fn load(&self, key: u64) -> Option<LabelRecord> {
        let path = self.path_of(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                StoreStats::bump(&self.stats.misses, "store.miss", 1);
                return None;
            }
        };
        match LabelRecord::decode(&bytes) {
            Ok(rec) => {
                StoreStats::bump(&self.stats.hits, "store.hit", 1);
                StoreStats::bump(
                    &self.stats.bytes_read,
                    "store.bytes_read",
                    bytes.len() as u64,
                );
                Some(rec)
            }
            Err(_) => {
                StoreStats::bump(&self.stats.corrupt, "store.corrupt", 1);
                moss_obs::counter("store.evict", 1);
                let _ = fs::remove_file(&path);
                StoreStats::bump(&self.stats.misses, "store.miss", 1);
                None
            }
        }
    }

    /// Publishes `record` under `key` crash-safely: bytes go to a sibling
    /// temporary file, then an atomic rename — a kill at any instant leaves
    /// either the old state or a complete record. The temporary name is
    /// unique per writer (pid + counter), so concurrent publishes of the
    /// same key never interleave on one scratch file; each rename lands a
    /// complete record. A kill can strand a scratch file, but unique names
    /// mean it is never written again — inert garbage, not a hazard.
    ///
    /// The `store` fault site (`MOSS_FAULTS=store:<rate>`) corrupts the
    /// bytes on their way out (truncation or a bit flip, by key parity),
    /// rehearsing bit rot and short writes that the filesystem survived;
    /// the next [`LabelStore::load`] must detect and evict them.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on failure the temporary file is
    /// removed (best effort) and any existing record is untouched.
    pub fn store(&self, key: u64, record: &LabelRecord) -> io::Result<()> {
        let mut bytes = record.encode();
        if moss_faults::fire(moss_faults::Site::Store, key) {
            // Corrupt deterministically by key parity: even keys get a
            // short write, odd keys a flipped payload bit.
            if key.is_multiple_of(2) {
                bytes.truncate(bytes.len() / 2);
            } else {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x10;
            }
        }
        let path = self.path_of(key);
        if let Some(shard) = path.parent() {
            fs::create_dir_all(shard)?;
        }
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = fs::write(&tmp, &bytes).and_then(|()| fs::rename(&tmp, &path));
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
            return result;
        }
        StoreStats::bump(&self.stats.writes, "store.write", 1);
        StoreStats::bump(
            &self.stats.bytes_written,
            "store.bytes_written",
            bytes.len() as u64,
        );
        Ok(())
    }

    /// Number of records on disk (walks the shard directories; tooling
    /// and tests only — not a hot-path call).
    pub fn record_count(&self) -> usize {
        let mut n = 0;
        if let Ok(shards) = fs::read_dir(&self.root) {
            for shard in shards.flatten() {
                if let Ok(files) = fs::read_dir(shard.path()) {
                    n += files
                        .flatten()
                        .filter(|f| f.path().extension().is_some_and(|e| e == "lbl"))
                        .count();
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> LabelRecord {
        LabelRecord {
            toggle: vec![0.5, 0.25, 0.0, 1.0],
            probability: vec![0.5, 0.75, 0.125, 0.5],
            dynamic_nw: vec![12.5, 0.0, 3.25, 8.0],
            arrival_ns: vec![(1, 0.35), (3, 0.8)],
            total_power_nw: 123.456,
            leakage_nw: 23.456,
        }
    }

    fn temp_store(tag: &str) -> LabelStore {
        let dir = std::env::temp_dir().join(format!("moss_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        LabelStore::open(&dir).unwrap()
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let rec = sample_record();
        let decoded = LabelRecord::decode(&rec.encode()).unwrap();
        assert_eq!(rec, decoded);
        assert_eq!(rec.digest(), decoded.digest());
        // Empty records round-trip too.
        let empty = LabelRecord::default();
        assert_eq!(empty, LabelRecord::decode(&empty.encode()).unwrap());
    }

    #[test]
    fn every_truncation_and_bit_flip_is_detected() {
        let bytes = sample_record().encode();
        for cut in [
            0,
            3,
            8,
            11,
            19,
            bytes.len() / 2,
            bytes.len() - 5,
            bytes.len() - 1,
        ] {
            let mut t = bytes.clone();
            t.truncate(cut);
            assert!(
                LabelRecord::decode(&t).is_err(),
                "truncation at {cut} accepted"
            );
        }
        for pos in (0..bytes.len()).step_by(7) {
            let mut f = bytes.clone();
            f[pos] ^= 0x01;
            assert!(
                LabelRecord::decode(&f).is_err(),
                "bit flip at {pos} accepted"
            );
        }
        // Trailing garbage after a valid record is rejected (the CRC no
        // longer matches the full payload).
        let mut extra = bytes.clone();
        extra.extend_from_slice(&[0u8; 8]);
        assert!(LabelRecord::decode(&extra).is_err());
        assert!(
            LabelRecord::decode(&bytes).is_ok(),
            "pristine record rejected"
        );
    }

    #[test]
    fn oversized_length_fields_do_not_allocate() {
        // A forged header claiming 2^31 nodes with a valid CRC must be
        // rejected by the length cap, not attempted.
        let mut forged = Vec::new();
        forged.extend_from_slice(MAGIC);
        forged.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        forged.extend_from_slice(&(1u32 << 31).to_le_bytes());
        forged.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&forged);
        forged.extend_from_slice(&crc.to_le_bytes());
        assert!(LabelRecord::decode(&forged).is_err());
    }

    #[test]
    fn store_key_separates_every_setting() {
        let base = store_key(1, 3, 2048, 7, 500.0);
        assert_eq!(base, store_key(1, 3, 2048, 7, 500.0));
        assert_ne!(base, store_key(2, 3, 2048, 7, 500.0), "circuit hash");
        assert_ne!(base, store_key(1, 4, 2048, 7, 500.0), "reset hash");
        assert_ne!(base, store_key(1, 3, 4096, 7, 500.0), "sim cycles");
        assert_ne!(base, store_key(1, 3, 2048, 8, 500.0), "stimulus seed");
        assert_ne!(base, store_key(1, 3, 2048, 7, 250.0), "clock");
    }

    #[test]
    fn file_round_trip_hits_and_counts() {
        let store = temp_store("roundtrip");
        let rec = sample_record();
        assert!(store.load(9).is_none(), "empty store must miss");
        store.store(9, &rec).unwrap();
        let shard = store.path_of(9).parent().unwrap().to_path_buf();
        assert_eq!(
            fs::read_dir(&shard).unwrap().count(),
            1,
            "scratch file left behind next to the record"
        );
        assert_eq!(store.load(9), Some(rec));
        assert_eq!(store.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().misses.load(Ordering::Relaxed), 1);
        assert_eq!(store.record_count(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn concurrent_same_key_publishes_are_clean() {
        // Eight writers hammering one key must each land a complete
        // record: unique scratch names mean no interleaved writes, no
        // failed renames, and nothing left behind but the record itself.
        let store = temp_store("concurrent");
        let rec = sample_record();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        store.store(42, &rec).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.load(42), Some(rec));
        assert_eq!(store.stats().corrupt.load(Ordering::Relaxed), 0);
        let shard = store.path_of(42).parent().unwrap().to_path_buf();
        assert_eq!(fs::read_dir(&shard).unwrap().count(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn keys_spread_across_shards() {
        let store = temp_store("shards");
        for key in 0..(SHARD_COUNT * 2) {
            store.store(key, &LabelRecord::default()).unwrap();
        }
        let shards = fs::read_dir(store.root()).unwrap().count();
        assert_eq!(shards as u64, SHARD_COUNT);
        assert_eq!(store.record_count() as u64, SHARD_COUNT * 2);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_record_is_evicted_and_recomputable() {
        let store = temp_store("corrupt");
        let rec = sample_record();
        store.store(5, &rec).unwrap();

        // Bit-flip the record on disk: load must reject, evict, and miss.
        let path = store.path_of(5);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(5), None, "corrupt record served");
        assert!(!path.exists(), "corrupt record not evicted");
        assert_eq!(store.stats().corrupt.load(Ordering::Relaxed), 1);

        // Truncation is likewise detected.
        store.store(5, &rec).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert_eq!(store.load(5), None);
        assert_eq!(store.stats().corrupt.load(Ordering::Relaxed), 2);

        // The rewrite path restores service.
        store.store(5, &rec).unwrap();
        assert_eq!(store.load(5), Some(rec));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn store_fault_site_corrupts_writes_but_never_serves_poison() {
        let store = temp_store("faultsite");
        let rec = sample_record();
        moss_faults::override_for_tests(Some("store:1.0"));
        // Both corruption flavors: even key = short write, odd = bit flip.
        for key in [10u64, 11] {
            store.store(key, &rec).unwrap();
            assert_eq!(store.load(key), None, "poisoned record served (key {key})");
            assert!(
                !store.path_of(key).exists(),
                "poisoned record kept (key {key})"
            );
        }
        moss_faults::override_for_tests(None);
        // Recovery: recompute-and-rewrite with the site quiet.
        store.store(10, &rec).unwrap();
        assert_eq!(store.load(10), Some(rec));
        let _ = fs::remove_dir_all(store.root());
    }
}
