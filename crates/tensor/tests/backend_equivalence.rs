//! Backend-equivalence properties: `Naive`, `Blocked`, and `Parallel`
//! must agree within 1e-5 on random shapes, the `Parallel` backend must be
//! bit-identical across thread counts, and gradcheck must pass through
//! every backend.
//!
//! Deterministic loop-based properties (this workspace builds offline, so
//! no proptest).

use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};
use moss_tensor::backend::Backend;
use moss_tensor::{max_gradient_error_with_backend, Blocked, Naive, Parallel, ParamStore, Tensor};

const CASES: u64 = 24;

static PAR2: Parallel = Parallel::with_threads(2);
static PAR4: Parallel = Parallel::with_threads(4);

fn backends() -> [(&'static str, &'static dyn Backend); 4] {
    [
        ("naive", &Naive),
        ("blocked", &Blocked),
        ("parallel-2", &PAR2),
        ("parallel-4", &PAR4),
    ]
}

fn random_tensor(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-2.0f32..2.0))
        .collect();
    Tensor::from_vec(data, rows, cols)
}

fn assert_agree(reference: &Tensor, other: &Tensor, what: &str) {
    assert_eq!(reference.shape(), other.shape(), "{what}: shape mismatch");
    for (i, (&x, &y)) in reference.data().iter().zip(other.data()).enumerate() {
        // 1e-5 relative with a 1e-5 absolute floor: the FMA microkernel
        // levels skip the intermediate rounding of separate mul-then-add,
        // so large sums differ from the oracle in the last couple of ulps.
        let tol = 1e-5f32.max(x.abs() * 1e-5);
        assert!((x - y).abs() <= tol, "{what}[{i}]: naive {x} vs {y}");
    }
}

#[test]
fn backends_agree_on_random_matmul_shapes() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = rng.gen_range(1..40usize);
        let k = rng.gen_range(1..40usize);
        let n = rng.gen_range(1..40usize);
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        let reference = Naive.matmul(&a, &b);
        for (name, backend) in backends() {
            assert_agree(
                &reference,
                &backend.matmul(&a, &b),
                &format!("matmul {name} {m}x{k}x{n}"),
            );
        }
    }
}

#[test]
fn backends_agree_on_backward_matmul_forms() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let m = rng.gen_range(1..30usize);
        let k = rng.gen_range(1..30usize);
        let n = rng.gen_range(1..30usize);
        // Forward C = A(m×k)·B(k×n); grads use Aᵀ·dC and dC·Bᵀ.
        let a = random_tensor(m, k, &mut rng);
        let b = random_tensor(k, n, &mut rng);
        let grad = random_tensor(m, n, &mut rng);
        let db_ref = Naive.matmul_at_b(&a, &grad);
        let da_ref = Naive.matmul_a_bt(&grad, &b);
        for (name, backend) in backends() {
            assert_agree(
                &db_ref,
                &backend.matmul_at_b(&a, &grad),
                &format!("matmul_at_b {name}"),
            );
            assert_agree(
                &da_ref,
                &backend.matmul_a_bt(&grad, &b),
                &format!("matmul_a_bt {name}"),
            );
        }
    }
}

#[test]
fn backends_agree_above_parallel_thresholds() {
    // Shapes past PAR_MATMUL_MIN_FLOPS so the threaded paths really run.
    let mut rng = StdRng::seed_from_u64(7);
    let a = random_tensor(300, 80, &mut rng);
    let b = random_tensor(80, 70, &mut rng);
    let reference = Naive.matmul(&a, &b);
    for (name, backend) in backends() {
        assert_agree(
            &reference,
            &backend.matmul(&a, &b),
            &format!("big matmul {name}"),
        );
    }
    let ref_sums = Naive.col_sums(&a);
    for (name, backend) in backends() {
        let sums = backend.col_sums(&a);
        for (r, s) in ref_sums.iter().zip(&sums) {
            assert!((r - s).abs() < 1e-3, "col_sums {name}: {r} vs {s}");
        }
        assert!((Naive.sum(&a) - backend.sum(&a)).abs() < 1e-2, "sum {name}");
    }
}

#[test]
fn parallel_results_are_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(11);
    let a = random_tensor(257, 65, &mut rng); // odd sizes straddle blocks
    let b = random_tensor(65, 90, &mut rng);
    let one = Parallel::with_threads(1);
    for threads in [2, 3, 4, 8] {
        let many = Parallel::with_threads(threads);
        assert_eq!(
            one.matmul(&a, &b).data(),
            many.matmul(&a, &b).data(),
            "matmul drifted at {threads} threads"
        );
        assert_eq!(
            one.col_sums(&a),
            many.col_sums(&a),
            "col_sums drifted at {threads} threads"
        );
        assert_eq!(
            one.sum(&a).to_bits(),
            many.sum(&a).to_bits(),
            "sum drifted at {threads} threads"
        );
    }
}

#[test]
fn gradcheck_passes_through_every_backend() {
    for (name, backend) in backends() {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", Tensor::xavier(3, 4, 1));
        let b1 = store.add("b1", Tensor::xavier(1, 4, 2));
        let w2 = store.add("w2", Tensor::xavier(4, 2, 3));
        let err = max_gradient_error_with_backend(backend, &mut store, &[w1, b1, w2], |g, s| {
            let x = g.input(Tensor::xavier(5, 3, 9));
            let w1v = g.param(w1, s);
            let b1v = g.param(b1, s);
            let w2v = g.param(w2, s);
            let h = g.matmul(x, w1v);
            let h = g.add_row(h, b1v);
            let h = g.gelu(h);
            let o = g.matmul(h, w2v);
            let o = g.tanh(o);
            g.smooth_l1(o, Tensor::xavier(5, 2, 11))
        });
        assert!(err < 2e-2, "gradcheck through {name}: max error {err}");
    }
}

#[test]
fn graphs_on_different_backends_produce_matching_losses() {
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::xavier(6, 6, 17));
    let mut losses = Vec::new();
    for (name, backend) in backends() {
        let mut g = moss_tensor::Graph::with_backend(backend);
        let x = g.input(Tensor::xavier(8, 6, 23));
        let wv = g.param(w, &store);
        let h = g.matmul(x, wv);
        let h = g.relu(h);
        let m = g.mean_rows(h);
        let loss = g.sum_all(m);
        losses.push((name, g.value(loss).get(0, 0)));
    }
    let (_, reference) = losses[0];
    for (name, l) in &losses[1..] {
        assert!((l - reference).abs() < 1e-4, "{name}: {l} vs {reference}");
    }
}
