//! Property tests for tensor/op algebra and autograd invariants.
//!
//! Deterministic loop-based properties (this workspace builds offline, so
//! no proptest): each property runs over `CASES` seeded random tensors.

use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};
use moss_tensor::{softmax_rows, Graph, ParamStore, Tensor};

const CASES: u64 = 32;

/// A small tensor with bounded finite values, deterministic per seed.
fn tensor(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-3.0f32..3.0))
        .collect();
    Tensor::from_vec(data, rows, cols)
}

#[test]
fn transpose_is_involutive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(3, 5, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor(3, 4, &mut rng);
        let b = tensor(4, 2, &mut rng);
        let c = tensor(4, 2, &mut rng);
        let sum_first = a.matmul(&b.zip_map(&c, |x, y| x + y));
        let mul_first = a.matmul(&b).zip_map(&a.matmul(&c), |x, y| x + y);
        for (x, y) in sum_first.data().iter().zip(mul_first.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }
}

#[test]
fn matmul_transpose_identity() {
    // (A·B)ᵀ = Bᵀ·Aᵀ
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor(3, 4, &mut rng);
        let b = tensor(4, 2, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}

#[test]
fn softmax_rows_are_distributions() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(4, 6, &mut rng);
        let s = softmax_rows(&t);
        for r in 0..4 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row_slice(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn softmax_is_shift_invariant() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(2, 5, &mut rng);
        let shift = rng.gen_range(-2.0f32..2.0);
        let shifted = t.map(|x| x + shift);
        let a = softmax_rows(&t);
        let b = softmax_rows(&shifted);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}

#[test]
fn sum_all_gradient_is_ones() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(3, 3, &mut rng);
        let mut store = ParamStore::new();
        let p = store.add("p", t);
        let mut g = Graph::new();
        let v = g.param(p, &store);
        let loss = g.sum_all(v);
        let grads = g.backward(loss);
        assert_eq!(grads.get(p).unwrap(), &Tensor::full(3, 3, 1.0));
    }
}

#[test]
fn linearity_of_gradients() {
    // d(k·sum(x))/dx = k everywhere.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(2, 3, &mut rng);
        let k = rng.gen_range(0.5f32..4.0);
        let mut store = ParamStore::new();
        let p = store.add("p", t);
        let mut g = Graph::new();
        let v = g.param(p, &store);
        let scaled = g.scale(v, k);
        let loss = g.sum_all(scaled);
        let grads = g.backward(loss);
        for &x in grads.get(p).unwrap().data() {
            assert!((x - k).abs() < 1e-5);
        }
    }
}

#[test]
fn gather_then_scatter_identity_gradient() {
    // scatter(base, gather(base, idx), idx) == base, and its gradient
    // w.r.t. base is all-ones under sum_all.
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(5, 2, &mut rng);
        let mut store = ParamStore::new();
        let p = store.add("p", t.clone());
        let mut g = Graph::new();
        let base = g.param(p, &store);
        let rows = g.gather_rows(base, &[1, 3]);
        let back = g.scatter_rows(base, rows, &[1, 3]);
        assert_eq!(g.value(back), &t);
        let loss = g.sum_all(back);
        let grads = g.backward(loss);
        assert_eq!(grads.get(p).unwrap(), &Tensor::full(5, 2, 1.0));
    }
}

#[test]
fn l2_normalized_rows_have_unit_norm() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(3, 4, &mut rng);
        // Skip degenerate all-zero rows (the op guards with an epsilon).
        if !t.data().iter().any(|&x| x.abs() > 0.1) {
            continue;
        }
        let mut g = Graph::new();
        let v = g.input(t);
        let n = g.l2_normalize_rows(v);
        for r in 0..3 {
            let norm: f32 = g
                .value(n)
                .row_slice(r)
                .iter()
                .map(|x| x * x)
                .sum::<f32>()
                .sqrt();
            assert!(norm < 1.0 + 1e-4, "row norm {norm}");
        }
    }
}

#[test]
fn smooth_l1_is_nonnegative_and_zero_at_target() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(2, 3, &mut rng);
        let mut g = Graph::new();
        let v = g.input(t.clone());
        let loss = g.smooth_l1(v, t);
        assert_eq!(g.value(loss).get(0, 0), 0.0);
        let mut g2 = Graph::new();
        let v2 = g2.input(Tensor::zeros(2, 3));
        let loss2 = g2.smooth_l1(v2, Tensor::full(2, 3, 2.0));
        assert!(g2.value(loss2).get(0, 0) > 0.0);
    }
}

#[test]
fn adam_descends_on_random_quadratics() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = tensor(1, 4, &mut rng);
        if t.norm() <= 0.5 {
            continue;
        }
        let mut store = ParamStore::new();
        let p = store.add("p", t);
        let mut opt = moss_tensor::Adam::new(0.05);
        let loss_at = |store: &ParamStore| {
            let mut g = Graph::new();
            let v = g.param(p, store);
            let sq = g.mul(v, v);
            let l = g.sum_all(sq);
            (g.value(l).get(0, 0), {
                let mut g2 = Graph::new();
                let v2 = g2.param(p, store);
                let sq2 = g2.mul(v2, v2);
                let l2 = g2.sum_all(sq2);
                g2.backward(l2)
            })
        };
        let (first, _) = loss_at(&store);
        for _ in 0..100 {
            let (_, grads) = loss_at(&store);
            opt.step(&mut store, &grads);
        }
        let (last, _) = loss_at(&store);
        assert!(last < first, "{first} → {last}");
    }
}
