//! Property tests for tensor/op algebra and autograd invariants.

use moss_tensor::{softmax_rows, Graph, ParamStore, Tensor};
use proptest::prelude::*;

/// Strategy: a small tensor with bounded finite values.
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, rows, cols))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn transpose_is_involutive(t in tensor(3, 5)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_distributes_over_addition(a in tensor(3, 4), b in tensor(4, 2), c in tensor(4, 2)) {
        let sum_first = a.matmul(&b.zip_map(&c, |x, y| x + y));
        let mul_first = a.matmul(&b).zip_map(&a.matmul(&c), |x, y| x + y);
        for (x, y) in sum_first.data().iter().zip(mul_first.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_identity(a in tensor(3, 4), b in tensor(4, 2)) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor(4, 6)) {
        let s = softmax_rows(&t);
        for r in 0..4 {
            let sum: f32 = s.row_slice(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row_slice(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(t in tensor(2, 5), shift in -2.0f32..2.0) {
        let shifted = t.map(|x| x + shift);
        let a = softmax_rows(&t);
        let b = softmax_rows(&shifted);
        for (x, y) in a.data().iter().zip(b.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn sum_all_gradient_is_ones(t in tensor(3, 3)) {
        let mut store = ParamStore::new();
        let p = store.add("p", t);
        let mut g = Graph::new();
        let v = g.param(p, &store);
        let loss = g.sum_all(v);
        let grads = g.backward(loss);
        prop_assert_eq!(grads.get(p).unwrap(), &Tensor::full(3, 3, 1.0));
    }

    #[test]
    fn linearity_of_gradients(t in tensor(2, 3), k in 0.5f32..4.0) {
        // d(k·sum(x))/dx = k everywhere.
        let mut store = ParamStore::new();
        let p = store.add("p", t);
        let mut g = Graph::new();
        let v = g.param(p, &store);
        let scaled = g.scale(v, k);
        let loss = g.sum_all(scaled);
        let grads = g.backward(loss);
        for &x in grads.get(p).unwrap().data() {
            prop_assert!((x - k).abs() < 1e-5);
        }
    }

    #[test]
    fn gather_then_scatter_identity_gradient(t in tensor(5, 2)) {
        // scatter(base, gather(base, idx), idx) == base, and its gradient
        // w.r.t. base is all-ones under sum_all.
        let mut store = ParamStore::new();
        let p = store.add("p", t.clone());
        let mut g = Graph::new();
        let base = g.param(p, &store);
        let rows = g.gather_rows(base, &[1, 3]);
        let back = g.scatter_rows(base, rows, &[1, 3]);
        prop_assert_eq!(g.value(back), &t);
        let loss = g.sum_all(back);
        let grads = g.backward(loss);
        prop_assert_eq!(grads.get(p).unwrap(), &Tensor::full(5, 2, 1.0));
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm(t in tensor(3, 4)) {
        // Skip degenerate all-zero rows (the op guards with an epsilon).
        prop_assume!(t.data().iter().any(|&x| x.abs() > 0.1));
        let mut g = Graph::new();
        let v = g.input(t);
        let n = g.l2_normalize_rows(v);
        for r in 0..3 {
            let norm: f32 = g.value(n).row_slice(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm < 1.0 + 1e-4, "row norm {norm}");
        }
    }

    #[test]
    fn smooth_l1_is_nonnegative_and_zero_at_target(t in tensor(2, 3)) {
        let mut g = Graph::new();
        let v = g.input(t.clone());
        let loss = g.smooth_l1(v, t);
        prop_assert_eq!(g.value(loss).get(0, 0), 0.0);
        let mut g2 = Graph::new();
        let v2 = g2.input(Tensor::zeros(2, 3));
        let loss2 = g2.smooth_l1(v2, Tensor::full(2, 3, 2.0));
        prop_assert!(g2.value(loss2).get(0, 0) > 0.0);
    }

    #[test]
    fn adam_descends_on_random_quadratics(t in tensor(1, 4)) {
        prop_assume!(t.norm() > 0.5);
        let mut store = ParamStore::new();
        let p = store.add("p", t);
        let mut opt = moss_tensor::Adam::new(0.05);
        let loss_at = |store: &ParamStore| {
            let mut g = Graph::new();
            let v = g.param(p, store);
            let sq = g.mul(v, v);
            let l = g.sum_all(sq);
            (g.value(l).get(0, 0), {
                let mut g2 = Graph::new();
                let v2 = g2.param(p, store);
                let sq2 = g2.mul(v2, v2);
                let l2 = g2.sum_all(sq2);
                g2.backward(l2)
            })
        };
        let (first, _) = loss_at(&store);
        for _ in 0..100 {
            let (_, grads) = loss_at(&store);
            opt.step(&mut store, &grads);
        }
        let (last, _) = loss_at(&store);
        prop_assert!(last < first, "{first} → {last}");
    }
}
