//! The pool determinism matrix from ISSUE 6: every kernel the `Parallel`
//! backend routes through the work-stealing pool must produce
//! **bit-identical** outputs across `MOSS_THREADS` ∈ {1, 2, 4, 8}, because
//! work decomposition is a function of shape alone and every output
//! element has exactly one writer.
//!
//! Also pins the teardown contract: dropping an owned pool leaves no
//! lingering worker threads behind (checked against the kernel's own
//! thread count via /proc, which this repo's CI runners all have).

use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};
use moss_tensor::backend::Backend;
use moss_tensor::{Parallel, Tensor, ThreadPool};

const THREAD_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-2.0f32..2.0))
        .collect();
    Tensor::from_vec(data, rows, cols)
}

/// Shapes chosen to clear every parallel threshold and to straddle block
/// boundaries (odd sizes leave row/column tails in every kernel).
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![(257, 65, 90), (300, 80, 70), (1024, 33, 48)]
}

#[test]
fn matmul_is_bit_identical_across_the_thread_matrix() {
    for (m, k, n) in shapes() {
        let a = random_tensor(m, k, 1);
        let b = random_tensor(k, n, 2);
        let reference = Parallel::with_threads(THREAD_MATRIX[0]).matmul(&a, &b);
        for &threads in &THREAD_MATRIX[1..] {
            let got = Parallel::with_threads(threads).matmul(&a, &b);
            assert!(
                reference.data() == got.data(),
                "matmul {m}x{k}x{n} drifted at {threads} threads"
            );
        }
    }
}

#[test]
fn backward_matmul_forms_are_bit_identical_across_the_thread_matrix() {
    for (m, k, n) in shapes() {
        let a = random_tensor(m, k, 3);
        let grad = random_tensor(m, n, 4);
        let bt = random_tensor(k, n, 5); // grad(m×n) × btᵀ → m×k
        let ref_at_b = Parallel::with_threads(1).matmul_at_b(&a, &grad);
        let ref_a_bt = Parallel::with_threads(1).matmul_a_bt(&grad, &bt);
        for &threads in &THREAD_MATRIX[1..] {
            let p = Parallel::with_threads(threads);
            assert!(
                ref_at_b.data() == p.matmul_at_b(&a, &grad).data(),
                "matmul_at_b {m}x{k}x{n} drifted at {threads} threads"
            );
            assert!(
                ref_a_bt.data() == p.matmul_a_bt(&grad, &bt).data(),
                "matmul_a_bt {m}x{k}x{n} drifted at {threads} threads"
            );
        }
    }
}

#[test]
fn reductions_and_elementwise_are_bit_identical_across_the_thread_matrix() {
    let wide = random_tensor(3, 40_000, 6); // past PAR_ELEMWISE_MIN / SUM_BLOCK
    let tall = random_tensor(700, 33, 7); // many ROW_BLOCK partials
    let one = Parallel::with_threads(1);
    for &threads in &THREAD_MATRIX[1..] {
        let p = Parallel::with_threads(threads);
        assert_eq!(
            one.col_sums(&tall),
            p.col_sums(&tall),
            "col_sums drifted at {threads} threads"
        );
        assert_eq!(
            one.sum(&wide).to_bits(),
            p.sum(&wide).to_bits(),
            "sum drifted at {threads} threads"
        );
        assert!(
            one.map(&wide, &|x| x.mul_add(1.5, 0.25)).data()
                == p.map(&wide, &|x| x.mul_add(1.5, 0.25)).data(),
            "map drifted at {threads} threads"
        );
        assert!(
            one.zip_map(&wide, &wide, &|x, y| x * y + 0.5).data()
                == p.zip_map(&wide, &wide, &|x, y| x * y + 0.5).data(),
            "zip_map drifted at {threads} threads"
        );
    }
}

/// Counts this process's live threads (Linux /proc; skipped elsewhere).
fn live_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

#[cfg(feature = "parallel")]
#[test]
fn dropping_a_pool_leaves_no_lingering_threads() {
    let Some(before) = live_threads() else {
        return; // no /proc on this platform
    };
    let pool = ThreadPool::new(6);
    assert_eq!(pool.workers(), 5);
    pool.run_indexed(64, &|_| {});
    assert!(live_threads().unwrap() >= before + 5, "workers not started");
    drop(pool);
    // Drop joins every worker, so the count is back immediately — no
    // polling loop needed.
    assert_eq!(
        live_threads().unwrap(),
        before,
        "pool teardown left threads behind"
    );
    // And the pool's own accounting agrees.
    let pool = ThreadPool::new(3);
    pool.run_indexed(8, &|_| {});
    let stats_live = pool.stats().live_workers;
    assert!(stats_live <= 2, "stats report {stats_live} live workers");
    drop(pool);
}
