//! Optimizers: Adam (the paper's choice, §V-A) and plain SGD.

use std::collections::HashMap;

use crate::backend;
use crate::graph::Gradients;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Adam optimizer with bias correction.
///
/// The paper trains with Adam at learning rate 6×10⁻⁴ (§V-A).
///
/// # Examples
///
/// ```
/// use moss_tensor::{Adam, Graph, ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::from_rows(&[&[10.0]]));
/// let mut adam = Adam::new(0.1);
/// for _ in 0..200 {
///     let mut g = Graph::new();
///     let wv = g.param(w, &store);
///     let loss = g.smooth_l1(wv, Tensor::from_rows(&[&[0.0]]));
///     let grads = g.backward(loss);
///     adam.step(&mut store, &grads);
/// }
/// assert!(store.get(w).get(0, 0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
    /// Clip gradients to this global norm before stepping, if set.
    pub clip_norm: Option<f32>,
}

impl Adam {
    /// Adam with the usual β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
            clip_norm: Some(5.0),
        }
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Steps taken so far (drives bias correction; part of the
    /// checkpointed state).
    pub fn time_step(&self) -> u64 {
        self.t
    }

    /// The first/second-moment accumulators, ordered by [`ParamId`] for
    /// deterministic serialization. Parameters that never received a
    /// gradient have no entry.
    pub fn moments(&self) -> Vec<(ParamId, &Tensor, &Tensor)> {
        let mut out: Vec<(ParamId, &Tensor, &Tensor)> = self
            .m
            .iter()
            .map(|(&id, m)| (id, m, self.v.get(&id).expect("m and v share keys")))
            .collect();
        out.sort_by_key(|&(id, _, _)| id);
        out
    }

    /// Rebuilds an optimizer mid-run from checkpointed state: step count
    /// and per-parameter moment tensors. `clip_norm` is restored to the
    /// given value (the [`Adam::new`] default is `Some(5.0)`). Stepping the
    /// result continues the exact update sequence of the checkpointed
    /// optimizer.
    pub fn from_state(
        lr: f32,
        clip_norm: Option<f32>,
        t: u64,
        moments: impl IntoIterator<Item = (ParamId, Tensor, Tensor)>,
    ) -> Adam {
        let mut adam = Adam::new(lr);
        adam.clip_norm = clip_norm;
        adam.t = t;
        for (id, m, v) in moments {
            adam.m.insert(id, m);
            adam.v.insert(id, v);
        }
        adam
    }

    /// Changes the learning rate (e.g. for decay schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.t += 1;
        let scale = match self.clip_norm {
            Some(max) => {
                let norm = grads.global_norm();
                if norm > max {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (b1, b2) = (self.beta1, self.beta2);
        let (lr, eps) = (self.lr, self.eps);
        let be = backend::active();
        for (id, grad) in grads.iter() {
            let g = be.map(grad, &|x| x * scale);
            let (r, c) = g.shape();
            let m = self.m.entry(id).or_insert_with(|| Tensor::zeros(r, c));
            let v = self.v.entry(id).or_insert_with(|| Tensor::zeros(r, c));
            *m = be.zip_map(m, &g, &|mi, gi| b1 * mi + (1.0 - b1) * gi);
            *v = be.zip_map(v, &g, &|vi, gi| b2 * vi + (1.0 - b2) * gi * gi);
            let step = be.zip_map(m, v, &|mi, vi| lr * (mi / bc1) / ((vi / bc2).sqrt() + eps));
            let new = be.zip_map(store.get(id), &step, &|w, s| w - s);
            store.set(id, new);
        }
    }
}

/// Plain stochastic gradient descent (used by ablation benches).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with a fixed learning rate.
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// Applies one update step.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        let lr = self.lr;
        let be = backend::active();
        for (id, grad) in grads.iter() {
            let new = be.zip_map(store.get(id), grad, &|w, g| w - lr * g);
            store.set(id, new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_step(store: &mut ParamStore, w: ParamId) -> (Gradients, f32) {
        let mut g = Graph::new();
        let wv = g.param(w, store);
        let sq = g.mul(wv, wv);
        let loss = g.sum_all(sq);
        let l = g.value(loss).get(0, 0);
        (g.backward(loss), l)
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[3.0, -2.0]]));
        let mut adam = Adam::new(0.05);
        let (_, first) = quadratic_step(&mut store, w);
        for _ in 0..300 {
            let (grads, _) = quadratic_step(&mut store, w);
            adam.step(&mut store, &grads);
        }
        let (_, last) = quadratic_step(&mut store, w);
        assert!(last < first * 0.01, "loss {first} → {last}");
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.0]]));
        let mut sgd = Sgd::new(0.1);
        let (grads, _) = quadratic_step(&mut store, w);
        sgd.step(&mut store, &grads);
        // grad of w² at 1 is 2 → w ← 1 - 0.2.
        assert!((store.get(w).get(0, 0) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn clipping_bounds_update_size() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1000.0]]));
        let mut adam = Adam::new(0.1);
        adam.clip_norm = Some(1.0);
        let (grads, _) = quadratic_step(&mut store, w);
        assert!(grads.global_norm() > 1.0);
        adam.step(&mut store, &grads);
        // Step is bounded by lr regardless of the huge raw gradient.
        assert!((store.get(w).get(0, 0) - 1000.0).abs() <= 0.11);
    }
}
