//! Pluggable compute backends for the dense kernels.
//!
//! Every numeric op the autograd tape records — matmuls (forward and both
//! backward forms), elementwise zip/map, and row reductions — dispatches
//! through the [`Backend`] trait instead of hand-rolled loops, giving the
//! workspace a single seam for kernel experiments (cache tiling, threads,
//! later SIMD) without touching model code.
//!
//! Three implementations ship today:
//!
//! - [`Naive`] — the original reference loops, kept as the oracle every
//!   other backend is tested against;
//! - [`Blocked`] — column-tiled saxpy matmul (bit-identical to [`Naive`])
//!   plus lane-accumulated kernels for the transposed backward forms;
//! - [`Parallel`] — multi-threaded over row blocks via `std::thread::scope`
//!   (this workspace builds offline, so no rayon; see DESIGN.md), behind
//!   the on-by-default `parallel` cargo feature. Thread count comes from
//!   `MOSS_THREADS`, else `available_parallelism`.
//!
//! ## Determinism
//!
//! Seeded experiment reproducibility is a correctness property here, so
//! every backend guarantees **bit-identical results across thread counts**:
//! each matmul output element is accumulated by exactly one worker in a
//! fixed k-ascending order, and cross-row reductions ([`Backend::col_sums`],
//! [`Backend::sum`]) combine fixed-size block partials in block order — the
//! grouping depends only on the input shape, never on `MOSS_THREADS`.
//!
//! The active backend is process-global: [`active`] reads `MOSS_BACKEND`
//! (`naive` | `blocked` | `parallel`) once, defaulting to [`Parallel`] when
//! the `parallel` feature is enabled and [`Blocked`] otherwise.

use std::fmt;
use std::sync::OnceLock;

use crate::tensor::Tensor;

/// Rows per unit of parallel work distribution. A fixed constant (never
/// derived from the thread count) so work decomposition — and therefore
/// floating-point grouping in reductions — is identical for any
/// `MOSS_THREADS`.
const ROW_BLOCK: usize = 64;

/// Elements per partial in flat reductions; fixed for the same reason.
const SUM_BLOCK: usize = 4096;

/// Below this `m·k·n`, matmuls run sequentially even on [`Parallel`]
/// (thread spawn costs more than the multiply).
const PAR_MATMUL_MIN_FLOPS: usize = 262_144;

/// Below this element count, elementwise ops run sequentially.
const PAR_ELEMWISE_MIN: usize = 65_536;

/// A dense-kernel provider.
///
/// Implementations must be mathematically equivalent; [`Naive`] is the
/// reference. `crates/tensor/tests/backend_equivalence.rs` enforces
/// agreement within 1e-5 on random shapes and exact determinism across
/// thread counts.
pub trait Backend: fmt::Debug + Send + Sync {
    /// Short identifier (`"naive"`, `"blocked"`, `"parallel"`).
    fn name(&self) -> &'static str;

    /// `a × b`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor;

    /// `aᵀ × b` — the backward-pass form for weight gradients
    /// (`dB = Aᵀ·dC`), kept separate so backends can skip materializing
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    fn matmul_at_b(&self, a: &Tensor, b: &Tensor) -> Tensor {
        self.matmul(&a.transpose(), b)
    }

    /// `a × bᵀ` — the backward-pass form for input gradients
    /// (`dA = dC·Bᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if column counts disagree.
    fn matmul_a_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        self.matmul(a, &b.transpose())
    }

    /// Elementwise binary map.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn zip_map(&self, a: &Tensor, b: &Tensor, f: &(dyn Fn(f32, f32) -> f32 + Sync)) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
        let data = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| f(x, y))
            .collect();
        Tensor::from_vec(data, a.rows(), a.cols())
    }

    /// Elementwise unary map.
    fn map(&self, a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
        let data = a.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(data, a.rows(), a.cols())
    }

    /// Per-column sums (an `n×d → d` reduction over rows).
    fn col_sums(&self, a: &Tensor) -> Vec<f32> {
        let (n, d) = a.shape();
        let mut out = vec![0.0f32; d];
        for r in 0..n {
            for (acc, &v) in out.iter_mut().zip(a.row_slice(r)) {
                *acc += v;
            }
        }
        out
    }

    /// Sum of all elements.
    fn sum(&self, a: &Tensor) -> f32 {
        a.data().iter().sum()
    }
}

fn assert_matmul_shapes(a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}×{} × {}×{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

/// Reference kernel: the original `Tensor::matmul` i-k-j loops, with the
/// skip for zero coefficients (circuit one-hot features are mostly zeros).
fn matmul_reference_row(a_row: &[f32], b: &Tensor, out_row: &mut [f32]) {
    let n = b.cols();
    for (k, &coeff) in a_row.iter().enumerate() {
        if coeff == 0.0 {
            continue;
        }
        let b_row = &b.data()[k * n..(k + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += coeff * bv;
        }
    }
}

/// The original single-threaded loops, kept verbatim as the oracle that
/// [`Blocked`] and [`Parallel`] are verified against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl Backend for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_matmul_shapes(a, b);
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = vec![0.0f32; m * n];
        for (i, out_row) in out.chunks_mut(n.max(1)).enumerate().take(m) {
            matmul_reference_row(&a.data()[i * k..(i + 1) * k], b, out_row);
        }
        Tensor::from_vec(out, m, n)
    }
}

/// Column-tiled saxpy kernels.
///
/// The forward matmul keeps [`Naive`]'s saxpy form — the independent j
/// lanes auto-vectorize, unlike a strictly-ordered dot product — and tiles
/// the output columns so, for wide `B`, the output tile and the matching
/// strip of each `B` row stay cache-resident. Per output element the
/// k-summation order (including the zero skip) is exactly [`Naive`]'s, so
/// the two agree bit-for-bit. The `a × bᵀ` backward form instead walks
/// contiguous rows of `b` with a fixed 8-lane accumulator dot product:
/// deterministic (the lane grouping depends only on the length) and
/// vectorizable.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked;

/// Output-column tile width: an out tile plus the matching strip of a `B`
/// row stays in L1 even for very wide matrices.
const J_TILE: usize = 512;

/// One output row of `a × b`, j-tiled. For `n ≤ J_TILE` this is exactly
/// [`matmul_reference_row`].
fn matmul_row_tiled(a_row: &[f32], b: &Tensor, out_row: &mut [f32]) {
    let n = b.cols();
    if n <= J_TILE {
        return matmul_reference_row(a_row, b, out_row);
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + J_TILE).min(n);
        for (k, &coeff) in a_row.iter().enumerate() {
            if coeff == 0.0 {
                continue;
            }
            let b_strip = &b.data()[k * n + j0..k * n + j1];
            for (o, &bv) in out_row[j0..j1].iter_mut().zip(b_strip) {
                *o += coeff * bv;
            }
        }
        j0 = j1;
    }
}

/// Dot product with 8 fixed-stride accumulator lanes (lane `l` sums the
/// elements at indices `≡ l mod 8`, folded lane-ascending, tail last).
/// The grouping depends only on the length, never on threads, so results
/// are deterministic — and the independent lanes vectorize.
fn dot(x: &[f32], y: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let (xrem, yrem) = (xc.remainder(), yc.remainder());
    for (xs, ys) in xc.zip(yc) {
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut s = acc.iter().sum::<f32>();
    for (&a, &b) in xrem.iter().zip(yrem) {
        s += a * b;
    }
    s
}

/// `a × bᵀ` needs no transpose: rows of `b` are already contiguous in the
/// shared dimension.
fn matmul_a_bt_row(a_row: &[f32], b: &Tensor, out_row: &mut [f32]) {
    let l = a_row.len();
    for (j, o) in out_row.iter_mut().enumerate() {
        *o = dot(a_row, &b.data()[j * l..(j + 1) * l]);
    }
}

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_matmul_shapes(a, b);
        let (m, k) = a.shape();
        let n = b.cols();
        if m * k * n == 0 {
            return Tensor::zeros(m, n);
        }
        let mut out = vec![0.0f32; m * n];
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            matmul_row_tiled(&a.data()[i * k..(i + 1) * k], b, out_row);
        }
        Tensor::from_vec(out, m, n)
    }

    fn matmul_a_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(
            a.cols(),
            b.cols(),
            "matmul_a_bt shape mismatch: {}×{} × ({}×{})ᵀ",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        let (m, l) = a.shape();
        let n = b.rows();
        if m * l * n == 0 {
            return Tensor::zeros(m, n);
        }
        let mut out = vec![0.0f32; m * n];
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            matmul_a_bt_row(&a.data()[i * l..(i + 1) * l], b, out_row);
        }
        Tensor::from_vec(out, m, n)
    }
}

/// Multi-threaded kernels: row blocks distributed over scoped threads.
///
/// Sequential below the size thresholds (thread spawn would dominate), and
/// identical arithmetic to [`Blocked`] above them — each output row is
/// produced wholly by one worker, so results are bit-identical for any
/// thread count, including 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct Parallel {
    threads: Option<usize>,
}

impl Parallel {
    /// Thread count from `MOSS_THREADS` / `available_parallelism`.
    pub const fn new() -> Parallel {
        Parallel { threads: None }
    }

    /// A backend pinned to exactly `n` worker threads (used by the
    /// determinism tests).
    pub const fn with_threads(n: usize) -> Parallel {
        Parallel { threads: Some(n) }
    }

    fn threads(&self) -> usize {
        self.threads.unwrap_or_else(configured_threads).max(1)
    }
}

/// The process-wide worker count: `MOSS_THREADS` if set to a positive
/// integer, else `std::thread::available_parallelism`.
pub fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("MOSS_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Runs `kernel(row_index, out_row)` for every row of an `rows×cols`
/// output buffer, fanning fixed-size row blocks out round-robin to
/// `threads` scoped workers. Each row is written by exactly one worker, so
/// the result cannot depend on scheduling.
fn for_each_row(
    out: &mut [f32],
    cols: usize,
    threads: usize,
    kernel: &(dyn Fn(usize, &mut [f32]) + Sync),
) {
    if out.is_empty() || cols == 0 {
        return;
    }
    #[cfg(feature = "parallel")]
    if threads > 1 && out.len() > ROW_BLOCK * cols {
        let mut buckets: Vec<Vec<(usize, &mut [f32])>> = (0..threads).map(|_| Vec::new()).collect();
        for (blk, chunk) in out.chunks_mut(ROW_BLOCK * cols).enumerate() {
            buckets[blk % threads].push((blk * ROW_BLOCK, chunk));
        }
        std::thread::scope(|s| {
            for bucket in buckets {
                s.spawn(move || {
                    for (row0, chunk) in bucket {
                        for (r, out_row) in chunk.chunks_mut(cols).enumerate() {
                            kernel(row0 + r, out_row);
                        }
                    }
                });
            }
        });
        return;
    }
    let _ = threads;
    for (row, out_row) in out.chunks_mut(cols).enumerate() {
        kernel(row, out_row);
    }
}

impl Backend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_matmul_shapes(a, b);
        let (m, k) = a.shape();
        let n = b.cols();
        if m * k * n == 0 {
            return Tensor::zeros(m, n);
        }
        let threads = if m * k * n < PAR_MATMUL_MIN_FLOPS {
            1
        } else {
            self.threads()
        };
        let mut out = vec![0.0f32; m * n];
        let a_data = a.data();
        for_each_row(&mut out, n, threads, &|i, out_row| {
            matmul_row_tiled(&a_data[i * k..(i + 1) * k], b, out_row);
        });
        Tensor::from_vec(out, m, n)
    }

    fn matmul_a_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(
            a.cols(),
            b.cols(),
            "matmul_a_bt shape mismatch: {}×{} × ({}×{})ᵀ",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        let (m, l) = a.shape();
        let n = b.rows();
        if m * l * n == 0 {
            return Tensor::zeros(m, n);
        }
        let threads = if m * l * n < PAR_MATMUL_MIN_FLOPS {
            1
        } else {
            self.threads()
        };
        let mut out = vec![0.0f32; m * n];
        let a_data = a.data();
        for_each_row(&mut out, n, threads, &|i, out_row| {
            matmul_a_bt_row(&a_data[i * l..(i + 1) * l], b, out_row);
        });
        Tensor::from_vec(out, m, n)
    }

    fn zip_map(&self, a: &Tensor, b: &Tensor, f: &(dyn Fn(f32, f32) -> f32 + Sync)) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
        let len = a.data().len();
        if len < PAR_ELEMWISE_MIN || self.threads() <= 1 {
            return Blocked.zip_map(a, b, f);
        }
        let mut out = vec![0.0f32; len];
        let (ad, bd) = (a.data(), b.data());
        // Reuse the row machinery with SUM_BLOCK-wide "rows": every
        // element is independent, so any partition is exact.
        for_each_row(
            &mut out,
            SUM_BLOCK.min(len),
            self.threads(),
            &|blk, chunk| {
                let base = blk * SUM_BLOCK.min(len);
                for (j, o) in chunk.iter_mut().enumerate() {
                    *o = f(ad[base + j], bd[base + j]);
                }
            },
        );
        Tensor::from_vec(out, a.rows(), a.cols())
    }

    fn map(&self, a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
        let len = a.data().len();
        if len < PAR_ELEMWISE_MIN || self.threads() <= 1 {
            return Blocked.map(a, f);
        }
        let mut out = vec![0.0f32; len];
        let ad = a.data();
        for_each_row(
            &mut out,
            SUM_BLOCK.min(len),
            self.threads(),
            &|blk, chunk| {
                let base = blk * SUM_BLOCK.min(len);
                for (j, o) in chunk.iter_mut().enumerate() {
                    *o = f(ad[base + j]);
                }
            },
        );
        Tensor::from_vec(out, a.rows(), a.cols())
    }

    fn col_sums(&self, a: &Tensor) -> Vec<f32> {
        let (n, d) = a.shape();
        if n * d == 0 {
            return vec![0.0; d];
        }
        // Fixed-size row blocks → per-block partials → ordered fold. The
        // grouping depends only on the shape, so any thread count (and the
        // sequential path) produces bit-identical sums.
        let n_blocks = n.div_ceil(ROW_BLOCK);
        let partial = |blk: usize| {
            let lo = blk * ROW_BLOCK;
            let hi = (lo + ROW_BLOCK).min(n);
            let mut acc = vec![0.0f32; d];
            for r in lo..hi {
                for (s, &v) in acc.iter_mut().zip(a.row_slice(r)) {
                    *s += v;
                }
            }
            acc
        };
        let partials: Vec<Vec<f32>> = if n_blocks > 1 && self.threads() > 1 {
            par_map_indexed(n_blocks, self.threads(), &|blk| partial(blk))
        } else {
            (0..n_blocks).map(partial).collect()
        };
        let mut out = vec![0.0f32; d];
        for p in &partials {
            for (s, &v) in out.iter_mut().zip(p) {
                *s += v;
            }
        }
        out
    }

    fn sum(&self, a: &Tensor) -> f32 {
        let data = a.data();
        if data.is_empty() {
            return 0.0;
        }
        let n_blocks = data.len().div_ceil(SUM_BLOCK);
        let partial = |blk: usize| {
            let lo = blk * SUM_BLOCK;
            let hi = (lo + SUM_BLOCK).min(data.len());
            data[lo..hi].iter().sum::<f32>()
        };
        let partials: Vec<f32> = if n_blocks > 1 && self.threads() > 1 {
            par_map_indexed(n_blocks, self.threads(), &|blk| partial(blk))
        } else {
            (0..n_blocks).map(partial).collect()
        };
        partials.iter().sum()
    }
}

/// `(0..n).map(f)` with work-stealing across `threads` scoped workers;
/// results are returned in index order regardless of which worker ran
/// which index.
fn par_map_indexed<U: Send>(n: usize, threads: usize, f: &(dyn Fn(usize) -> U + Sync)) -> Vec<U> {
    #[cfg(feature = "parallel")]
    if threads > 1 && n > 1 {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let workers = threads.min(n);
        let locals: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("backend worker panicked"))
                .collect()
        });
        let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
        for local in locals {
            for (i, v) in local {
                out[i] = Some(v);
            }
        }
        return out
            .into_iter()
            .map(|v| v.expect("index computed"))
            .collect();
    }
    let _ = threads;
    (0..n).map(f).collect()
}

/// Applies `f` to every item of `items` — in parallel when the `parallel`
/// feature is on and the active thread count allows — returning results in
/// input order.
///
/// This is the workspace-wide primitive for embarrassingly parallel loops
/// (per-circuit ground-truth generation, batched encoder forwards). `f`
/// receives `(index, &item)`; output order never depends on scheduling.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_indexed(items.len(), configured_threads(), &|i| f(i, &items[i]))
}

static NAIVE: Naive = Naive;
static BLOCKED: Blocked = Blocked;
static PARALLEL: Parallel = Parallel::new();

fn default_backend() -> &'static dyn Backend {
    #[cfg(feature = "parallel")]
    {
        &PARALLEL
    }
    #[cfg(not(feature = "parallel"))]
    {
        &BLOCKED
    }
}

/// The process-wide active backend.
///
/// Chosen once from `MOSS_BACKEND` (`naive` | `blocked` | `parallel`);
/// unset defaults to [`Parallel`] with the `parallel` feature, [`Blocked`]
/// without.
///
/// # Panics
///
/// Panics on an unrecognized `MOSS_BACKEND` value.
pub fn active() -> &'static dyn Backend {
    static ACTIVE: OnceLock<&'static dyn Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var("MOSS_BACKEND").as_deref() {
        Ok("naive") => &NAIVE,
        Ok("blocked") => &BLOCKED,
        Ok("parallel") => &PARALLEL,
        Ok(other) => panic!("unknown MOSS_BACKEND {other:?}; expected naive|blocked|parallel"),
        Err(_) => default_backend(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(rows: usize, cols: usize, scale: f32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| ((i * 2_654_435_761 % 1000) as f32 / 500.0 - 1.0) * scale)
            .collect();
        Tensor::from_vec(data, rows, cols)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!((x - y).abs() <= tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn backends_agree_on_matmul() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 4), (17, 9, 33), (70, 80, 90)] {
            let a = arange(m, k, 1.0);
            let b = arange(k, n, 0.5);
            let reference = Naive.matmul(&a, &b);
            assert_close(&Blocked.matmul(&a, &b), &reference, 1e-5, "blocked");
            assert_close(
                &Parallel::with_threads(3).matmul(&a, &b),
                &reference,
                1e-5,
                "parallel",
            );
        }
    }

    #[test]
    fn transposed_forms_match_explicit_transpose() {
        let a = arange(13, 7, 1.0);
        let b = arange(13, 5, 0.7);
        let reference = Naive.matmul(&a.transpose(), &b);
        for backend in [&Blocked as &dyn Backend, &Parallel::with_threads(2)] {
            assert_close(&backend.matmul_at_b(&a, &b), &reference, 1e-5, "at_b");
        }
        let c = arange(11, 7, 0.9);
        let reference = Naive.matmul(&a, &c.transpose());
        for backend in [&Blocked as &dyn Backend, &Parallel::with_threads(2)] {
            assert_close(&backend.matmul_a_bt(&a, &c), &reference, 1e-5, "a_bt");
        }
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts() {
        // Big enough to clear every parallel threshold.
        let a = arange(300, 80, 1.0);
        let b = arange(80, 70, 0.3);
        let wide = arange(3, 30_000, 0.1);
        let t1 = Parallel::with_threads(1);
        for threads in [2, 4, 7] {
            let tn = Parallel::with_threads(threads);
            assert_eq!(
                t1.matmul(&a, &b).data(),
                tn.matmul(&a, &b).data(),
                "matmul at {threads} threads"
            );
            assert_eq!(
                t1.col_sums(&wide),
                tn.col_sums(&wide),
                "col_sums at {threads} threads"
            );
            assert_eq!(t1.sum(&wide), tn.sum(&wide), "sum at {threads} threads");
            assert_eq!(
                t1.map(&wide, &|x| x * 1.5 + 0.1).data(),
                tn.map(&wide, &|x| x * 1.5 + 0.1).data(),
                "map at {threads} threads"
            );
        }
    }

    #[test]
    fn reductions_match_reference() {
        let a = arange(130, 7, 1.0);
        let reference = Naive.col_sums(&a);
        let par = Parallel::with_threads(4).col_sums(&a);
        for (r, p) in reference.iter().zip(&par) {
            assert!((r - p).abs() < 1e-4, "{r} vs {p}");
        }
        assert!((Naive.sum(&a) - Parallel::with_threads(4).sum(&a)).abs() < 1e-3);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |i, &v| {
            assert_eq!(i, v);
            v * v
        });
        assert_eq!(out, items.iter().map(|&v| v * v).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, |_, &v| v).is_empty());
    }

    #[test]
    fn empty_shapes_are_handled() {
        let a = Tensor::zeros(0, 5);
        let b = Tensor::zeros(5, 3);
        for backend in [&Naive as &dyn Backend, &Blocked, &Parallel::new()] {
            assert_eq!(backend.matmul(&a, &b).shape(), (0, 3), "{}", backend.name());
            assert_eq!(backend.sum(&a), 0.0);
        }
    }

    #[test]
    fn active_backend_resolves() {
        // Whatever the env says, the process-global must resolve and work.
        let b = active();
        let x = Tensor::eye(3);
        assert_eq!(b.matmul(&x, &x), x);
        assert!(!b.name().is_empty());
    }
}
