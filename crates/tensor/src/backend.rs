//! Pluggable compute backends for the dense kernels.
//!
//! Every numeric op the autograd tape records — matmuls (forward and both
//! backward forms), elementwise zip/map, and row reductions — dispatches
//! through the [`Backend`] trait instead of hand-rolled loops, giving the
//! workspace a single seam for kernel experiments without touching model
//! code.
//!
//! Three implementations ship today:
//!
//! - [`Naive`] — the original reference loops, kept as the oracle every
//!   other backend is tested against;
//! - [`Blocked`] — sequential calls into the [`crate::simd`] register-tile
//!   microkernels (runtime-dispatched AVX-512 / AVX2+FMA / portable
//!   8-wide lane arrays);
//! - [`Parallel`] — the same microkernels with row blocks submitted to the
//!   persistent work-stealing pool in [`crate::pool`] (this workspace
//!   builds offline, so no rayon; see DESIGN.md §11), behind the
//!   on-by-default `parallel` cargo feature. Thread count comes from
//!   `MOSS_THREADS`, else `available_parallelism`. Below the size
//!   thresholds it runs the [`Blocked`] path inline, so `parallel` never
//!   loses to `blocked` on small problems.
//!
//! ## Determinism
//!
//! Seeded experiment reproducibility is a correctness property here, so
//! every backend guarantees **bit-identical results across thread counts**:
//! each matmul output element is accumulated by exactly one worker in a
//! fixed order along the shared dimension, and cross-row reductions
//! ([`Backend::col_sums`], [`Backend::sum`]) combine fixed-size block
//! partials in block order — the grouping depends only on the input shape,
//! never on `MOSS_THREADS`. (Across *SIMD levels* the FMA paths differ from
//! [`Naive`] by ~1e-6 relative; the scalar level is bit-identical to it.
//! See [`crate::simd`].)
//!
//! The active backend is process-global: [`active`] reads `MOSS_BACKEND`
//! (`naive` | `blocked` | `parallel` | `auto`) once, defaulting to
//! size-based auto dispatch ([`for_flops`]) when unset or `auto`.

use std::fmt;
use std::sync::OnceLock;

use crate::pool::{self, ThreadPool};
use crate::simd;
use crate::tensor::Tensor;

/// Rows per unit of parallel work distribution. A fixed constant (never
/// derived from the thread count) so work decomposition — and therefore
/// floating-point grouping in reductions — is identical for any
/// `MOSS_THREADS`.
const ROW_BLOCK: usize = 64;

/// Output rows (columns of `a`) per `aᵀ×b` task. The shared `m` dimension
/// is long in the backward pass, so even a small `k` yields enough blocks
/// to keep workers busy; fixed for the same determinism reason.
const AT_B_ROW_BLOCK: usize = 8;

/// Elements per partial in flat reductions; fixed for the same reason.
const SUM_BLOCK: usize = 4096;

/// Below this `m·k·n`, matmuls run sequentially even on [`Parallel`]:
/// with the SIMD kernels a 1M-flop multiply takes ~10µs, the same order
/// as a pool dispatch, so splitting it cannot win.
const PAR_MATMUL_MIN_FLOPS: usize = 1_048_576;

/// Below this element count, elementwise ops run sequentially.
const PAR_ELEMWISE_MIN: usize = 65_536;

/// A dense-kernel provider.
///
/// Implementations must be mathematically equivalent; [`Naive`] is the
/// reference. `crates/tensor/tests/backend_equivalence.rs` enforces
/// agreement within 1e-5 on random shapes and exact determinism across
/// thread counts.
pub trait Backend: fmt::Debug + Send + Sync {
    /// Short identifier (`"naive"`, `"blocked"`, `"parallel"`).
    fn name(&self) -> &'static str;

    /// `a × b`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor;

    /// `aᵀ × b` — the backward-pass form for weight gradients
    /// (`dB = Aᵀ·dC`), kept separate so backends can skip materializing
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    fn matmul_at_b(&self, a: &Tensor, b: &Tensor) -> Tensor {
        self.matmul(&a.transpose(), b)
    }

    /// `a × bᵀ` — the backward-pass form for input gradients
    /// (`dA = dC·Bᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if column counts disagree.
    fn matmul_a_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        self.matmul(a, &b.transpose())
    }

    /// Elementwise binary map.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    fn zip_map(&self, a: &Tensor, b: &Tensor, f: &(dyn Fn(f32, f32) -> f32 + Sync)) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
        let data = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| f(x, y))
            .collect();
        Tensor::from_vec(data, a.rows(), a.cols())
    }

    /// Elementwise unary map.
    fn map(&self, a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
        let data = a.data().iter().map(|&x| f(x)).collect();
        Tensor::from_vec(data, a.rows(), a.cols())
    }

    /// Per-column sums (an `n×d → d` reduction over rows).
    fn col_sums(&self, a: &Tensor) -> Vec<f32> {
        let (n, d) = a.shape();
        let mut out = vec![0.0f32; d];
        for r in 0..n {
            for (acc, &v) in out.iter_mut().zip(a.row_slice(r)) {
                *acc += v;
            }
        }
        out
    }

    /// Sum of all elements.
    fn sum(&self, a: &Tensor) -> f32 {
        a.data().iter().sum()
    }
}

fn assert_matmul_shapes(a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}×{} × {}×{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

fn assert_a_bt_shapes(a: &Tensor, b: &Tensor) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt shape mismatch: {}×{} × ({}×{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

/// Reference kernel: the original `Tensor::matmul` i-k-j loops, with the
/// skip for zero coefficients (circuit one-hot features are mostly zeros).
fn matmul_reference_row(a_row: &[f32], b: &Tensor, out_row: &mut [f32]) {
    let n = b.cols();
    for (k, &coeff) in a_row.iter().enumerate() {
        if coeff == 0.0 {
            continue;
        }
        let b_row = &b.data()[k * n..(k + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += coeff * bv;
        }
    }
}

/// The original single-threaded loops, kept verbatim as the oracle that
/// [`Blocked`] and [`Parallel`] are verified against.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl Backend for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_matmul_shapes(a, b);
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = vec![0.0f32; m * n];
        for (i, out_row) in out.chunks_mut(n.max(1)).enumerate().take(m) {
            matmul_reference_row(&a.data()[i * k..(i + 1) * k], b, out_row);
        }
        Tensor::from_vec(out, m, n)
    }
}

/// Sequential register-tile SIMD kernels — see [`crate::simd`] for the
/// tile shapes and the per-level numerics contract.
///
/// All three matmul forms run dense microkernels (no transpose is ever
/// materialized for the backward forms). On the scalar SIMD level the
/// per-element accumulation order is exactly [`Naive`]'s, so the two agree
/// bit-for-bit; the FMA levels agree to ~1e-6 relative.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked;

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_matmul_shapes(a, b);
        let (m, k) = a.shape();
        let n = b.cols();
        if m * k * n == 0 {
            return Tensor::zeros(m, n);
        }
        let mut out = vec![0.0f32; m * n];
        simd::matmul_block(a.data(), m, k, b.data(), n, &mut out);
        Tensor::from_vec(out, m, n)
    }

    fn matmul_at_b(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(
            a.rows(),
            b.rows(),
            "matmul_at_b shape mismatch: ({}×{})ᵀ × {}×{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        let (m, k) = a.shape();
        let n = b.cols();
        if m * k * n == 0 {
            return Tensor::zeros(k, n);
        }
        let mut out = vec![0.0f32; k * n];
        simd::matmul_at_b_block(a.data(), m, k, 0, k, b.data(), n, &mut out);
        Tensor::from_vec(out, k, n)
    }

    fn matmul_a_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_a_bt_shapes(a, b);
        let (m, l) = a.shape();
        let n = b.rows();
        if m * l * n == 0 {
            return Tensor::zeros(m, n);
        }
        let mut out = vec![0.0f32; m * n];
        simd::matmul_a_bt_block(a.data(), m, l, b.data(), n, &mut out);
        Tensor::from_vec(out, m, n)
    }
}

/// Pool-submitting kernels: row blocks of the [`crate::simd`] microkernels
/// distributed over the persistent work-stealing pool.
///
/// Sequential (the [`Blocked`] path, inline on the caller) below the size
/// thresholds — a pool dispatch costs a few microseconds, so small ops
/// never pay it — and identical per-element arithmetic above them: each
/// output element is produced wholly by one task, so results are
/// bit-identical for any thread count, including 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct Parallel {
    threads: Option<usize>,
}

impl Parallel {
    /// Thread count from `MOSS_THREADS` / `available_parallelism`.
    pub const fn new() -> Parallel {
        Parallel { threads: None }
    }

    /// A backend pinned to exactly `n` threads (used by the determinism
    /// tests); the pool for each pinned count is created on first use.
    pub const fn with_threads(n: usize) -> Parallel {
        Parallel { threads: Some(n) }
    }

    fn pool(&self) -> &'static ThreadPool {
        match self.threads {
            Some(n) => pool::with_threads(n),
            None => pool::global(),
        }
    }
}

/// The process-wide worker count: `MOSS_THREADS` if set to a positive
/// integer, else `std::thread::available_parallelism`.
pub fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("MOSS_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// A raw pointer that may cross thread boundaries. Safety is argued at
/// each use site: tasks write disjoint regions, and the pool's completion
/// protocol orders every write before the submitter reads.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
impl<T> SendPtr<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper, not the raw pointer inside it.
    fn get(self) -> *mut T {
        self.0
    }
}

/// `(0..n).map(f)` over the pool, results in index order regardless of
/// which worker ran which index. Falls back to a plain sequential map when
/// the pool has no workers or there is only one item.
fn pool_map_indexed<U, F>(pool: &ThreadPool, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // No zero-worker/short-circuit here: `run_indexed` runs inline (in
    // index order) on a worker-less pool and keeps the obs traffic
    // counters accurate either way.
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let slots = SendPtr(out.as_mut_ptr());
    // SAFETY: each index writes exactly one distinct slot, the slot's old
    // value is `None` (nothing to drop), and `run_indexed` returns only
    // after every task's writes are visible to this thread.
    pool.run_indexed(n, &move |i| unsafe { slots.get().add(i).write(Some(f(i))) });
    out.into_iter()
        .map(|v| v.expect("pool ran every index"))
        .collect()
}

impl Backend for Parallel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_matmul_shapes(a, b);
        let (m, k) = a.shape();
        let n = b.cols();
        if m * k * n == 0 {
            return Tensor::zeros(m, n);
        }
        if m * k * n < PAR_MATMUL_MIN_FLOPS || m <= ROW_BLOCK {
            return Blocked.matmul(a, b);
        }
        let pool = self.pool();
        if pool.workers() == 0 {
            return Blocked.matmul(a, b);
        }
        let mut out = vec![0.0f32; m * n];
        let optr = SendPtr(out.as_mut_ptr());
        let (ad, bd) = (a.data(), b.data());
        // SAFETY: row block `blk` writes only rows r0..r1 of `out`;
        // blocks are disjoint and run_indexed orders writes before return.
        pool.run_indexed(m.div_ceil(ROW_BLOCK), &move |blk| {
            let r0 = blk * ROW_BLOCK;
            let r1 = (r0 + ROW_BLOCK).min(m);
            let ob =
                unsafe { std::slice::from_raw_parts_mut(optr.get().add(r0 * n), (r1 - r0) * n) };
            simd::matmul_block(&ad[r0 * k..r1 * k], r1 - r0, k, bd, n, ob);
        });
        Tensor::from_vec(out, m, n)
    }

    fn matmul_at_b(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(
            a.rows(),
            b.rows(),
            "matmul_at_b shape mismatch: ({}×{})ᵀ × {}×{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        );
        let (m, k) = a.shape();
        let n = b.cols();
        if m * k * n == 0 {
            return Tensor::zeros(k, n);
        }
        if m * k * n < PAR_MATMUL_MIN_FLOPS || k <= AT_B_ROW_BLOCK {
            return Blocked.matmul_at_b(a, b);
        }
        let pool = self.pool();
        if pool.workers() == 0 {
            return Blocked.matmul_at_b(a, b);
        }
        let mut out = vec![0.0f32; k * n];
        let optr = SendPtr(out.as_mut_ptr());
        let (ad, bd) = (a.data(), b.data());
        // SAFETY: block `blk` writes only out rows i0..i1; disjoint.
        pool.run_indexed(k.div_ceil(AT_B_ROW_BLOCK), &move |blk| {
            let i0 = blk * AT_B_ROW_BLOCK;
            let i1 = (i0 + AT_B_ROW_BLOCK).min(k);
            let ob =
                unsafe { std::slice::from_raw_parts_mut(optr.get().add(i0 * n), (i1 - i0) * n) };
            simd::matmul_at_b_block(ad, m, k, i0, i1 - i0, bd, n, ob);
        });
        Tensor::from_vec(out, k, n)
    }

    fn matmul_a_bt(&self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_a_bt_shapes(a, b);
        let (m, l) = a.shape();
        let n = b.rows();
        if m * l * n == 0 {
            return Tensor::zeros(m, n);
        }
        if m * l * n < PAR_MATMUL_MIN_FLOPS || m <= ROW_BLOCK {
            return Blocked.matmul_a_bt(a, b);
        }
        let pool = self.pool();
        if pool.workers() == 0 {
            return Blocked.matmul_a_bt(a, b);
        }
        let mut out = vec![0.0f32; m * n];
        let optr = SendPtr(out.as_mut_ptr());
        let (ad, bd) = (a.data(), b.data());
        // SAFETY: disjoint row blocks, ordered by run_indexed.
        pool.run_indexed(m.div_ceil(ROW_BLOCK), &move |blk| {
            let r0 = blk * ROW_BLOCK;
            let r1 = (r0 + ROW_BLOCK).min(m);
            let ob =
                unsafe { std::slice::from_raw_parts_mut(optr.get().add(r0 * n), (r1 - r0) * n) };
            simd::matmul_a_bt_block(&ad[r0 * l..r1 * l], r1 - r0, l, bd, n, ob);
        });
        Tensor::from_vec(out, m, n)
    }

    fn zip_map(&self, a: &Tensor, b: &Tensor, f: &(dyn Fn(f32, f32) -> f32 + Sync)) -> Tensor {
        assert_eq!(a.shape(), b.shape(), "elementwise shape mismatch");
        let len = a.data().len();
        if len < PAR_ELEMWISE_MIN {
            return Blocked.zip_map(a, b, f);
        }
        let pool = self.pool();
        if pool.workers() == 0 {
            return Blocked.zip_map(a, b, f);
        }
        let mut out = vec![0.0f32; len];
        let optr = SendPtr(out.as_mut_ptr());
        let (ad, bd) = (a.data(), b.data());
        // SAFETY: disjoint SUM_BLOCK chunks; every element is independent,
        // so any partition is exact.
        pool.run_indexed(len.div_ceil(SUM_BLOCK), &move |blk| {
            let lo = blk * SUM_BLOCK;
            let hi = (lo + SUM_BLOCK).min(len);
            let chunk = unsafe { std::slice::from_raw_parts_mut(optr.get().add(lo), hi - lo) };
            for (j, o) in chunk.iter_mut().enumerate() {
                *o = f(ad[lo + j], bd[lo + j]);
            }
        });
        Tensor::from_vec(out, a.rows(), a.cols())
    }

    fn map(&self, a: &Tensor, f: &(dyn Fn(f32) -> f32 + Sync)) -> Tensor {
        let len = a.data().len();
        if len < PAR_ELEMWISE_MIN {
            return Blocked.map(a, f);
        }
        let pool = self.pool();
        if pool.workers() == 0 {
            return Blocked.map(a, f);
        }
        let mut out = vec![0.0f32; len];
        let optr = SendPtr(out.as_mut_ptr());
        let ad = a.data();
        // SAFETY: disjoint SUM_BLOCK chunks.
        pool.run_indexed(len.div_ceil(SUM_BLOCK), &move |blk| {
            let lo = blk * SUM_BLOCK;
            let hi = (lo + SUM_BLOCK).min(len);
            let chunk = unsafe { std::slice::from_raw_parts_mut(optr.get().add(lo), hi - lo) };
            for (j, o) in chunk.iter_mut().enumerate() {
                *o = f(ad[lo + j]);
            }
        });
        Tensor::from_vec(out, a.rows(), a.cols())
    }

    fn col_sums(&self, a: &Tensor) -> Vec<f32> {
        let (n, d) = a.shape();
        if n * d == 0 {
            return vec![0.0; d];
        }
        // Fixed-size row blocks → per-block partials → ordered fold. The
        // grouping depends only on the shape, so any thread count (and the
        // sequential path) produces bit-identical sums.
        let n_blocks = n.div_ceil(ROW_BLOCK);
        let partials = pool_map_indexed(self.pool(), n_blocks, |blk| {
            let lo = blk * ROW_BLOCK;
            let hi = (lo + ROW_BLOCK).min(n);
            let mut acc = vec![0.0f32; d];
            for r in lo..hi {
                for (s, &v) in acc.iter_mut().zip(a.row_slice(r)) {
                    *s += v;
                }
            }
            acc
        });
        let mut out = vec![0.0f32; d];
        for p in &partials {
            for (s, &v) in out.iter_mut().zip(p) {
                *s += v;
            }
        }
        out
    }

    fn sum(&self, a: &Tensor) -> f32 {
        let data = a.data();
        if data.is_empty() {
            return 0.0;
        }
        let n_blocks = data.len().div_ceil(SUM_BLOCK);
        let partials = pool_map_indexed(self.pool(), n_blocks, |blk| {
            let lo = blk * SUM_BLOCK;
            let hi = (lo + SUM_BLOCK).min(data.len());
            data[lo..hi].iter().sum::<f32>()
        });
        partials.iter().sum()
    }
}

/// Applies `f` to every item of `items` — over the global thread pool when
/// the `parallel` feature is on and the pool has workers — returning
/// results in input order.
///
/// This is the workspace-wide primitive for embarrassingly parallel loops
/// (per-circuit ground-truth generation, batched encoder forwards). `f`
/// receives `(index, &item)`; output order never depends on scheduling.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    pool_map_indexed(pool::global(), items.len(), |i| f(i, &items[i]))
}

static NAIVE: Naive = Naive;
static BLOCKED: Blocked = Blocked;
static PARALLEL: Parallel = Parallel::new();

fn default_backend() -> &'static dyn Backend {
    #[cfg(feature = "parallel")]
    {
        &PARALLEL
    }
    #[cfg(not(feature = "parallel"))]
    {
        &BLOCKED
    }
}

struct Selection {
    backend: &'static dyn Backend,
    /// `true` when `MOSS_BACKEND` names a concrete backend, which disables
    /// size-based dispatch in [`for_flops`].
    pinned: bool,
}

fn selection() -> &'static Selection {
    static SEL: OnceLock<Selection> = OnceLock::new();
    SEL.get_or_init(|| match std::env::var("MOSS_BACKEND").as_deref() {
        Ok("naive") => Selection {
            backend: &NAIVE,
            pinned: true,
        },
        Ok("blocked") => Selection {
            backend: &BLOCKED,
            pinned: true,
        },
        Ok("parallel") => Selection {
            backend: &PARALLEL,
            pinned: true,
        },
        Ok("auto") => Selection {
            backend: default_backend(),
            pinned: false,
        },
        Ok(other) => {
            panic!("unknown MOSS_BACKEND {other:?}; expected naive|blocked|parallel|auto")
        }
        Err(_) => Selection {
            backend: default_backend(),
            pinned: false,
        },
    })
}

/// The process-wide active backend.
///
/// Chosen once from `MOSS_BACKEND` (`naive` | `blocked` | `parallel` |
/// `auto`); unset (or `auto`) defaults to [`Parallel`] with the `parallel`
/// feature, [`Blocked`] without.
///
/// # Panics
///
/// Panics on an unrecognized `MOSS_BACKEND` value.
pub fn active() -> &'static dyn Backend {
    selection().backend
}

/// The backend to use for a problem of `flops ≈ m·k·n`: the pinned backend
/// when `MOSS_BACKEND` names one explicitly, otherwise [`Blocked`]
/// (sequential SIMD, zero dispatch overhead) below the parallel matmul
/// threshold and the default backend above it.
///
/// [`Parallel`] applies the same threshold internally, so the two dispatch
/// layers agree; this entry point just skips the per-call pool lookup for
/// ops known to be small.
pub fn for_flops(flops: usize) -> &'static dyn Backend {
    let sel = selection();
    if sel.pinned || flops >= PAR_MATMUL_MIN_FLOPS {
        sel.backend
    } else {
        &BLOCKED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arange(rows: usize, cols: usize, scale: f32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| ((i * 2_654_435_761 % 1000) as f32 / 500.0 - 1.0) * scale)
            .collect();
        Tensor::from_vec(data, rows, cols)
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            assert!((x - y).abs() <= tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn backends_agree_on_matmul() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 4), (17, 9, 33), (70, 80, 90)] {
            let a = arange(m, k, 1.0);
            let b = arange(k, n, 0.5);
            let reference = Naive.matmul(&a, &b);
            assert_close(&Blocked.matmul(&a, &b), &reference, 1e-4, "blocked");
            assert_close(
                &Parallel::with_threads(3).matmul(&a, &b),
                &reference,
                1e-4,
                "parallel",
            );
        }
    }

    #[test]
    fn transposed_forms_match_explicit_transpose() {
        let a = arange(13, 7, 1.0);
        let b = arange(13, 5, 0.7);
        let reference = Naive.matmul(&a.transpose(), &b);
        for backend in [&Blocked as &dyn Backend, &Parallel::with_threads(2)] {
            assert_close(&backend.matmul_at_b(&a, &b), &reference, 1e-4, "at_b");
        }
        let c = arange(11, 7, 0.9);
        let reference = Naive.matmul(&a, &c.transpose());
        for backend in [&Blocked as &dyn Backend, &Parallel::with_threads(2)] {
            assert_close(&backend.matmul_a_bt(&a, &c), &reference, 1e-4, "a_bt");
        }
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts() {
        // Big enough to clear every parallel threshold.
        let a = arange(300, 80, 1.0);
        let b = arange(80, 70, 0.3);
        let wide = arange(3, 30_000, 0.1);
        let t1 = Parallel::with_threads(1);
        for threads in [2, 4, 7] {
            let tn = Parallel::with_threads(threads);
            assert_eq!(
                t1.matmul(&a, &b).data(),
                tn.matmul(&a, &b).data(),
                "matmul at {threads} threads"
            );
            assert_eq!(
                t1.col_sums(&wide),
                tn.col_sums(&wide),
                "col_sums at {threads} threads"
            );
            assert_eq!(t1.sum(&wide), tn.sum(&wide), "sum at {threads} threads");
            assert_eq!(
                t1.map(&wide, &|x| x * 1.5 + 0.1).data(),
                tn.map(&wide, &|x| x * 1.5 + 0.1).data(),
                "map at {threads} threads"
            );
        }
    }

    #[test]
    fn reductions_match_reference() {
        let a = arange(130, 7, 1.0);
        let reference = Naive.col_sums(&a);
        let par = Parallel::with_threads(4).col_sums(&a);
        for (r, p) in reference.iter().zip(&par) {
            assert!((r - p).abs() < 1e-4, "{r} vs {p}");
        }
        assert!((Naive.sum(&a) - Parallel::with_threads(4).sum(&a)).abs() < 1e-3);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |i, &v| {
            assert_eq!(i, v);
            v * v
        });
        assert_eq!(out, items.iter().map(|&v| v * v).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, |_, &v| v).is_empty());
    }

    #[test]
    fn empty_shapes_are_handled() {
        let a = Tensor::zeros(0, 5);
        let b = Tensor::zeros(5, 3);
        for backend in [&Naive as &dyn Backend, &Blocked, &Parallel::new()] {
            assert_eq!(backend.matmul(&a, &b).shape(), (0, 3), "{}", backend.name());
            assert_eq!(backend.sum(&a), 0.0);
        }
    }

    #[test]
    fn active_backend_resolves() {
        // Whatever the env says, the process-global must resolve and work.
        let b = active();
        let x = Tensor::eye(3);
        assert_eq!(b.matmul(&x, &x), x);
        assert!(!b.name().is_empty());
    }

    #[test]
    fn for_flops_dispatches_by_size_unless_pinned() {
        if std::env::var("MOSS_BACKEND").is_ok() {
            // A pinned backend must win at every size.
            assert_eq!(for_flops(1).name(), active().name());
            assert_eq!(for_flops(usize::MAX).name(), active().name());
            return;
        }
        assert_eq!(for_flops(10).name(), "blocked");
        assert_eq!(
            for_flops(PAR_MATMUL_MIN_FLOPS).name(),
            default_backend().name()
        );
    }
}
