//! A persistent work-stealing thread pool for the compute backends.
//!
//! The original `Parallel` backend spawned fresh workers through
//! `std::thread::scope` on every kernel call, which cost tens of
//! microseconds per matmul — more than the multiply itself at small and
//! medium sizes (`BENCH_kernels.json` showed the parallel backend *losing*
//! to the sequential blocked kernel). This module replaces that with one
//! lazily-initialized process-wide pool ([`global`]) whose workers are
//! spawned once, park on a condvar when idle, and wake per submission.
//!
//! ## Architecture
//!
//! - One bounded-size deque (`Mutex<VecDeque<Task>>`) per worker. A batch
//!   submission splits its index range into chunk tasks and deals them
//!   round-robin across the deques.
//! - Workers pop their own deque front-first; an empty deque makes the
//!   worker *steal* from the back of a sibling's deque before parking.
//! - The submitting thread participates: it drains tasks alongside the
//!   workers and only blocks (on the batch's completion condvar) when no
//!   queued work is left. A pool sized for `t` configured threads therefore
//!   runs `t - 1` dedicated workers — the caller is the `t`-th.
//! - Nested submissions are fine: a worker that submits a batch from
//!   inside a task helps drain queues (its own sub-tasks included) until
//!   its batch completes, so the pool cannot deadlock on recursion.
//!
//! ## Determinism
//!
//! The pool never influences numerics. Batches are decomposed by *shape
//! only* (fixed chunk sizes, never derived from the worker count), every
//! output element is written by exactly one task, and tasks carry their
//! logical chunk index — which worker executes a chunk, and in what order,
//! is invisible in the result. `crates/tensor/tests/pool_determinism.rs`
//! pins bit-identical kernel outputs across `MOSS_THREADS` ∈ {1, 2, 4, 8}.
//!
//! ## Observability
//!
//! Submissions, steals, and a queue-depth high-water mark are counted on
//! relaxed atomics (readable via [`ThreadPool::stats`]) and mirrored into
//! `moss-obs` (`pool.tasks_submitted` / `pool.tasks_stolen` counters and
//! the `pool.queue_depth` gauge) so `MOSS_OBS=1` run reports show pool
//! behaviour. When observability is disabled the extra cost per batch is
//! one relaxed atomic load per moss-obs call site.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// One unit of queued work: a chunk index of some in-flight batch.
struct Task {
    batch: Arc<Batch>,
    chunk: usize,
}

/// An in-flight `run_indexed` call. The closure pointer's lifetime is
/// erased; see the safety argument on [`ThreadPool::run_indexed`].
struct Batch {
    run: *const (dyn Fn(usize) + Sync),
    remaining: AtomicUsize,
    panicked: AtomicBool,
    done_lock: Mutex<()>,
    done: Condvar,
}

// SAFETY: `run` points at a `Sync` closure that `run_indexed` keeps alive
// (and borrows valid) until `remaining` reaches zero — it blocks before
// returning. Tasks only dereference `run` while `remaining > 0`.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Executes one chunk and signals completion. Panics in the closure
    /// are caught so `remaining` always reaches zero (a poisoned batch
    /// re-panics on the submitting thread).
    fn execute(&self, chunk: usize) {
        // SAFETY: remaining > 0 (this task exists), so the closure borrow
        // is still live per the contract above.
        let run = unsafe { &*self.run };
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(chunk))).is_err() {
            self.panicked.store(true, Ordering::Release);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Lock pairs with the waiter's check-then-wait so the final
            // notify cannot slip between its load and its `wait`.
            let _g = self.done_lock.lock().unwrap_or_else(|e| e.into_inner());
            self.done.notify_all();
        }
    }
}

/// Counters the pool maintains unconditionally (relaxed atomics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks ever submitted to worker deques.
    pub tasks_submitted: u64,
    /// Tasks executed by a thread other than the deque's owner (stolen),
    /// including tasks drained by the submitting thread.
    pub tasks_stolen: u64,
    /// High-water mark of queued (not yet claimed) tasks.
    pub max_queue_depth: u64,
    /// Dedicated worker threads currently alive.
    pub live_workers: usize,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Guards the park/unpark handshake (`wake` waits on it).
    park_lock: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    live: AtomicUsize,
    submitted: AtomicU64,
    stolen: AtomicU64,
    queued: AtomicU64,
    max_depth: AtomicU64,
}

impl Shared {
    /// Pops a task: own deque front first, then steal from siblings'
    /// backs. `me` is the worker index, or `None` for the submitting
    /// thread (everything it takes counts as a steal).
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(me) = me {
            if let Some(t) = self.queues[me]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
            {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        let n = self.queues.len();
        let start = me.map_or(0, |m| m + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(t) = self.queues[victim]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_back()
            {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.stolen.fetch_add(1, Ordering::Relaxed);
                moss_obs::counter("pool.tasks_stolen", 1);
                return Some(t);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.queued.load(Ordering::Acquire) > 0
    }
}

fn worker_loop(shared: Arc<Shared>, me: usize) {
    shared.live.fetch_add(1, Ordering::SeqCst);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        if let Some(task) = shared.find_task(Some(me)) {
            task.batch.execute(task.chunk);
            continue;
        }
        // Park. The re-check under `park_lock` pairs with submitters
        // notifying under the same lock, so a push cannot be missed.
        let guard = shared.park_lock.lock().unwrap_or_else(|e| e.into_inner());
        if shared.shutdown.load(Ordering::Acquire) || shared.has_work() {
            continue;
        }
        drop(shared.wake.wait(guard));
    }
    shared.live.fetch_sub(1, Ordering::SeqCst);
}

/// A persistent pool of worker threads. Construct via [`ThreadPool::new`]
/// for an owned pool (joined on drop) or use the process-wide [`global`].
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl ThreadPool {
    /// A pool sized for `threads` total compute threads: `threads - 1`
    /// dedicated workers (the submitting thread is the last). `threads`
    /// of 0 or 1 — or a build without the `parallel` feature — gives a
    /// pool with no workers; every submission then runs inline on the
    /// caller.
    pub fn new(threads: usize) -> ThreadPool {
        let workers = if cfg!(feature = "parallel") {
            threads.saturating_sub(1)
        } else {
            0
        };
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            park_lock: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("moss-pool-{me}"))
                    .spawn(move || worker_loop(shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Dedicated worker threads (total parallelism is one more: the
    /// submitting thread participates).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Current counter values.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks_submitted: self.shared.submitted.load(Ordering::Relaxed),
            tasks_stolen: self.shared.stolen.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_depth.load(Ordering::Relaxed),
            live_workers: self.shared.live.load(Ordering::SeqCst),
        }
    }

    /// Runs `f(chunk)` for every `chunk` in `0..chunks`, fanning the
    /// chunks out across the pool. Blocks until all chunks finished; the
    /// submitting thread executes chunks too. With no workers (or a
    /// single chunk) everything runs inline, in chunk order.
    ///
    /// `f` must partition its work by chunk index alone: each chunk is
    /// executed exactly once, on an arbitrary thread, in an arbitrary
    /// order. Determinism is the *caller's* decomposition property — see
    /// the module docs.
    ///
    /// # Panics
    ///
    /// Re-panics on the submitting thread if any chunk panicked.
    pub fn run_indexed(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        let workers = self.shared.queues.len();
        if workers == 0 || chunks == 1 {
            // Still counted as submitted work: on a zero-worker pool (one
            // core, or the `parallel` feature off) the report should show
            // how much traffic the pool *would* carry, not read as idle.
            self.shared
                .submitted
                .fetch_add(chunks as u64, Ordering::Relaxed);
            moss_obs::counter("pool.tasks_submitted", chunks as u64);
            for chunk in 0..chunks {
                f(chunk);
            }
            return;
        }

        // SAFETY: erase the borrow's lifetime to store it in the 'static
        // task queue. The loop below does not return until `remaining`
        // hits zero, and no task dereferences the pointer afterwards, so
        // the borrow outlives every use.
        let run: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f) };
        let batch = Arc::new(Batch {
            run,
            remaining: AtomicUsize::new(chunks),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });

        self.shared
            .submitted
            .fetch_add(chunks as u64, Ordering::Relaxed);
        moss_obs::counter("pool.tasks_submitted", chunks as u64);
        let depth = self
            .shared
            .queued
            .fetch_add(chunks as u64, Ordering::AcqRel)
            + chunks as u64;
        self.shared.max_depth.fetch_max(depth, Ordering::Relaxed);
        moss_obs::gauge_max("pool.queue_depth", depth);
        for chunk in 0..chunks {
            self.shared.queues[chunk % workers]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(Task {
                    batch: Arc::clone(&batch),
                    chunk,
                });
        }
        {
            let _g = self
                .shared
                .park_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.wake.notify_all();
        }

        // Participate until this batch is done. Any queued task (ours or a
        // nested batch's) is progress; block only when the queues are dry.
        while batch.remaining.load(Ordering::Acquire) != 0 {
            match self.shared.find_task(None) {
                Some(task) => task.batch.execute(task.chunk),
                None => {
                    let mut g = batch.done_lock.lock().unwrap_or_else(|e| e.into_inner());
                    while batch.remaining.load(Ordering::Acquire) != 0 {
                        if self.shared.has_work() {
                            // A nested batch landed while we slept; go
                            // help instead of idling.
                            break;
                        }
                        g = batch.done.wait(g).unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }
        if batch.panicked.load(Ordering::Acquire) {
            panic!("moss-tensor pool task panicked");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self
                .shared
                .park_lock
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The process-wide pool, lazily spawned on first use and sized by
/// `MOSS_THREADS` (else `available_parallelism`) via
/// [`crate::backend::configured_threads`]. Never torn down; its workers
/// park when idle.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(crate::backend::configured_threads()))
}

/// A pool pinned to exactly `threads` compute threads. The process keeps
/// one pool per distinct count (created on demand, leaked — this exists
/// for `Parallel::with_threads` and the determinism tests, which compare a
/// handful of fixed counts).
pub fn with_threads(threads: usize) -> &'static ThreadPool {
    static PINNED: OnceLock<Mutex<Vec<(usize, &'static ThreadPool)>>> = OnceLock::new();
    let registry = PINNED.get_or_init(|| Mutex::new(Vec::new()));
    let mut pools = registry.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&(_, pool)) = pools.iter().find(|&&(n, _)| n == threads) {
        return pool;
    }
    let pool: &'static ThreadPool = Box::leak(Box::new(ThreadPool::new(threads)));
    pools.push((threads, pool));
    pool
}

/// Forces lazy global state — the pool's worker threads and the SIMD
/// feature detection — to initialize now. Benchmarks call this in setup
/// so the first measured batch does not inherit one-time spawn cost.
pub fn warm_up() {
    crate::simd::level();
    let pool = global();
    // One trivial batch round-trips the submit/steal/park machinery.
    let touched = AtomicUsize::new(0);
    pool.run_indexed(pool.workers().max(1), &|_| {
        touched.fetch_add(1, Ordering::Relaxed);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "parallel")]
    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run_indexed(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let stats = pool.stats();
        assert_eq!(stats.tasks_submitted, 1000);
        assert!(stats.max_queue_depth > 0);
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.workers(), 0);
        let mut order = Vec::new();
        let cell = std::sync::Mutex::new(&mut order);
        pool.run_indexed(5, &|i| cell.lock().unwrap().push(i));
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn nested_submissions_complete() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        pool.run_indexed(8, &|_| {
            pool.run_indexed(8, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn drop_joins_all_workers() {
        let pool = ThreadPool::new(5);
        let shared = Arc::clone(&pool.shared);
        pool.run_indexed(64, &|_| {});
        // Workers may still be starting; live peaks at 4.
        drop(pool);
        assert_eq!(
            shared.live.load(Ordering::SeqCst),
            0,
            "workers lingered after pool teardown"
        );
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_indexed(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must stay usable after a panicked batch.
        let ok = AtomicUsize::new(0);
        pool.run_indexed(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }
}
