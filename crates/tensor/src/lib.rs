//! # moss-tensor
//!
//! A small tape-based automatic-differentiation engine — the stand-in for
//! PyTorch in the MOSS reproduction. All models in this workspace (the LLM
//! text encoder, the MOSS GNN, and the DeepSeq2 baseline) train end-to-end
//! through this crate.
//!
//! - [`Tensor`]: dense row-major `f32` matrices;
//! - [`Graph`]/[`Var`]: an eager autograd tape with matmul, broadcasts,
//!   activations (ReLU/GELU/tanh/sigmoid), softmax, layer norm, L2 row
//!   normalization, gather/concat/slice, dropout, and the paper's losses
//!   (smooth-L1 for Etoggle/EAT/RrNdM/RNM; symmetric row/column
//!   cross-entropy for the CLIP-style RNC loss of Fig. 6);
//! - [`Backend`] ([`Naive`]/[`Blocked`]/[`Parallel`]): pluggable compute
//!   backends every dense kernel dispatches through — see [`backend`].
//!   The fast paths run runtime-dispatched SIMD microkernels ([`simd`])
//!   over a persistent work-stealing thread pool ([`pool`]);
//! - [`ParamStore`]/[`Adam`]/[`Sgd`]: named parameters and optimizers;
//! - [`max_gradient_error`]: finite-difference gradient checking;
//! - [`save_params`]/[`load_params`]: binary checkpoints.
//!
//! ## Example: one gradient step
//!
//! ```
//! use moss_tensor::{Adam, Graph, ParamStore, Tensor};
//!
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::xavier(2, 2, 0));
//! let mut opt = Adam::new(1e-2);
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_rows(&[&[1.0, 0.5]]));
//! let wv = g.param(w, &store);
//! let y = g.matmul(x, wv);
//! let loss = g.smooth_l1(y, Tensor::row(&[1.0, -1.0]));
//! let grads = g.backward(loss);
//! opt.step(&mut store, &grads);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
mod gradcheck;
mod graph;
mod optim;
mod params;
pub mod pool;
mod serialize;
pub mod simd;
mod tensor;

pub use backend::{for_flops, par_map, Backend, Blocked, Naive, Parallel};
pub use gradcheck::{max_gradient_error, max_gradient_error_with_backend};
pub use graph::{l2_normalize_rows, layer_norm_rows, softmax_rows, Gradients, Graph, Var};
pub use optim::{Adam, Sgd};
pub use params::{ParamId, ParamStore};
pub use pool::{PoolStats, ThreadPool};
pub use serialize::{load_params, save_params};
pub use tensor::Tensor;
