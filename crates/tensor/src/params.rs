//! Named, trainable parameter storage shared across training steps.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Identifier of a parameter within one [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(usize);

impl ParamId {
    /// The dense index of this parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A store of named trainable tensors.
///
/// Models register parameters once at construction; each training step reads
/// them into a fresh [`crate::Graph`] and applies optimizer updates back.
///
/// # Examples
///
/// ```
/// use moss_tensor::{ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::xavier(4, 4, 1));
/// assert_eq!(store.get(w).shape(), (4, 4));
/// assert_eq!(store.name(w), "w");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
    by_name: HashMap<String, ParamId>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    /// Registers a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "parameter '{name}' registered twice"
        );
        let id = ParamId(self.values.len());
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.values.push(value);
        id
    }

    /// Registers a parameter, or binds to an existing one with the same
    /// name (leaving its current value untouched). This is how models are
    /// reconstructed against a restored checkpoint: the constructor re-runs
    /// its registration sequence and picks up the trained values.
    ///
    /// # Panics
    ///
    /// Panics if an existing parameter has a different shape than `init`.
    pub fn get_or_add(&mut self, name: impl Into<String>, init: Tensor) -> ParamId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            assert_eq!(
                self.values[id.0].shape(),
                init.shape(),
                "parameter '{name}' shape mismatch on rebind"
            );
            return id;
        }
        self.add(name, init)
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Overwrites a parameter value (shape must match).
    ///
    /// # Panics
    ///
    /// Panics if the shape changes.
    pub fn set(&mut self, id: ParamId, value: Tensor) {
        assert_eq!(
            self.values[id.0].shape(),
            value.shape(),
            "parameter '{}' shape change",
            self.names[id.0]
        );
        self.values[id.0] = value;
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.by_name.get(name).copied()
    }

    /// Number of parameters (tensors).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar count across all parameters.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(|t| t.data().len()).sum()
    }

    /// Iterates `(id, name, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new();
        let a = s.add("layer.w", Tensor::zeros(2, 3));
        let b = s.add("layer.b", Tensor::zeros(1, 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.scalar_count(), 9);
        assert_eq!(s.find("layer.w"), Some(a));
        assert_eq!(s.find("nope"), None);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_rejected() {
        let mut s = ParamStore::new();
        s.add("w", Tensor::zeros(1, 1));
        s.add("w", Tensor::zeros(1, 1));
    }

    #[test]
    #[should_panic(expected = "shape change")]
    fn set_rejects_shape_change() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::zeros(2, 2));
        s.set(w, Tensor::zeros(3, 3));
    }
}
