//! Finite-difference gradient checking for the autograd tape.
//!
//! Used by the tensor crate's own tests and by downstream model tests to
//! verify that every op's backward matches its forward numerically.

use crate::backend::{self, Backend};
use crate::graph::{Gradients, Graph};
use crate::params::{ParamId, ParamStore};

/// Compares analytic gradients against central finite differences on the
/// process-wide active backend.
///
/// `build` must construct the full forward pass and return the scalar loss
/// var; it is invoked many times with perturbed parameter values.
///
/// Returns the maximum relative error across all checked parameters.
///
/// # Panics
///
/// Panics if `build` returns a non-scalar loss.
pub fn max_gradient_error(
    store: &mut ParamStore,
    params: &[ParamId],
    build: impl FnMut(&mut Graph, &ParamStore) -> crate::graph::Var,
) -> f32 {
    max_gradient_error_with_backend(backend::active(), store, params, build)
}

/// [`max_gradient_error`] pinned to a specific compute backend — used by
/// the backend-equivalence tests to verify backward passes kernel by
/// kernel.
///
/// # Panics
///
/// Panics if `build` returns a non-scalar loss.
pub fn max_gradient_error_with_backend(
    be: &'static dyn Backend,
    store: &mut ParamStore,
    params: &[ParamId],
    mut build: impl FnMut(&mut Graph, &ParamStore) -> crate::graph::Var,
) -> f32 {
    let analytic: Gradients = {
        let mut g = Graph::with_backend(be);
        let loss = build(&mut g, store);
        g.backward(loss)
    };
    let eps = 1e-3f32;
    let mut worst = 0.0f32;
    for &p in params {
        let base = store.get(p).clone();
        let ga = analytic
            .get(p)
            .cloned()
            .unwrap_or_else(|| base.map(|_| 0.0));
        for i in 0..base.data().len() {
            let mut plus = base.clone();
            plus.data_mut()[i] += eps;
            store.set(p, plus);
            let lp = {
                let mut g = Graph::with_backend(be);
                let loss = build(&mut g, store);
                g.value(loss).get(0, 0)
            };
            let mut minus = base.clone();
            minus.data_mut()[i] -= eps;
            store.set(p, minus);
            let lm = {
                let mut g = Graph::with_backend(be);
                let loss = build(&mut g, store);
                g.value(loss).get(0, 0)
            };
            store.set(p, base.clone());
            let numeric = (lp - lm) / (2.0 * eps);
            let a = ga.data()[i];
            let denom = a.abs().max(numeric.abs()).max(1e-2);
            worst = worst.max((a - numeric).abs() / denom);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn mlp_with_every_activation_checks_out() {
        let mut store = ParamStore::new();
        let w1 = store.add("w1", Tensor::xavier(3, 4, 1));
        let b1 = store.add("b1", Tensor::xavier(1, 4, 2));
        let w2 = store.add("w2", Tensor::xavier(4, 2, 3));
        let err = max_gradient_error(&mut store, &[w1, b1, w2], |g, s| {
            let x = g.input(Tensor::xavier(5, 3, 9));
            let w1v = g.param(w1, s);
            let b1v = g.param(b1, s);
            let w2v = g.param(w2, s);
            let h = g.matmul(x, w1v);
            let h = g.add_row(h, b1v);
            let h = g.gelu(h);
            let o = g.matmul(h, w2v);
            let o = g.tanh(o);
            g.smooth_l1(o, Tensor::xavier(5, 2, 11))
        });
        assert!(err < 2e-2, "max relative gradient error {err}");
    }

    #[test]
    fn softmax_layernorm_normalize_check_out() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::xavier(4, 4, 5));
        let err = max_gradient_error(&mut store, &[w], |g, s| {
            let x = g.input(Tensor::xavier(3, 4, 6));
            let wv = g.param(w, s);
            let h = g.matmul(x, wv);
            let h = g.layer_norm_rows(h);
            let h = g.softmax_rows(h);
            let h = g.l2_normalize_rows(h);
            let m = g.mean_rows(h);
            g.sum_all(m)
        });
        assert!(err < 2e-2, "max relative gradient error {err}");
    }

    #[test]
    fn cross_entropy_and_attention_style_ops_check_out() {
        let mut store = ParamStore::new();
        let wq = store.add("wq", Tensor::xavier(4, 4, 7));
        let wk = store.add("wk", Tensor::xavier(4, 4, 8));
        let temp = store.add("t", Tensor::from_rows(&[&[0.5]]));
        let err = max_gradient_error(&mut store, &[wq, wk, temp], |g, s| {
            let x = g.input(Tensor::xavier(3, 4, 10));
            let q = {
                let w = g.param(wq, s);
                g.matmul(x, w)
            };
            let k = {
                let w = g.param(wk, s);
                g.matmul(x, w)
            };
            let kt = g.transpose(k);
            let scores = g.matmul(q, kt);
            let tv = g.param(temp, s);
            let scores = g.mul_scalar_var(scores, tv);
            g.cross_entropy_rows(scores, &[0, 1, 2])
        });
        assert!(err < 2e-2, "max relative gradient error {err}");
    }

    #[test]
    fn concat_slice_gather_check_out() {
        let mut store = ParamStore::new();
        let e = store.add("e", Tensor::xavier(5, 3, 13));
        let w = store.add("w", Tensor::xavier(4, 2, 14));
        let err = max_gradient_error(&mut store, &[e, w], |g, s| {
            let ev = g.param(e, s);
            let wv = g.param(w, s);
            let picked = g.gather_rows(ev, &[0, 2, 4]);
            let twice = g.concat_cols(picked, picked);
            let part = g.slice_cols(twice, 1, 4);
            let both = g.concat_rows(&[part, part]);
            let h = g.matmul(both, wv);
            let h = g.sigmoid(h);
            g.mean_all(h)
        });
        assert!(err < 2e-2, "max relative gradient error {err}");
    }

    #[test]
    fn scatter_and_mul_col_check_out() {
        let mut store = ParamStore::new();
        let base = store.add("base", Tensor::xavier(4, 3, 21));
        let rows = store.add("rows", Tensor::xavier(2, 3, 22));
        let col = store.add("col", Tensor::xavier(4, 1, 23));
        let err = max_gradient_error(&mut store, &[base, rows, col], |g, s| {
            let bv = g.param(base, s);
            let rv = g.param(rows, s);
            let cv = g.param(col, s);
            let scattered = g.scatter_rows(bv, rv, &[1, 3]);
            let weighted = g.mul_col(scattered, cv);
            let t = g.tanh(weighted);
            g.mean_all(t)
        });
        assert!(err < 2e-2, "max relative gradient error {err}");
    }
}
