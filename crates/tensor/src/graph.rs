//! The autograd tape: eager forward evaluation with recorded operations and
//! reverse-mode backpropagation.
//!
//! Each training step builds a fresh [`Graph`], reads parameters from a
//! [`ParamStore`], composes operations (each returning a [`Var`] handle),
//! and calls [`Graph::backward`] on a scalar loss to obtain per-parameter
//! gradients.

use std::collections::HashMap;

use crate::backend::{self, Backend};
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Per-parameter gradients produced by [`Graph::backward`].
#[derive(Debug, Clone, Default)]
pub struct Gradients {
    by_param: HashMap<ParamId, Tensor>,
}

impl Gradients {
    /// Gradient for a parameter, if it participated in the loss.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(&id)
    }

    /// Iterates `(param, gradient)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.by_param.iter().map(|(&k, v)| (k, v))
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.by_param.len()
    }

    /// Whether no gradients were produced.
    pub fn is_empty(&self) -> bool {
        self.by_param.is_empty()
    }

    /// Global L2 norm across all gradients.
    ///
    /// The per-tensor partial sums are combined in [`ParamId`] order:
    /// `HashMap` iteration order varies per instance, f32 addition is not
    /// associative, and this norm feeds the gradient-clip scale — an
    /// unordered sum would make training nondeterministic in the last ulp.
    pub fn global_norm(&self) -> f32 {
        let mut partial: Vec<(ParamId, f32)> = self
            .by_param
            .iter()
            .map(|(&id, g)| (id, g.data().iter().map(|&x| x * x).sum::<f32>()))
            .collect();
        partial.sort_unstable_by_key(|&(id, _)| id);
        partial.iter().map(|&(_, s)| s).sum::<f32>().sqrt()
    }

    /// Scales all gradients in place (used for clipping).
    pub fn scale(&mut self, factor: f32) {
        let be = backend::active();
        for g in self.by_param.values_mut() {
            *g = be.map(g, &|x| x * factor);
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Param(ParamId),
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    AddRow(Var, Var),
    MulScalarVar(Var, Var),
    Transpose(Var),
    Relu(Var),
    Gelu(Var),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    SoftmaxRows(Var),
    MeanRows(Var),
    SumAll(Var),
    MeanAll(Var),
    ConcatCols(Var, Var),
    ConcatRows(Vec<Var>),
    SliceCols(Var, usize, usize),
    GatherRows(Var, Vec<usize>),
    ScatterRows(Var, Var, Vec<usize>),
    MulCol(Var, Var),
    L2NormalizeRows(Var),
    LayerNormRows(Var),
    Dropout(Var, Tensor),
    SmoothL1(Var, Tensor),
    SmoothL1Weighted(Var, Tensor, Tensor),
    CrossEntropyRows(Var, Vec<usize>),
    CrossEntropyCols(Var, Vec<usize>),
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Tensor,
}

/// An autograd tape.
///
/// # Examples
///
/// ```
/// use moss_tensor::{Graph, ParamStore, Tensor};
///
/// let mut store = ParamStore::new();
/// let w = store.add("w", Tensor::from_rows(&[&[2.0]]));
/// let mut g = Graph::new();
/// let x = g.input(Tensor::from_rows(&[&[3.0]]));
/// let wv = g.param(w, &store);
/// let y = g.matmul(x, wv);
/// let loss = g.sum_all(y);
/// let grads = g.backward(loss);
/// // d(w·x)/dw = x = 3.
/// assert_eq!(grads.get(w).unwrap().get(0, 0), 3.0);
/// ```
#[derive(Debug)]
pub struct Graph {
    nodes: Vec<Node>,
    backend: &'static dyn Backend,
}

impl Default for Graph {
    fn default() -> Graph {
        Graph::new()
    }
}

impl Graph {
    /// An empty tape on the process-wide [`backend::active`] backend.
    pub fn new() -> Graph {
        Graph::with_backend(backend::active())
    }

    /// An empty tape pinned to a specific compute backend (tests and
    /// benchmarks; production code uses [`Graph::new`]).
    pub fn with_backend(backend: &'static dyn Backend) -> Graph {
        Graph {
            nodes: Vec::new(),
            backend,
        }
    }

    /// The backend this tape dispatches its kernels to.
    pub fn backend(&self) -> &'static dyn Backend {
        self.backend
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// A constant input (no gradient).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(Op::Leaf, t)
    }

    /// Reads a parameter's current value onto the tape; gradients will be
    /// accumulated for it during [`Graph::backward`].
    pub fn param(&mut self, id: ParamId, store: &ParamStore) -> Var {
        self.push(Op::Param(id), store.get(id).clone())
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.backend.matmul(self.value(a), self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .backend
            .zip_map(self.value(a), self.value(b), &|x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .backend
            .zip_map(self.value(a), self.value(b), &|x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .backend
            .zip_map(self.value(a), self.value(b), &|x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.backend.map(self.value(a), &|x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    /// Adds a `1×d` row vector to every row of an `n×d` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `1×d`.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (n, d) = self.value(a).shape();
        assert_eq!(
            self.value(row).shape(),
            (1, d),
            "broadcast row must be 1×{d}"
        );
        let mut out = self.value(a).clone();
        for i in 0..n {
            for j in 0..d {
                let v = out.get(i, j) + self.value(row).get(0, j);
                out.set(i, j, v);
            }
        }
        self.push(Op::AddRow(a, row), out)
    }

    /// Multiplies a tensor by a learned `1×1` scalar variable.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not `1×1`.
    pub fn mul_scalar_var(&mut self, a: Var, s: Var) -> Var {
        assert_eq!(self.value(s).shape(), (1, 1), "scalar must be 1×1");
        let c = self.value(s).get(0, 0);
        let v = self.backend.map(self.value(a), &|x| x * c);
        self.push(Op::MulScalarVar(a, s), v)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.push(Op::Transpose(a), v)
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.backend.map(self.value(a), &|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// GELU activation (tanh approximation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let v = self.backend.map(self.value(a), &gelu);
        self.push(Op::Gelu(a), v)
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.backend.map(self.value(a), &f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.backend.map(self.value(a), &sigmoid);
        self.push(Op::Sigmoid(a), v)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.backend.map(self.value(a), &f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = softmax_rows(self.value(a));
        self.push(Op::SoftmaxRows(a), v)
    }

    /// Mean over rows: `n×d → 1×d`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let (n, d) = self.value(a).shape();
        let inv = 1.0 / n.max(1) as f32;
        let sums = self.backend.col_sums(self.value(a));
        let out = Tensor::from_vec(sums.into_iter().map(|s| s * inv).collect(), 1, d);
        self.push(Op::MeanRows(a), out)
    }

    /// Sum of all elements → `1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::from_rows(&[&[self.backend.sum(self.value(a))]]);
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements → `1×1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let len = self.value(a).data().len();
        let mean = if len == 0 {
            0.0
        } else {
            self.backend.sum(self.value(a)) / len as f32
        };
        self.push(Op::MeanAll(a), Tensor::from_rows(&[&[mean]]))
    }

    /// Horizontal concatenation `n×a ++ n×b → n×(a+b)`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (na, ca) = self.value(a).shape();
        let (nb, cb) = self.value(b).shape();
        assert_eq!(na, nb, "concat_cols row mismatch");
        let mut out = Tensor::zeros(na, ca + cb);
        for i in 0..na {
            for j in 0..ca {
                out.set(i, j, self.value(a).get(i, j));
            }
            for j in 0..cb {
                out.set(i, ca + j, self.value(b).get(i, j));
            }
        }
        self.push(Op::ConcatCols(a, b), out)
    }

    /// Vertical concatenation of several tensors sharing a column count.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let out = Tensor::vstack(&tensors);
        self.push(Op::ConcatRows(parts.to_vec()), out)
    }

    /// Column slice `[start, start+len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let (n, c) = self.value(a).shape();
        assert!(start + len <= c, "slice_cols out of range");
        let mut out = Tensor::zeros(n, len);
        for i in 0..n {
            for j in 0..len {
                out.set(i, j, self.value(a).get(i, start + j));
            }
        }
        self.push(Op::SliceCols(a, start, len), out)
    }

    /// Gathers rows by index (embedding lookup); backward scatter-adds.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let (n, d) = self.value(a).shape();
        let mut out = Tensor::zeros(indices.len(), d);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < n, "gather index {idx} out of range");
            for j in 0..d {
                out.set(i, j, self.value(a).get(idx, j));
            }
        }
        self.push(Op::GatherRows(a, indices.to_vec()), out)
    }

    /// Functional row update: copies `base` and overwrites row `indices[i]`
    /// with row `i` of `rows`. Gradients flow to `rows` at the written
    /// positions and to `base` everywhere else.
    ///
    /// This is how the asynchronous (level-by-level) GNN propagation updates
    /// node states without mutating tape history.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ, `rows` has fewer rows than `indices`,
    /// an index is out of range, or `indices` contains duplicates.
    pub fn scatter_rows(&mut self, base: Var, rows: Var, indices: &[usize]) -> Var {
        let (n, d) = self.value(base).shape();
        let (k, dr) = self.value(rows).shape();
        assert_eq!(d, dr, "scatter_rows column mismatch");
        assert_eq!(k, indices.len(), "one row per index");
        let mut seen = vec![false; n];
        let mut out = self.value(base).clone();
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < n, "scatter index {idx} out of range");
            assert!(!seen[idx], "duplicate scatter index {idx}");
            seen[idx] = true;
            for j in 0..d {
                out.set(idx, j, self.value(rows).get(i, j));
            }
        }
        self.push(Op::ScatterRows(base, rows, indices.to_vec()), out)
    }

    /// Broadcast multiply of an `n×d` tensor by an `n×1` column vector.
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `n×1`.
    pub fn mul_col(&mut self, a: Var, col: Var) -> Var {
        let (n, d) = self.value(a).shape();
        assert_eq!(
            self.value(col).shape(),
            (n, 1),
            "broadcast column must be {n}×1"
        );
        let mut out = self.value(a).clone();
        for i in 0..n {
            let c = self.value(col).get(i, 0);
            for j in 0..d {
                out.set(i, j, out.get(i, j) * c);
            }
        }
        self.push(Op::MulCol(a, col), out)
    }

    /// Row-wise L2 normalization (as in the paper's Fig. 6 pseudocode).
    pub fn l2_normalize_rows(&mut self, a: Var) -> Var {
        let v = l2_normalize_rows(self.value(a));
        self.push(Op::L2NormalizeRows(a), v)
    }

    /// Row-wise layer normalization (no affine; compose with
    /// [`Graph::mul`]/[`Graph::add_row`] for scale and shift).
    pub fn layer_norm_rows(&mut self, a: Var) -> Var {
        let v = layer_norm_rows(self.value(a));
        self.push(Op::LayerNormRows(a), v)
    }

    /// Dropout with the given keep mask (values 0 or `1/keep_prob`);
    /// generate the mask externally for determinism.
    ///
    /// # Panics
    ///
    /// Panics if the mask shape differs.
    pub fn dropout(&mut self, a: Var, mask: Tensor) -> Var {
        let v = self.backend.zip_map(self.value(a), &mask, &|x, m| x * m);
        self.push(Op::Dropout(a, mask), v)
    }

    /// Smooth-L1 (Huber, β = 1) loss against a constant target, averaged
    /// over all elements → `1×1`. This is the paper's choice for the
    /// Etoggle, EAT, RrNdM and RNM losses.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn smooth_l1(&mut self, pred: Var, target: Tensor) -> Var {
        let diff = self.value(pred).zip_map(&target, |p, t| p - t);
        let loss = diff
            .data()
            .iter()
            .map(|&d| {
                if d.abs() < 1.0 {
                    0.5 * d * d
                } else {
                    d.abs() - 0.5
                }
            })
            .sum::<f32>()
            / diff.data().len().max(1) as f32;
        self.push(Op::SmoothL1(pred, target), Tensor::from_rows(&[&[loss]]))
    }

    /// Per-element weighted smooth-L1 against a constant target → `1×1`.
    /// Weights let tasks emphasize e.g. critical-path DFFs.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn smooth_l1_weighted(&mut self, pred: Var, target: Tensor, weights: Tensor) -> Var {
        assert_eq!(target.shape(), weights.shape(), "weights shape mismatch");
        let diff = self.value(pred).zip_map(&target, |p, t| p - t);
        let wsum: f32 = weights.data().iter().sum::<f32>().max(1e-12);
        let loss = diff
            .data()
            .iter()
            .zip(weights.data())
            .map(|(&d, &w)| {
                w * if d.abs() < 1.0 {
                    0.5 * d * d
                } else {
                    d.abs() - 0.5
                }
            })
            .sum::<f32>()
            / wsum;
        self.push(
            Op::SmoothL1Weighted(pred, target, weights),
            Tensor::from_rows(&[&[loss]]),
        )
    }

    /// Cross-entropy of row-softmax against integer labels, averaged → `1×1`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the row count.
    pub fn cross_entropy_rows(&mut self, logits: Var, labels: &[usize]) -> Var {
        let (n, _) = self.value(logits).shape();
        assert_eq!(labels.len(), n, "one label per row");
        let sm = softmax_rows(self.value(logits));
        let loss = (0..n)
            .map(|i| -(sm.get(i, labels[i]).max(1e-12)).ln())
            .sum::<f32>()
            / n.max(1) as f32;
        self.push(
            Op::CrossEntropyRows(logits, labels.to_vec()),
            Tensor::from_rows(&[&[loss]]),
        )
    }

    /// Cross-entropy along *columns* (softmax down each column), as used by
    /// the symmetric CLIP-style RNC loss (paper Fig. 6, `axis=0`).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the column count.
    pub fn cross_entropy_cols(&mut self, logits: Var, labels: &[usize]) -> Var {
        let (_, c) = self.value(logits).shape();
        assert_eq!(labels.len(), c, "one label per column");
        let smt = softmax_rows(&self.value(logits).transpose());
        let loss = (0..c)
            .map(|j| -(smt.get(j, labels[j]).max(1e-12)).ln())
            .sum::<f32>()
            / c.max(1) as f32;
        self.push(
            Op::CrossEntropyCols(logits, labels.to_vec()),
            Tensor::from_rows(&[&[loss]]),
        )
    }

    /// Reverse-mode backpropagation from a scalar loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1×1`.
    pub fn backward(&mut self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "loss must be scalar");
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[loss.0] = Some(Tensor::from_rows(&[&[1.0]]));
        let mut out = Gradients::default();

        for i in (0..n).rev() {
            let Some(grad) = grads[i].take() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf => {}
                Op::Param(id) => {
                    let entry = out
                        .by_param
                        .entry(id)
                        .or_insert_with(|| Tensor::zeros(grad.rows(), grad.cols()));
                    *entry = entry.zip_map(&grad, |a, b| a + b);
                }
                Op::MatMul(a, b) => {
                    let da = self.backend.matmul_a_bt(&grad, &self.nodes[b.0].value);
                    let db = self.backend.matmul_at_b(&self.nodes[a.0].value, &grad);
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, b.0, db);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, grad.clone());
                    accumulate(&mut grads, b.0, grad);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, a.0, grad.clone());
                    accumulate(&mut grads, b.0, self.backend.map(&grad, &|x| -x));
                }
                Op::Mul(a, b) => {
                    let da = self
                        .backend
                        .zip_map(&grad, &self.nodes[b.0].value, &|g, y| g * y);
                    let db = self
                        .backend
                        .zip_map(&grad, &self.nodes[a.0].value, &|g, x| g * x);
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, b.0, db);
                }
                Op::Scale(a, c) => accumulate(&mut grads, a.0, self.backend.map(&grad, &|x| x * c)),
                Op::AddRow(a, r) => {
                    accumulate(&mut grads, a.0, grad.clone());
                    let (gn, gd) = grad.shape();
                    let mut dr = Tensor::zeros(1, gd);
                    for ii in 0..gn {
                        for j in 0..gd {
                            dr.set(0, j, dr.get(0, j) + grad.get(ii, j));
                        }
                    }
                    accumulate(&mut grads, r.0, dr);
                }
                Op::MulScalarVar(a, s) => {
                    let c = self.nodes[s.0].value.get(0, 0);
                    accumulate(&mut grads, a.0, self.backend.map(&grad, &|x| x * c));
                    let prod = self
                        .backend
                        .zip_map(&grad, &self.nodes[a.0].value, &|g, x| g * x);
                    let ds = self.backend.sum(&prod);
                    accumulate(&mut grads, s.0, Tensor::from_rows(&[&[ds]]));
                }
                Op::Transpose(a) => accumulate(&mut grads, a.0, grad.transpose()),
                Op::Relu(a) => {
                    let dx = self
                        .backend
                        .zip_map(&grad, &self.nodes[a.0].value, &|g, x| {
                            if x > 0.0 {
                                g
                            } else {
                                0.0
                            }
                        });
                    accumulate(&mut grads, a.0, dx);
                }
                Op::Gelu(a) => {
                    let dx = self
                        .backend
                        .zip_map(&grad, &self.nodes[a.0].value, &|g, x| g * gelu_grad(x));
                    accumulate(&mut grads, a.0, dx);
                }
                Op::Tanh(a) => {
                    let dx = self
                        .backend
                        .zip_map(&grad, &self.nodes[i].value, &|g, y| g * (1.0 - y * y));
                    accumulate(&mut grads, a.0, dx);
                }
                Op::Sigmoid(a) => {
                    let dx = self
                        .backend
                        .zip_map(&grad, &self.nodes[i].value, &|g, y| g * y * (1.0 - y));
                    accumulate(&mut grads, a.0, dx);
                }
                Op::Exp(a) => {
                    let dx = self
                        .backend
                        .zip_map(&grad, &self.nodes[i].value, &|g, y| g * y);
                    accumulate(&mut grads, a.0, dx);
                }
                Op::SoftmaxRows(a) => {
                    let y = &self.nodes[i].value;
                    let (rn, rc) = y.shape();
                    let mut dx = Tensor::zeros(rn, rc);
                    for r in 0..rn {
                        let dot: f32 = (0..rc).map(|c| grad.get(r, c) * y.get(r, c)).sum();
                        for c in 0..rc {
                            dx.set(r, c, y.get(r, c) * (grad.get(r, c) - dot));
                        }
                    }
                    accumulate(&mut grads, a.0, dx);
                }
                Op::MeanRows(a) => {
                    let (an, ad) = self.nodes[a.0].value.shape();
                    let mut dx = Tensor::zeros(an, ad);
                    for r in 0..an {
                        for c in 0..ad {
                            dx.set(r, c, grad.get(0, c) / an.max(1) as f32);
                        }
                    }
                    accumulate(&mut grads, a.0, dx);
                }
                Op::SumAll(a) => {
                    let (an, ad) = self.nodes[a.0].value.shape();
                    let g = grad.get(0, 0);
                    accumulate(&mut grads, a.0, Tensor::full(an, ad, g));
                }
                Op::MeanAll(a) => {
                    let (an, ad) = self.nodes[a.0].value.shape();
                    let g = grad.get(0, 0) / (an * ad).max(1) as f32;
                    accumulate(&mut grads, a.0, Tensor::full(an, ad, g));
                }
                Op::ConcatCols(a, b) => {
                    let (n_, ca) = self.nodes[a.0].value.shape();
                    let (_, cb) = self.nodes[b.0].value.shape();
                    let mut da = Tensor::zeros(n_, ca);
                    let mut db = Tensor::zeros(n_, cb);
                    for r in 0..n_ {
                        for c in 0..ca {
                            da.set(r, c, grad.get(r, c));
                        }
                        for c in 0..cb {
                            db.set(r, c, grad.get(r, ca + c));
                        }
                    }
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, b.0, db);
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let (pn, pd) = self.nodes[p.0].value.shape();
                        let mut dp = Tensor::zeros(pn, pd);
                        for r in 0..pn {
                            for c in 0..pd {
                                dp.set(r, c, grad.get(offset + r, c));
                            }
                        }
                        accumulate(&mut grads, p.0, dp);
                        offset += pn;
                    }
                }
                Op::SliceCols(a, start, len) => {
                    let (an, ac) = self.nodes[a.0].value.shape();
                    let mut da = Tensor::zeros(an, ac);
                    for r in 0..an {
                        for c in 0..len {
                            da.set(r, start + c, grad.get(r, c));
                        }
                    }
                    accumulate(&mut grads, a.0, da);
                }
                Op::GatherRows(a, indices) => {
                    let shape = self.nodes[a.0].value.shape();
                    accumulate_rows(&mut grads, a.0, shape, &grad, &indices);
                }
                Op::ScatterRows(base, rows, indices) => {
                    let (_, d) = grad.shape();
                    let kd = indices.len();
                    let mut drows = Tensor::zeros(kd, d);
                    // Take ownership of `grad` as dbase, zeroing the
                    // overwritten rows in place (no full-size temporary).
                    let mut dbase = grad;
                    for (i, &idx) in indices.iter().enumerate() {
                        for j in 0..d {
                            drows.set(i, j, dbase.get(idx, j));
                            dbase.set(idx, j, 0.0);
                        }
                    }
                    accumulate(&mut grads, base.0, dbase);
                    accumulate(&mut grads, rows.0, drows);
                }
                Op::MulCol(a, col) => {
                    let (n_, d) = grad.shape();
                    let colv = &self.nodes[col.0].value;
                    let av = &self.nodes[a.0].value;
                    let mut da = Tensor::zeros(n_, d);
                    let mut dcol = Tensor::zeros(n_, 1);
                    for r in 0..n_ {
                        let c = colv.get(r, 0);
                        let mut acc = 0.0;
                        for j in 0..d {
                            da.set(r, j, grad.get(r, j) * c);
                            acc += grad.get(r, j) * av.get(r, j);
                        }
                        dcol.set(r, 0, acc);
                    }
                    accumulate(&mut grads, a.0, da);
                    accumulate(&mut grads, col.0, dcol);
                }
                Op::L2NormalizeRows(a) => {
                    let x = &self.nodes[a.0].value;
                    let y = &self.nodes[i].value;
                    let (rn, rc) = x.shape();
                    let mut dx = Tensor::zeros(rn, rc);
                    for r in 0..rn {
                        let norm: f32 = x
                            .row_slice(r)
                            .iter()
                            .map(|&v| v * v)
                            .sum::<f32>()
                            .sqrt()
                            .max(1e-12);
                        let dot: f32 = (0..rc).map(|c| grad.get(r, c) * y.get(r, c)).sum();
                        for c in 0..rc {
                            dx.set(r, c, (grad.get(r, c) - y.get(r, c) * dot) / norm);
                        }
                    }
                    accumulate(&mut grads, a.0, dx);
                }
                Op::LayerNormRows(a) => {
                    let x = &self.nodes[a.0].value;
                    let y = &self.nodes[i].value;
                    let (rn, rc) = x.shape();
                    let d = rc as f32;
                    let mut dx = Tensor::zeros(rn, rc);
                    for r in 0..rn {
                        let mean: f32 = x.row_slice(r).iter().sum::<f32>() / d;
                        let var: f32 = x
                            .row_slice(r)
                            .iter()
                            .map(|&v| (v - mean) * (v - mean))
                            .sum::<f32>()
                            / d;
                        let std = (var + 1e-5).sqrt();
                        let gmean: f32 = grad.row_slice(r).iter().sum::<f32>() / d;
                        let gydot: f32 =
                            (0..rc).map(|c| grad.get(r, c) * y.get(r, c)).sum::<f32>() / d;
                        for c in 0..rc {
                            let v = (grad.get(r, c) - gmean - y.get(r, c) * gydot) / std;
                            dx.set(r, c, v);
                        }
                    }
                    accumulate(&mut grads, a.0, dx);
                }
                Op::Dropout(a, mask) => {
                    let dx = self.backend.zip_map(&grad, &mask, &|g, m| g * m);
                    accumulate(&mut grads, a.0, dx);
                }
                Op::SmoothL1(pred, target) => {
                    let g = grad.get(0, 0);
                    let diff = self
                        .backend
                        .zip_map(&self.nodes[pred.0].value, &target, &|p, t| p - t);
                    let len = diff.data().len().max(1) as f32;
                    let dx = self.backend.map(&diff, &|d| g * d.clamp(-1.0, 1.0) / len);
                    accumulate(&mut grads, pred.0, dx);
                }
                Op::SmoothL1Weighted(pred, target, weights) => {
                    let g = grad.get(0, 0);
                    let diff = self
                        .backend
                        .zip_map(&self.nodes[pred.0].value, &target, &|p, t| p - t);
                    let wsum: f32 = weights.data().iter().sum::<f32>().max(1e-12);
                    let dx = self
                        .backend
                        .zip_map(&diff, &weights, &|d, w| g * w * d.clamp(-1.0, 1.0) / wsum);
                    accumulate(&mut grads, pred.0, dx);
                }
                Op::CrossEntropyRows(logits, labels) => {
                    let g = grad.get(0, 0);
                    let sm = softmax_rows(&self.nodes[logits.0].value);
                    let (rn, rc) = sm.shape();
                    let mut dx = Tensor::zeros(rn, rc);
                    for (r, &label) in labels.iter().enumerate().take(rn) {
                        for c in 0..rc {
                            let one = if label == c { 1.0 } else { 0.0 };
                            dx.set(r, c, g * (sm.get(r, c) - one) / rn.max(1) as f32);
                        }
                    }
                    accumulate(&mut grads, logits.0, dx);
                }
                Op::CrossEntropyCols(logits, labels) => {
                    let g = grad.get(0, 0);
                    let smt = softmax_rows(&self.nodes[logits.0].value.transpose());
                    let (cn, cr) = smt.shape(); // cn = cols of logits
                    let mut dx = Tensor::zeros(cr, cn);
                    for (j, &label) in labels.iter().enumerate().take(cn) {
                        for r in 0..cr {
                            let one = if label == r { 1.0 } else { 0.0 };
                            dx.set(r, j, g * (smt.get(j, r) - one) / cn.max(1) as f32);
                        }
                    }
                    accumulate(&mut grads, logits.0, dx);
                }
            }
        }
        out
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, delta: Tensor) {
    match &mut grads[idx] {
        Some(g) => {
            debug_assert_eq!(g.shape(), delta.shape(), "gradient shape mismatch");
            for (a, &b) in g.data_mut().iter_mut().zip(delta.data()) {
                *a += b;
            }
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Adds `rows` of `delta` into the gradient slot at the given row indices
/// without materializing a full-size temporary.
fn accumulate_rows(
    grads: &mut [Option<Tensor>],
    idx: usize,
    full_shape: (usize, usize),
    delta: &Tensor,
    indices: &[usize],
) {
    let slot = &mut grads[idx];
    let g = slot.get_or_insert_with(|| Tensor::zeros(full_shape.0, full_shape.1));
    let d = full_shape.1;
    for (r, &target) in indices.iter().enumerate() {
        let dst = &mut g.data_mut()[target * d..(target + 1) * d];
        let src = &delta.data()[r * d..(r + 1) * d];
        for (a, &b) in dst.iter_mut().zip(src) {
            *a += b;
        }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

fn gelu_grad(x: f32) -> f32 {
    let u = GELU_C * (x + GELU_A * x * x * x);
    let t = u.tanh();
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * GELU_C * (1.0 + 3.0 * GELU_A * x * x)
}

/// Row-wise softmax (shared by forward and loss backward).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let (n, c) = x.shape();
    let mut out = Tensor::zeros(n, c);
    for r in 0..n {
        let row = x.row_slice(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum::<f32>().max(1e-12);
        for (j, e) in exps.iter().enumerate() {
            out.set(r, j, e / sum);
        }
    }
    out
}

/// Row-wise L2 normalization.
pub fn l2_normalize_rows(x: &Tensor) -> Tensor {
    let (n, c) = x.shape();
    let mut out = Tensor::zeros(n, c);
    for r in 0..n {
        let norm = x
            .row_slice(r)
            .iter()
            .map(|&v| v * v)
            .sum::<f32>()
            .sqrt()
            .max(1e-12);
        for j in 0..c {
            out.set(r, j, x.get(r, j) / norm);
        }
    }
    out
}

/// Row-wise layer normalization (ε = 1e-5, no affine).
pub fn layer_norm_rows(x: &Tensor) -> Tensor {
    let (n, c) = x.shape();
    let d = c as f32;
    let mut out = Tensor::zeros(n, c);
    for r in 0..n {
        let mean: f32 = x.row_slice(r).iter().sum::<f32>() / d;
        let var: f32 = x
            .row_slice(r)
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / d;
        let std = (var + 1e-5).sqrt();
        for j in 0..c {
            out.set(r, j, (x.get(r, j) - mean) / std);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_gradients() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[1.0, 1.0]]));
        let wv = g.param(w, &store);
        let y = g.matmul(x, wv); // [4, 6]
        let loss = g.sum_all(y);
        assert_eq!(g.value(loss).get(0, 0), 10.0);
        let grads = g.backward(loss);
        // dL/dW = xᵀ · ones = all ones.
        assert_eq!(grads.get(w).unwrap(), &Tensor::full(2, 2, 1.0));
    }

    #[test]
    fn chain_rule_through_activation() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[0.5]]));
        let mut g = Graph::new();
        let x = g.input(Tensor::from_rows(&[&[2.0]]));
        let wv = g.param(w, &store);
        let y = g.matmul(x, wv); // 1.0
        let t = g.tanh(y);
        let loss = g.sum_all(t);
        let grads = g.backward(loss);
        // d tanh(wx)/dw = x(1-tanh²(1)) = 2 * (1 - tanh(1)^2).
        let expected = 2.0 * (1.0 - 1.0f32.tanh().powi(2));
        assert!((grads.get(w).unwrap().get(0, 0) - expected).abs() < 1e-5);
    }

    #[test]
    fn gather_rows_scatters_gradient() {
        let mut store = ParamStore::new();
        let e = store.add(
            "emb",
            Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]),
        );
        let mut g = Graph::new();
        let ev = g.param(e, &store);
        let picked = g.gather_rows(ev, &[2, 2, 0]);
        let loss = g.sum_all(picked);
        let grads = g.backward(loss);
        let ge = grads.get(e).unwrap();
        assert_eq!(ge.row_slice(0), &[1.0, 1.0]);
        assert_eq!(ge.row_slice(1), &[0.0, 0.0]);
        assert_eq!(ge.row_slice(2), &[2.0, 2.0]);
    }

    #[test]
    fn cross_entropy_decreases_toward_label() {
        let mut store = ParamStore::new();
        let w = store.add("logits", Tensor::from_rows(&[&[0.0, 0.0, 0.0]]));
        let mut g = Graph::new();
        let l = g.param(w, &store);
        let loss = g.cross_entropy_rows(l, &[1]);
        let grads = g.backward(loss);
        let gl = grads.get(w).unwrap();
        assert!(gl.get(0, 1) < 0.0, "label logit pushed up");
        assert!(gl.get(0, 0) > 0.0 && gl.get(0, 2) > 0.0);
    }

    #[test]
    fn smooth_l1_gradient_clamps() {
        let mut store = ParamStore::new();
        let w = store.add("p", Tensor::from_rows(&[&[5.0, 0.2]]));
        let mut g = Graph::new();
        let p = g.param(w, &store);
        let loss = g.smooth_l1(p, Tensor::row(&[0.0, 0.0]));
        let grads = g.backward(loss);
        let gp = grads.get(w).unwrap();
        assert!((gp.get(0, 0) - 0.5).abs() < 1e-6, "linear region: 1/len");
        assert!((gp.get(0, 1) - 0.1).abs() < 1e-6, "quadratic region: d/len");
    }

    #[test]
    fn shared_subexpression_accumulates() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_rows(&[&[3.0]]));
        let mut g = Graph::new();
        let wv = g.param(w, &store);
        let y = g.add(wv, wv); // 2w
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(w).unwrap().get(0, 0), 2.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[0.0, 0.0, 0.0]]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_produces_unit_rows() {
        let x = Tensor::from_rows(&[&[3.0, 4.0]]);
        let y = l2_normalize_rows(&x);
        assert!((y.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((y.get(0, 1) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let y = layer_norm_rows(&x);
        let mean: f32 = y.row_slice(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row_slice(0).iter().map(|&v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-2);
    }

    #[test]
    fn mul_scalar_var_gradients() {
        let mut store = ParamStore::new();
        let s = store.add("s", Tensor::from_rows(&[&[2.0]]));
        let mut g = Graph::new();
        let x = g.input(Tensor::row(&[1.0, 3.0]));
        let sv = g.param(s, &store);
        let y = g.mul_scalar_var(x, sv);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(s).unwrap().get(0, 0), 4.0, "sum of x");
    }
}
