//! Dense 2-D `f32` tensors (matrices) with the numeric kernels the MOSS
//! models need. Row-major storage; vectors are `1×n` rows.

use std::fmt;

use moss_prng::rngs::StdRng;
use moss_prng::{Rng, SeedableRng};

/// A dense row-major matrix of `f32`.
///
/// # Examples
///
/// ```
/// use moss_tensor::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// A `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Tensor {
        Tensor {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// The `n × n` identity.
    pub fn eye(n: usize) -> Tensor {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.set(i, i, 1.0);
        }
        t
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Tensor {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Tensor { data, rows, cols }
    }

    /// A `1 × n` row vector.
    pub fn row(values: &[f32]) -> Tensor {
        Tensor::from_vec(values.to_vec(), 1, values.len())
    }

    /// Xavier/Glorot-uniform initialization, deterministic per seed.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        Tensor { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`, dispatched through the process-wide
    /// compute backend by problem size (see [`crate::backend::for_flops`];
    /// an explicit `MOSS_BACKEND` pins the backend at every size).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}×{} × {}×{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        // Size-based dispatch: small products skip the parallel backend's
        // pool machinery entirely (see `backend::for_flops`).
        crate::backend::for_flops(self.rows * self.cols * rhs.cols).matmul(self, rhs)
    }

    /// The transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise binary map.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Elementwise unary map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&a| f(a)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Euclidean distance between two same-shape tensors.
    pub fn distance(&self, rhs: &Tensor) -> f32 {
        self.zip_map(rhs, |a, b| (a - b) * (a - b)).sum().sqrt()
    }

    /// Index of the max element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row_slice(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Stacks tensors vertically (they must share a column count).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn vstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Tensor { data, rows, cols }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}×{})", self.rows, self.cols)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Tensor::xavier(4, 4, 7);
        let b = Tensor::xavier(4, 4, 7);
        assert_eq!(a, b);
        let bound = (6.0 / 8.0f32).sqrt();
        assert!(a.data().iter().all(|&x| x.abs() <= bound));
        assert_ne!(a, Tensor::xavier(4, 4, 8));
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_maxima() {
        let a = Tensor::from_rows(&[&[0.1, 0.9, 0.0], &[2.0, 1.0, -1.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Tensor::row(&[1.0, 2.0]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let v = Tensor::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.get(2, 1), 6.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn zip_map_and_map() {
        let a = Tensor::row(&[1.0, -2.0]);
        let b = Tensor::row(&[3.0, 4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y), Tensor::row(&[4.0, 2.0]));
        assert_eq!(a.map(f32::abs), Tensor::row(&[1.0, 2.0]));
    }
}
