//! Binary (de)serialization of parameter stores — a minimal checkpoint
//! format so trained models can be saved and restored without pulling a
//! serialization framework into the hot crates.

use std::io::{self, Read, Write};

use crate::params::ParamStore;
use crate::tensor::Tensor;

const MAGIC: &[u8; 8] = b"MOSSPAR1";

/// Writes `store` to `writer` in the checkpoint format.
///
/// A mutable reference works too: `save_params(&mut file, &store)?`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save_params<W: Write>(mut writer: W, store: &ParamStore) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&(store.len() as u64).to_le_bytes())?;
    for (_, name, value) in store.iter() {
        writer.write_all(&(name.len() as u64).to_le_bytes())?;
        writer.write_all(name.as_bytes())?;
        let (r, c) = value.shape();
        writer.write_all(&(r as u64).to_le_bytes())?;
        writer.write_all(&(c as u64).to_le_bytes())?;
        for &x in value.data() {
            writer.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a checkpoint produced by [`save_params`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/short file and propagates reader
/// errors.
pub fn load_params<R: Read>(mut reader: R) -> io::Result<ParamStore> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a moss parameter checkpoint",
        ));
    }
    let count = read_u64(&mut reader)? as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        let name_len = read_u64(&mut reader)? as usize;
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad parameter name"))?;
        let rows = read_u64(&mut reader)? as usize;
        let cols = read_u64(&mut reader)? as usize;
        let mut data = vec![0f32; rows * cols];
        for x in &mut data {
            let mut b = [0u8; 4];
            reader.read_exact(&mut b)?;
            *x = f32::from_le_bytes(b);
        }
        store.add(name, Tensor::from_vec(data, rows, cols));
    }
    Ok(store)
}

fn read_u64<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let mut store = ParamStore::new();
        store.add("enc.w1", Tensor::xavier(4, 6, 3));
        store.add("enc.b1", Tensor::xavier(1, 6, 4));
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        let loaded = load_params(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), 2);
        let w = loaded.find("enc.w1").unwrap();
        assert_eq!(loaded.get(w), store.get(store.find("enc.w1").unwrap()));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_params(&b"NOTMAGIC"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_rejected() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::xavier(2, 2, 1));
        let mut buf = Vec::new();
        save_params(&mut buf, &store).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(load_params(buf.as_slice()).is_err());
    }
}
