//! SIMD-lane matmul microkernels shared by the `Blocked` and `Parallel`
//! backends.
//!
//! Three implementations of each kernel, selected once per process by
//! [`level`]:
//!
//! - **Scalar** — explicit 8-wide `[f32; 8]` lane accumulators in
//!   fixed-size register tiles (4 output rows × 2 lane chunks). Plain safe
//!   Rust that the autovectorizer reliably turns into packed SIMD on any
//!   target; also the only path on non-x86_64.
//! - **Avx2** — the same tile shapes written with `std::arch` AVX2 + FMA
//!   intrinsics (8-lane `__m256` chunks).
//! - **Avx512** — 16-lane `__m512` chunks; the fastest path on the
//!   machines this repo benches on (~7× the scalar saxpy on the
//!   2048×64×64 row of `BENCH_kernels.json`).
//!
//! `MOSS_SIMD=scalar|avx2|avx512` forces a level (panicking if the CPU
//! lacks it); unset picks the best detected at runtime.
//!
//! ## Tile shapes
//!
//! | kernel | accumulator tile | loop carried over |
//! |---|---|---|
//! | `matmul` (`a×b`) | 4 out rows × 2 lane chunks | `k`, ascending |
//! | `matmul_at_b` (`aᵀ×b`) | 8 out rows × 2 lane chunks | `m` rows, ascending |
//! | `matmul_a_bt` (`a×bᵀ`) | 8 column dot accumulators | shared dim, ascending |
//!
//! ## Determinism
//!
//! Every output element is produced by exactly one accumulator that walks
//! the shared dimension in a fixed ascending order; tile decomposition
//! never changes per-element arithmetic, and nothing here depends on
//! thread count — blocks of rows handed to different pool workers compute
//! exactly what the sequential loop computes. Results are therefore
//! bit-identical for any `MOSS_THREADS`. Across *levels* the guarantee is
//! weaker: the FMA paths skip the intermediate rounding of separate
//! mul-then-add, so `Avx2`/`Avx512` agree with `Scalar` (and the `Naive`
//! oracle) to ~1e-6 relative, not bitwise. A level is fixed for the whole
//! process, so seeded runs still reproduce exactly on the same machine.

// Kernel style: index-based loops over fixed-size accumulator tiles keep
// the register layout visible (`acc[ri]` ↔ one output row's lanes) and
// mirror the pointer arithmetic of the intrinsic paths; iterator rewrites
// obscure that correspondence. Microkernels also take the full
// (ptr, rows, k, stride, …) geometry as flat arguments by design.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

use std::sync::OnceLock;

/// Lane width of the portable accumulators (and the issue's "8-wide f32
/// lanes"). The intrinsic paths use 8 (`__m256`) or 16 (`__m512`) lanes.
pub const LANES: usize = 8;

/// Which microkernel implementation this process uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Portable `[f32; 8]` lane-array kernels (autovectorized).
    Scalar,
    /// AVX2 + FMA intrinsics.
    Avx2,
    /// AVX-512F intrinsics.
    Avx512,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2 => "avx2",
            Level::Avx512 => "avx512",
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Level {
    if is_x86_feature_detected!("avx512f") {
        Level::Avx512
    } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        Level::Avx2
    } else {
        Level::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> Level {
    Level::Scalar
}

/// The process-wide kernel level: `MOSS_SIMD` if set, else the best the
/// CPU supports.
///
/// # Panics
///
/// Panics on an unrecognized `MOSS_SIMD` value, or one the CPU cannot run.
pub fn level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("MOSS_SIMD").as_deref() {
        Ok("scalar") => check_available(Level::Scalar),
        Ok("avx2") => check_available(Level::Avx2),
        Ok("avx512") => check_available(Level::Avx512),
        Ok(other) => panic!("unknown MOSS_SIMD {other:?}; expected scalar|avx2|avx512"),
        Err(_) => detect(),
    })
}

fn check_available(requested: Level) -> Level {
    let best = detect();
    let ok = matches!(
        (requested, best),
        (Level::Scalar, _)
            | (Level::Avx2, Level::Avx2 | Level::Avx512)
            | (Level::Avx512, Level::Avx512)
    );
    assert!(
        ok,
        "MOSS_SIMD={} requested but this CPU supports at most {}",
        requested.name(),
        best.name()
    );
    requested
}

/// `out += nothing; out = a_block × b` for a block of output rows.
/// `a_block` is `rows×k`, `b` is `k×n`, `out` is `rows×n` (overwritten).
pub fn matmul_block(a_block: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    debug_assert_eq!(a_block.len(), rows * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), rows * n);
    if rows == 0 || n == 0 {
        return;
    }
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => unsafe { x86::matmul_avx512(a_block, rows, k, b, n, out) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::matmul_avx2(a_block, rows, k, b, n, out) },
        _ => matmul_scalar(a_block, rows, k, b, n, out),
    }
}

/// One block of output rows of `aᵀ × b`: `a` is `m×k`, `g` is `m×n`, and
/// `out` receives rows `i0..i0+rows` of the `k×n` product
/// (`out[ri][j] = Σ_r a[r][i0+ri] · g[r][j]`, `r` ascending).
pub fn matmul_at_b_block(
    a: &[f32],
    m: usize,
    k: usize,
    i0: usize,
    rows: usize,
    g: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(g.len(), m * n);
    debug_assert_eq!(out.len(), rows * n);
    debug_assert!(i0 + rows <= k);
    if rows == 0 || n == 0 {
        return;
    }
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => unsafe { x86::at_b_avx512(a, m, k, i0, rows, g, n, out) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::at_b_avx2(a, m, k, i0, rows, g, n, out) },
        _ => at_b_scalar(a, m, k, i0, rows, g, n, out),
    }
}

/// `out = a_block × bᵀ` for a block of output rows: `a_block` is `rows×l`,
/// `b` is `n×l` (rows of `b` are already contiguous in the shared
/// dimension, so no transpose is materialized).
pub fn matmul_a_bt_block(
    a_block: &[f32],
    rows: usize,
    l: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a_block.len(), rows * l);
    debug_assert_eq!(b.len(), n * l);
    debug_assert_eq!(out.len(), rows * n);
    if rows == 0 || n == 0 {
        return;
    }
    match level() {
        #[cfg(target_arch = "x86_64")]
        Level::Avx512 => unsafe { x86::a_bt_avx512(a_block, rows, l, b, n, out) },
        #[cfg(target_arch = "x86_64")]
        Level::Avx2 => unsafe { x86::a_bt_avx2(a_block, rows, l, b, n, out) },
        _ => a_bt_scalar(a_block, rows, l, b, n, out),
    }
}

/// Dot product with [`LANES`] fixed-stride accumulator lanes (lane `l`
/// sums the elements at indices `≡ l mod 8`, folded lane-ascending, tail
/// last). The grouping depends only on the length, never on threads.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let (xrem, yrem) = (xc.remainder(), yc.remainder());
    for (xs, ys) in xc.zip(yc) {
        for l in 0..LANES {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut s = acc.iter().sum::<f32>();
    for (&a, &b) in xrem.iter().zip(yrem) {
        s += a * b;
    }
    s
}

// ---------------------------------------------------------------------
// Scalar (portable lane-array) kernels
// ---------------------------------------------------------------------

/// 4 rows × 2 eight-lane chunks register tile; the per-element arithmetic
/// (one accumulator, `k` ascending) is exactly the `Naive` oracle's, so
/// this path is bit-identical to it.
fn matmul_scalar(a_block: &[f32], rows: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let mut i = 0;
    while i < rows {
        match rows - i {
            1 => matmul_scalar_rows::<1>(a_block, i, k, b, n, out),
            2 => matmul_scalar_rows::<2>(a_block, i, k, b, n, out),
            3 => matmul_scalar_rows::<3>(a_block, i, k, b, n, out),
            _ => matmul_scalar_rows::<4>(a_block, i, k, b, n, out),
        }
        i += (rows - i).min(4);
    }
}

fn matmul_scalar_rows<const R: usize>(
    a: &[f32],
    i: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    let mut j = 0;
    while j + 2 * LANES <= n {
        let mut acc = [[[0.0f32; LANES]; 2]; R];
        for kk in 0..k {
            let b0: &[f32; LANES] = b[kk * n + j..kk * n + j + LANES].try_into().unwrap();
            let b1: &[f32; LANES] = b[kk * n + j + LANES..kk * n + j + 2 * LANES]
                .try_into()
                .unwrap();
            for r in 0..R {
                let c = a[(i + r) * k + kk];
                for l in 0..LANES {
                    acc[r][0][l] += c * b0[l];
                }
                for l in 0..LANES {
                    acc[r][1][l] += c * b1[l];
                }
            }
        }
        for r in 0..R {
            out[(i + r) * n + j..(i + r) * n + j + LANES].copy_from_slice(&acc[r][0]);
            out[(i + r) * n + j + LANES..(i + r) * n + j + 2 * LANES].copy_from_slice(&acc[r][1]);
        }
        j += 2 * LANES;
    }
    while j + LANES <= n {
        let mut acc = [[0.0f32; LANES]; R];
        for kk in 0..k {
            let bs: &[f32; LANES] = b[kk * n + j..kk * n + j + LANES].try_into().unwrap();
            for r in 0..R {
                let c = a[(i + r) * k + kk];
                for l in 0..LANES {
                    acc[r][l] += c * bs[l];
                }
            }
        }
        for r in 0..R {
            out[(i + r) * n + j..(i + r) * n + j + LANES].copy_from_slice(&acc[r]);
        }
        j += LANES;
    }
    while j < n {
        for r in 0..R {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[(i + r) * k + kk] * b[kk * n + j];
            }
            out[(i + r) * n + j] = acc;
        }
        j += 1;
    }
}

fn at_b_scalar(
    a: &[f32],
    m: usize,
    k: usize,
    i0: usize,
    rows: usize,
    g: &[f32],
    n: usize,
    out: &mut [f32],
) {
    let mut i = 0;
    while i < rows {
        match rows - i {
            1 => at_b_scalar_rows::<1>(a, m, k, i0 + i, i, g, n, out),
            2 => at_b_scalar_rows::<2>(a, m, k, i0 + i, i, g, n, out),
            3 => at_b_scalar_rows::<3>(a, m, k, i0 + i, i, g, n, out),
            _ => at_b_scalar_rows::<4>(a, m, k, i0 + i, i, g, n, out),
        }
        i += (rows - i).min(4);
    }
}

/// `col` is the absolute column of `a` for the first tile row; `o` the
/// first row of `out` written.
fn at_b_scalar_rows<const R: usize>(
    a: &[f32],
    m: usize,
    k: usize,
    col: usize,
    o: usize,
    g: &[f32],
    n: usize,
    out: &mut [f32],
) {
    let mut j = 0;
    while j + 2 * LANES <= n {
        let mut acc = [[[0.0f32; LANES]; 2]; R];
        for r in 0..m {
            let g0: &[f32; LANES] = g[r * n + j..r * n + j + LANES].try_into().unwrap();
            let g1: &[f32; LANES] = g[r * n + j + LANES..r * n + j + 2 * LANES]
                .try_into()
                .unwrap();
            for ri in 0..R {
                let c = a[r * k + col + ri];
                for l in 0..LANES {
                    acc[ri][0][l] += c * g0[l];
                }
                for l in 0..LANES {
                    acc[ri][1][l] += c * g1[l];
                }
            }
        }
        for ri in 0..R {
            out[(o + ri) * n + j..(o + ri) * n + j + LANES].copy_from_slice(&acc[ri][0]);
            out[(o + ri) * n + j + LANES..(o + ri) * n + j + 2 * LANES]
                .copy_from_slice(&acc[ri][1]);
        }
        j += 2 * LANES;
    }
    while j < n {
        let w = (n - j).min(LANES);
        for ri in 0..R {
            let mut acc = [0.0f32; LANES];
            for r in 0..m {
                let c = a[r * k + col + ri];
                for (l, slot) in acc[..w].iter_mut().enumerate() {
                    *slot += c * g[r * n + j + l];
                }
            }
            out[(o + ri) * n + j..(o + ri) * n + j + w].copy_from_slice(&acc[..w]);
        }
        j += w;
    }
}

fn a_bt_scalar(a_block: &[f32], rows: usize, l: usize, b: &[f32], n: usize, out: &mut [f32]) {
    for (i, out_row) in out.chunks_mut(n).enumerate().take(rows) {
        let a_row = &a_block[i * l..(i + 1) * l];
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot(a_row, &b[j * l..(j + 1) * l]);
        }
    }
}

// ---------------------------------------------------------------------
// x86-64 intrinsic kernels (AVX2+FMA and AVX-512F), selected at runtime
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Lane-count mask for a ≤16-wide AVX-512 tail chunk.
    #[inline]
    fn mask16(w: usize) -> __mmask16 {
        ((1u32 << w) - 1) as __mmask16
    }

    /// Per-lane sign mask for AVX2 `maskload`/`maskstore` of `w` < 8 lanes.
    #[target_feature(enable = "avx2")]
    unsafe fn mask8(w: usize) -> __m256i {
        let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        _mm256_cmpgt_epi32(_mm256_set1_epi32(w as i32), idx)
    }

    // ----------------------------------------------------------------
    // matmul: out rows in tiles of ≤4, columns in 32-wide pairs + tail
    // ----------------------------------------------------------------

    #[target_feature(enable = "avx512f")]
    pub unsafe fn matmul_avx512(
        a: &[f32],
        rows: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i < rows {
            match rows - i {
                1 => mm512_rows::<1>(a, i, k, b, n, out),
                2 => mm512_rows::<2>(a, i, k, b, n, out),
                3 => mm512_rows::<3>(a, i, k, b, n, out),
                _ => mm512_rows::<4>(a, i, k, b, n, out),
            }
            i += (rows - i).min(4);
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn mm512_rows<const R: usize>(
        a: &[f32],
        i: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 32 <= n {
            let mut acc = [[_mm512_setzero_ps(); 2]; R];
            for kk in 0..k {
                let b0 = _mm512_loadu_ps(bp.add(kk * n + j));
                let b1 = _mm512_loadu_ps(bp.add(kk * n + j + 16));
                for r in 0..R {
                    let c = _mm512_set1_ps(*ap.add((i + r) * k + kk));
                    acc[r][0] = _mm512_fmadd_ps(c, b0, acc[r][0]);
                    acc[r][1] = _mm512_fmadd_ps(c, b1, acc[r][1]);
                }
            }
            for r in 0..R {
                _mm512_storeu_ps(op.add((i + r) * n + j), acc[r][0]);
                _mm512_storeu_ps(op.add((i + r) * n + j + 16), acc[r][1]);
            }
            j += 32;
        }
        while j < n {
            let w = (n - j).min(16);
            let m = mask16(w);
            let mut acc = [_mm512_setzero_ps(); R];
            for kk in 0..k {
                let bv = _mm512_maskz_loadu_ps(m, bp.add(kk * n + j));
                for r in 0..R {
                    let c = _mm512_set1_ps(*ap.add((i + r) * k + kk));
                    acc[r] = _mm512_fmadd_ps(c, bv, acc[r]);
                }
            }
            for r in 0..R {
                _mm512_mask_storeu_ps(op.add((i + r) * n + j), m, acc[r]);
            }
            j += 16;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_avx2(
        a: &[f32],
        rows: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i < rows {
            match rows - i {
                1 => mm256_rows::<1>(a, i, k, b, n, out),
                2 => mm256_rows::<2>(a, i, k, b, n, out),
                3 => mm256_rows::<3>(a, i, k, b, n, out),
                _ => mm256_rows::<4>(a, i, k, b, n, out),
            }
            i += (rows - i).min(4);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn mm256_rows<const R: usize>(
        a: &[f32],
        i: usize,
        k: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 16 <= n {
            let mut acc = [[_mm256_setzero_ps(); 2]; R];
            for kk in 0..k {
                let b0 = _mm256_loadu_ps(bp.add(kk * n + j));
                let b1 = _mm256_loadu_ps(bp.add(kk * n + j + 8));
                for r in 0..R {
                    let c = _mm256_set1_ps(*ap.add((i + r) * k + kk));
                    acc[r][0] = _mm256_fmadd_ps(c, b0, acc[r][0]);
                    acc[r][1] = _mm256_fmadd_ps(c, b1, acc[r][1]);
                }
            }
            for r in 0..R {
                _mm256_storeu_ps(op.add((i + r) * n + j), acc[r][0]);
                _mm256_storeu_ps(op.add((i + r) * n + j + 8), acc[r][1]);
            }
            j += 16;
        }
        while j < n {
            let w = (n - j).min(8);
            let m = mask8(w);
            let mut acc = [_mm256_setzero_ps(); R];
            for kk in 0..k {
                let bv = _mm256_maskload_ps(bp.add(kk * n + j), m);
                for r in 0..R {
                    let c = _mm256_set1_ps(*ap.add((i + r) * k + kk));
                    acc[r] = _mm256_fmadd_ps(c, bv, acc[r]);
                }
            }
            for r in 0..R {
                _mm256_maskstore_ps(op.add((i + r) * n + j), m, acc[r]);
            }
            j += 8;
        }
    }

    // ----------------------------------------------------------------
    // at_b: out rows (columns of a) in tiles of ≤8, loop over the m rows
    // ----------------------------------------------------------------

    #[target_feature(enable = "avx512f")]
    pub unsafe fn at_b_avx512(
        a: &[f32],
        m: usize,
        k: usize,
        i0: usize,
        rows: usize,
        g: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i < rows {
            match rows - i {
                1 => atb512_rows::<1>(a, m, k, i0 + i, i, g, n, out),
                2 => atb512_rows::<2>(a, m, k, i0 + i, i, g, n, out),
                3 => atb512_rows::<3>(a, m, k, i0 + i, i, g, n, out),
                4 => atb512_rows::<4>(a, m, k, i0 + i, i, g, n, out),
                5 => atb512_rows::<5>(a, m, k, i0 + i, i, g, n, out),
                6 => atb512_rows::<6>(a, m, k, i0 + i, i, g, n, out),
                7 => atb512_rows::<7>(a, m, k, i0 + i, i, g, n, out),
                _ => atb512_rows::<8>(a, m, k, i0 + i, i, g, n, out),
            }
            i += (rows - i).min(8);
        }
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn atb512_rows<const R: usize>(
        a: &[f32],
        m: usize,
        k: usize,
        col: usize,
        o: usize,
        g: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let (ap, gp, op) = (a.as_ptr(), g.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 32 <= n {
            let mut acc = [[_mm512_setzero_ps(); 2]; R];
            for r in 0..m {
                let g0 = _mm512_loadu_ps(gp.add(r * n + j));
                let g1 = _mm512_loadu_ps(gp.add(r * n + j + 16));
                for ri in 0..R {
                    let c = _mm512_set1_ps(*ap.add(r * k + col + ri));
                    acc[ri][0] = _mm512_fmadd_ps(c, g0, acc[ri][0]);
                    acc[ri][1] = _mm512_fmadd_ps(c, g1, acc[ri][1]);
                }
            }
            for ri in 0..R {
                _mm512_storeu_ps(op.add((o + ri) * n + j), acc[ri][0]);
                _mm512_storeu_ps(op.add((o + ri) * n + j + 16), acc[ri][1]);
            }
            j += 32;
        }
        while j < n {
            let w = (n - j).min(16);
            let mk = mask16(w);
            let mut acc = [_mm512_setzero_ps(); R];
            for r in 0..m {
                let gv = _mm512_maskz_loadu_ps(mk, gp.add(r * n + j));
                for ri in 0..R {
                    let c = _mm512_set1_ps(*ap.add(r * k + col + ri));
                    acc[ri] = _mm512_fmadd_ps(c, gv, acc[ri]);
                }
            }
            for ri in 0..R {
                _mm512_mask_storeu_ps(op.add((o + ri) * n + j), mk, acc[ri]);
            }
            j += 16;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn at_b_avx2(
        a: &[f32],
        m: usize,
        k: usize,
        i0: usize,
        rows: usize,
        g: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let mut i = 0;
        while i < rows {
            match rows - i {
                1 => atb256_rows::<1>(a, m, k, i0 + i, i, g, n, out),
                2 => atb256_rows::<2>(a, m, k, i0 + i, i, g, n, out),
                3 => atb256_rows::<3>(a, m, k, i0 + i, i, g, n, out),
                _ => atb256_rows::<4>(a, m, k, i0 + i, i, g, n, out),
            }
            i += (rows - i).min(4);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn atb256_rows<const R: usize>(
        a: &[f32],
        m: usize,
        k: usize,
        col: usize,
        o: usize,
        g: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let (ap, gp, op) = (a.as_ptr(), g.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 16 <= n {
            let mut acc = [[_mm256_setzero_ps(); 2]; R];
            for r in 0..m {
                let g0 = _mm256_loadu_ps(gp.add(r * n + j));
                let g1 = _mm256_loadu_ps(gp.add(r * n + j + 8));
                for ri in 0..R {
                    let c = _mm256_set1_ps(*ap.add(r * k + col + ri));
                    acc[ri][0] = _mm256_fmadd_ps(c, g0, acc[ri][0]);
                    acc[ri][1] = _mm256_fmadd_ps(c, g1, acc[ri][1]);
                }
            }
            for ri in 0..R {
                _mm256_storeu_ps(op.add((o + ri) * n + j), acc[ri][0]);
                _mm256_storeu_ps(op.add((o + ri) * n + j + 8), acc[ri][1]);
            }
            j += 16;
        }
        while j < n {
            let w = (n - j).min(8);
            let mk = mask8(w);
            let mut acc = [_mm256_setzero_ps(); R];
            for r in 0..m {
                let gv = _mm256_maskload_ps(gp.add(r * n + j), mk);
                for ri in 0..R {
                    let c = _mm256_set1_ps(*ap.add(r * k + col + ri));
                    acc[ri] = _mm256_fmadd_ps(c, gv, acc[ri]);
                }
            }
            for ri in 0..R {
                _mm256_maskstore_ps(op.add((o + ri) * n + j), mk, acc[ri]);
            }
            j += 8;
        }
    }

    // ----------------------------------------------------------------
    // a_bt: dot products, 8 output columns per pass
    // ----------------------------------------------------------------

    /// Fixed-order horizontal sum (lane-ascending), so reductions do not
    /// depend on shuffle idioms.
    #[target_feature(enable = "avx512f")]
    unsafe fn hsum512(v: __m512) -> f32 {
        let mut tmp = [0.0f32; 16];
        _mm512_storeu_ps(tmp.as_mut_ptr(), v);
        tmp.iter().sum()
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hsum256(v: __m256) -> f32 {
        let mut tmp = [0.0f32; 8];
        _mm256_storeu_ps(tmp.as_mut_ptr(), v);
        tmp.iter().sum()
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn a_bt_avx512(
        a_block: &[f32],
        rows: usize,
        l: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let (ap, bp, op) = (a_block.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        for i in 0..rows {
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = [_mm512_setzero_ps(); 8];
                let mut l0 = 0;
                while l0 < l {
                    let w = (l - l0).min(16);
                    let mk = mask16(w);
                    let av = _mm512_maskz_loadu_ps(mk, ap.add(i * l + l0));
                    for t in 0..8 {
                        let bv = _mm512_maskz_loadu_ps(mk, bp.add((j + t) * l + l0));
                        acc[t] = _mm512_fmadd_ps(av, bv, acc[t]);
                    }
                    l0 += 16;
                }
                for t in 0..8 {
                    *op.add(i * n + j + t) = hsum512(acc[t]);
                }
                j += 8;
            }
            while j < n {
                let mut acc = _mm512_setzero_ps();
                let mut l0 = 0;
                while l0 < l {
                    let w = (l - l0).min(16);
                    let mk = mask16(w);
                    let av = _mm512_maskz_loadu_ps(mk, ap.add(i * l + l0));
                    let bv = _mm512_maskz_loadu_ps(mk, bp.add(j * l + l0));
                    acc = _mm512_fmadd_ps(av, bv, acc);
                    l0 += 16;
                }
                *op.add(i * n + j) = hsum512(acc);
                j += 1;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn a_bt_avx2(
        a_block: &[f32],
        rows: usize,
        l: usize,
        b: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        let (ap, bp, op) = (a_block.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        for i in 0..rows {
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = [_mm256_setzero_ps(); 8];
                let mut l0 = 0;
                while l0 < l {
                    let w = (l - l0).min(8);
                    let mk = mask8(w);
                    let av = _mm256_maskload_ps(ap.add(i * l + l0), mk);
                    for t in 0..8 {
                        let bv = _mm256_maskload_ps(bp.add((j + t) * l + l0), mk);
                        acc[t] = _mm256_fmadd_ps(av, bv, acc[t]);
                    }
                    l0 += 8;
                }
                for t in 0..8 {
                    *op.add(i * n + j + t) = hsum256(acc[t]);
                }
                j += 8;
            }
            while j < n {
                let mut acc = _mm256_setzero_ps();
                let mut l0 = 0;
                while l0 < l {
                    let w = (l - l0).min(8);
                    let mk = mask8(w);
                    let av = _mm256_maskload_ps(ap.add(i * l + l0), mk);
                    let bv = _mm256_maskload_ps(bp.add(j * l + l0), mk);
                    acc = _mm256_fmadd_ps(av, bv, acc);
                    l0 += 8;
                }
                *op.add(i * n + j) = hsum256(acc);
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u32) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (s >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect()
    }

    fn matmul_naive(a: &[f32], m: usize, k: usize, b: &[f32], n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let c = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += c * b[kk * n + j];
                }
            }
        }
        out
    }

    fn assert_close(x: &[f32], y: &[f32], what: &str) {
        assert_eq!(x.len(), y.len(), "{what}: len");
        for (i, (a, b)) in x.iter().zip(y).enumerate() {
            assert!((a - b).abs() <= 1e-4, "{what}[{i}]: {a} vs {b}");
        }
    }

    /// Every level available on this machine must agree with the naive
    /// oracle on awkward shapes (tile tails in every dimension).
    #[test]
    fn available_levels_match_naive_oracle() {
        let shapes = [(1, 1, 1), (4, 8, 16), (5, 7, 9), (13, 33, 37), (70, 64, 50)];
        for &(m, k, n) in &shapes {
            let a = pseudo(m * k, 1 + m as u32);
            let b = pseudo(k * n, 2 + n as u32);
            let reference = matmul_naive(&a, m, k, &b, n);

            let mut got = vec![0.0f32; m * n];
            matmul_scalar(&a, m, k, &b, n, &mut got);
            // The scalar lane path preserves the oracle's per-element
            // accumulation order exactly.
            assert_eq!(got, reference, "scalar matmul {m}x{k}x{n}");

            #[cfg(target_arch = "x86_64")]
            {
                if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                    let mut got = vec![0.0f32; m * n];
                    unsafe { x86::matmul_avx2(&a, m, k, &b, n, &mut got) };
                    assert_close(&got, &reference, &format!("avx2 matmul {m}x{k}x{n}"));
                }
                if is_x86_feature_detected!("avx512f") {
                    let mut got = vec![0.0f32; m * n];
                    unsafe { x86::matmul_avx512(&a, m, k, &b, n, &mut got) };
                    assert_close(&got, &reference, &format!("avx512 matmul {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn at_b_levels_match_transposed_oracle() {
        for &(m, k, n) in &[(3, 2, 2), (16, 8, 8), (33, 13, 21), (128, 24, 17)] {
            let a = pseudo(m * k, 3);
            let g = pseudo(m * n, 4);
            // oracle: aᵀ computed explicitly, then naive matmul
            let mut at = vec![0.0f32; k * m];
            for r in 0..m {
                for i in 0..k {
                    at[i * m + r] = a[r * k + i];
                }
            }
            let reference = matmul_naive(&at, k, m, &g, n);

            let mut got = vec![0.0f32; k * n];
            at_b_scalar(&a, m, k, 0, k, &g, n, &mut got);
            assert_close(&got, &reference, &format!("scalar at_b {m}x{k}x{n}"));

            #[cfg(target_arch = "x86_64")]
            {
                if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                    let mut got = vec![0.0f32; k * n];
                    unsafe { x86::at_b_avx2(&a, m, k, 0, k, &g, n, &mut got) };
                    assert_close(&got, &reference, &format!("avx2 at_b {m}x{k}x{n}"));
                }
                if is_x86_feature_detected!("avx512f") {
                    let mut got = vec![0.0f32; k * n];
                    unsafe { x86::at_b_avx512(&a, m, k, 0, k, &g, n, &mut got) };
                    assert_close(&got, &reference, &format!("avx512 at_b {m}x{k}x{n}"));
                }
            }
        }
    }

    #[test]
    fn a_bt_levels_match_transposed_oracle() {
        for &(m, l, n) in &[(2, 3, 2), (9, 17, 11), (40, 64, 30)] {
            let a = pseudo(m * l, 5);
            let b = pseudo(n * l, 6);
            let mut bt = vec![0.0f32; l * n];
            for j in 0..n {
                for t in 0..l {
                    bt[t * n + j] = b[j * l + t];
                }
            }
            let reference = matmul_naive(&a, m, l, &bt, n);

            let mut got = vec![0.0f32; m * n];
            a_bt_scalar(&a, m, l, &b, n, &mut got);
            assert_close(&got, &reference, &format!("scalar a_bt {m}x{l}x{n}"));

            #[cfg(target_arch = "x86_64")]
            {
                if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                    let mut got = vec![0.0f32; m * n];
                    unsafe { x86::a_bt_avx2(&a, m, l, &b, n, &mut got) };
                    assert_close(&got, &reference, &format!("avx2 a_bt {m}x{l}x{n}"));
                }
                if is_x86_feature_detected!("avx512f") {
                    let mut got = vec![0.0f32; m * n];
                    unsafe { x86::a_bt_avx512(&a, m, l, &b, n, &mut got) };
                    assert_close(&got, &reference, &format!("avx512 a_bt {m}x{l}x{n}"));
                }
            }
        }
    }

    /// Block decomposition must not change per-element arithmetic: a
    /// row-block split of the public kernels reassembles to exactly the
    /// full-range result (the core of the thread-count determinism
    /// guarantee).
    #[test]
    fn row_blocks_are_bit_identical_to_full_range() {
        let (m, k, n) = (37, 19, 23);
        let a = pseudo(m * k, 7);
        let b = pseudo(k * n, 8);
        let mut full = vec![0.0f32; m * n];
        matmul_block(&a, m, k, &b, n, &mut full);
        let mut split = vec![0.0f32; m * n];
        let block = 5;
        let mut r0 = 0;
        while r0 < m {
            let r1 = (r0 + block).min(m);
            matmul_block(
                &a[r0 * k..r1 * k],
                r1 - r0,
                k,
                &b,
                n,
                &mut split[r0 * n..r1 * n],
            );
            r0 = r1;
        }
        assert_eq!(full, split, "matmul row-block split drifted");

        let g = pseudo(m * n, 9);
        let mut full = vec![0.0f32; k * n];
        matmul_at_b_block(&a, m, k, 0, k, &g, n, &mut full);
        let mut split = vec![0.0f32; k * n];
        let mut i0 = 0;
        while i0 < k {
            let i1 = (i0 + 3).min(k);
            matmul_at_b_block(&a, m, k, i0, i1 - i0, &g, n, &mut split[i0 * n..i1 * n]);
            i0 = i1;
        }
        assert_eq!(full, split, "at_b row-block split drifted");
    }

    #[test]
    fn check_available_accepts_supported_levels() {
        assert_eq!(check_available(Level::Scalar), Level::Scalar);
        assert!(!detect().name().is_empty());
    }
}
