//! Chunked node-state tracking for asynchronous propagation.
//!
//! Keeping all node states in one `n × d` tape variable makes every
//! level-group update clone the full matrix (scatter) and every message
//! gather allocate full-size gradients — O(n) work *per group* instead of
//! per node. [`StateTable`] instead records each group's output as its own
//! chunk and assembles the full matrix only once for readout, making one
//! propagation sweep O(total nodes) regardless of group count.

use moss_tensor::{Graph, Var};

/// Tracks which tape variable currently holds each node's state.
#[derive(Debug, Clone)]
pub struct StateTable {
    /// node → (chunk index, row within chunk).
    loc: Vec<(u32, u32)>,
    chunks: Vec<Var>,
}

impl StateTable {
    /// All nodes start in `initial` (an `n × d` variable), row = node index.
    pub fn new(initial: Var, n: usize) -> StateTable {
        StateTable {
            loc: (0..n).map(|i| (0, i as u32)).collect(),
            chunks: vec![initial],
        }
    }

    /// Gathers the current states of `nodes` into a `|nodes| × d` variable,
    /// splitting into per-chunk gathers and concatenating.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or any index is out of range.
    pub fn gather(&self, g: &mut Graph, nodes: &[usize]) -> Var {
        assert!(!nodes.is_empty(), "gather of nothing");
        let mut parts: Vec<Var> = Vec::new();
        let mut run_chunk = self.loc[nodes[0]].0;
        let mut run_rows: Vec<usize> = Vec::new();
        for &node in nodes {
            let (chunk, row) = self.loc[node];
            if chunk != run_chunk {
                parts.push(g.gather_rows(self.chunks[run_chunk as usize], &run_rows));
                run_rows.clear();
                run_chunk = chunk;
            }
            run_rows.push(row as usize);
        }
        parts.push(g.gather_rows(self.chunks[run_chunk as usize], &run_rows));
        if parts.len() == 1 {
            parts[0]
        } else {
            g.concat_rows(&parts)
        }
    }

    /// Records `new` (a `|nodes| × d` variable) as the fresh state of
    /// `nodes`.
    pub fn update(&mut self, new: Var, nodes: &[usize]) {
        let chunk = self.chunks.len() as u32;
        self.chunks.push(new);
        for (row, &node) in nodes.iter().enumerate() {
            self.loc[node] = (chunk, row as u32);
        }
    }

    /// Assembles the full `n × d` state matrix in node order.
    pub fn assemble(&self, g: &mut Graph) -> Var {
        let all: Vec<usize> = (0..self.loc.len()).collect();
        self.gather(g, &all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moss_tensor::Tensor;

    #[test]
    fn gather_and_update_track_rows() {
        let mut g = Graph::new();
        let init = g.input(Tensor::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]));
        let mut table = StateTable::new(init, 4);
        // Update nodes 1 and 3 with fresh values.
        let fresh = g.input(Tensor::from_rows(&[&[10.0], &[30.0]]));
        table.update(fresh, &[1, 3]);
        let full = table.assemble(&mut g);
        assert_eq!(
            g.value(full).data(),
            &[0.0, 10.0, 2.0, 30.0],
            "updated rows replaced, others intact"
        );
        // Gather mixes chunks correctly.
        let mix = table.gather(&mut g, &[3, 0, 1]);
        assert_eq!(g.value(mix).data(), &[30.0, 0.0, 10.0]);
    }

    #[test]
    fn consecutive_same_chunk_nodes_use_one_gather() {
        let mut g = Graph::new();
        let init = g.input(Tensor::zeros(8, 2));
        let table = StateTable::new(init, 8);
        let before = g.len();
        let _ = table.gather(&mut g, &[2, 3, 4]);
        // Single chunk → exactly one gather op, no concat.
        assert_eq!(g.len() - before, 1);
    }

    #[test]
    fn gradients_flow_through_table() {
        use moss_tensor::ParamStore;
        let mut store = ParamStore::new();
        let p = store.add("p", Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let mut g = Graph::new();
        let init = g.param(p, &store);
        let mut table = StateTable::new(init, 3);
        let picked = table.gather(&mut g, &[0, 2]);
        let doubled = g.scale(picked, 2.0);
        table.update(doubled, &[0, 2]);
        let full = table.assemble(&mut g);
        let loss = g.sum_all(full);
        let grads = g.backward(loss);
        // Nodes 0 and 2 contribute doubled, node 1 contributes once.
        assert_eq!(grads.get(p).unwrap().data(), &[2.0, 1.0, 2.0]);
    }
}
