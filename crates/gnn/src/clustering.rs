//! Adaptive node clustering for the aggregator design (paper Fig. 5).
//!
//! "MOSS first uses DBSCAN and hierarchical clustering to dynamically group
//! nodes based on their LLM-derived embeddings. DBSCAN clusters nodes based
//! on functional similarity […]. Hierarchical clustering further refines
//! these clusters by considering both functional similarities and structural
//! dependencies such as fan-in and fan-out."
//!
//! Each resulting cluster gets its own attention aggregator, so the final
//! cluster count is capped (every cluster costs parameters).

/// Clustering configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// DBSCAN neighborhood radius in embedding space.
    pub eps: f32,
    /// DBSCAN core-point threshold.
    pub min_pts: usize,
    /// Maximum aggregator count after hierarchical merging.
    pub max_clusters: usize,
    /// Weight of structural (fan-in/fan-out) distance in the merge metric.
    pub structure_weight: f32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            eps: 0.5,
            min_pts: 3,
            max_clusters: 6,
            structure_weight: 0.25,
        }
    }
}

/// A node-to-cluster assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster id per node, densely numbered `0..count`.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub count: usize,
}

/// Clusters nodes by embedding similarity (DBSCAN), then agglomeratively
/// merges clusters — using combined functional + structural centroid
/// distance — until at most `max_clusters` remain.
///
/// `embeddings[i]` is node *i*'s functional (LLM-derived) vector;
/// `structure[i]` is `(fan_in, fan_out)`.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
///
/// # Examples
///
/// ```
/// use moss_gnn::{cluster_nodes, ClusterConfig};
///
/// // Two tight groups far apart.
/// let embs = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
///     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
/// ];
/// let st = vec![(2.0, 1.0); 6];
/// let cfg = ClusterConfig { min_pts: 2, ..ClusterConfig::default() };
/// let c = cluster_nodes(&embs, &st, &cfg);
/// assert_eq!(c.assignment[0], c.assignment[1]);
/// assert_ne!(c.assignment[0], c.assignment[3]);
/// ```
pub fn cluster_nodes(
    embeddings: &[Vec<f32>],
    structure: &[(f32, f32)],
    config: &ClusterConfig,
) -> Clustering {
    assert_eq!(
        embeddings.len(),
        structure.len(),
        "one structure pair per embedding"
    );
    let n = embeddings.len();
    if n == 0 {
        return Clustering {
            assignment: Vec::new(),
            count: 0,
        };
    }

    // ---- phase 1: DBSCAN on embeddings ----
    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut next = 0usize;
    for i in 0..n {
        if labels[i].is_some() {
            continue;
        }
        let neighbors = region(embeddings, i, config.eps);
        if neighbors.len() < config.min_pts {
            continue; // provisional noise; may be claimed by a later cluster
        }
        let cluster = next;
        next += 1;
        labels[i] = Some(cluster);
        let mut frontier = neighbors;
        while let Some(j) = frontier.pop() {
            if labels[j].is_some() {
                continue;
            }
            labels[j] = Some(cluster);
            let nbrs = region(embeddings, j, config.eps);
            if nbrs.len() >= config.min_pts {
                frontier.extend(nbrs);
            }
        }
    }
    // Noise points: each becomes a singleton cluster (to be merged below).
    for l in labels.iter_mut() {
        if l.is_none() {
            *l = Some(next);
            next += 1;
        }
    }
    let mut assignment: Vec<usize> = labels.into_iter().map(|l| l.expect("assigned")).collect();
    let mut count = next;

    // ---- phase 2: agglomerative merge on (functional ⊕ structural) centroids ----
    while count > config.max_clusters.max(1) {
        let centroids = centroids_of(embeddings, structure, &assignment, count, config);
        // Find the closest centroid pair.
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f32::INFINITY);
        for i in 0..count {
            for j in (i + 1)..count {
                let d = sq_dist(&centroids[i], &centroids[j]);
                if d < best {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        // Merge bj into bi; renumber the last cluster into bj's slot.
        for a in assignment.iter_mut() {
            if *a == bj {
                *a = bi;
            } else if *a == count - 1 {
                *a = bj;
            }
        }
        count -= 1;
        if count == 1 {
            break;
        }
    }

    // Dense renumbering in first-appearance order for determinism.
    let mut remap: Vec<Option<usize>> = vec![None; count.max(1)];
    let mut dense = 0usize;
    for a in assignment.iter_mut() {
        let slot = &mut remap[*a];
        let id = match slot {
            Some(id) => *id,
            None => {
                let id = dense;
                dense += 1;
                *slot = Some(id);
                id
            }
        };
        *a = id;
    }
    Clustering {
        assignment,
        count: dense,
    }
}

fn region(embeddings: &[Vec<f32>], i: usize, eps: f32) -> Vec<usize> {
    let eps2 = eps * eps;
    (0..embeddings.len())
        .filter(|&j| j != i && sq_dist(&embeddings[i], &embeddings[j]) <= eps2)
        .collect()
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn centroids_of(
    embeddings: &[Vec<f32>],
    structure: &[(f32, f32)],
    assignment: &[usize],
    count: usize,
    config: &ClusterConfig,
) -> Vec<Vec<f32>> {
    let dim = embeddings[0].len();
    let mut sums = vec![vec![0.0f32; dim + 2]; count];
    let mut sizes = vec![0usize; count];
    for (i, &c) in assignment.iter().enumerate() {
        for (k, &e) in embeddings[i].iter().enumerate() {
            sums[c][k] += e;
        }
        sums[c][dim] += structure[i].0 * config.structure_weight;
        sums[c][dim + 1] += structure[i].1 * config.structure_weight;
        sizes[c] += 1;
    }
    for (s, &sz) in sums.iter_mut().zip(&sizes) {
        let d = sz.max(1) as f32;
        for v in s.iter_mut() {
            *v /= d;
        }
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f32, f32), n: usize, spread: f32) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                vec![
                    center.0 + spread * (i as f32 / n as f32 - 0.5),
                    center.1 + spread * ((i * 7 % n) as f32 / n as f32 - 0.5),
                ]
            })
            .collect()
    }

    #[test]
    fn separated_blobs_get_separate_clusters() {
        let mut embs = blob((0.0, 0.0), 10, 0.2);
        embs.extend(blob((10.0, 10.0), 10, 0.2));
        let st = vec![(2.0, 2.0); 20];
        let c = cluster_nodes(&embs, &st, &ClusterConfig::default());
        assert_eq!(c.count, 2);
        assert!(c.assignment[..10].iter().all(|&a| a == c.assignment[0]));
        assert!(c.assignment[10..].iter().all(|&a| a == c.assignment[10]));
        assert_ne!(c.assignment[0], c.assignment[10]);
    }

    #[test]
    fn noise_points_are_not_lost() {
        let mut embs = blob((0.0, 0.0), 8, 0.2);
        embs.push(vec![100.0, 100.0]); // lone outlier
        let st = vec![(1.0, 1.0); 9];
        let c = cluster_nodes(&embs, &st, &ClusterConfig::default());
        assert_eq!(c.assignment.len(), 9);
        assert!(c.count >= 2, "outlier keeps its own cluster");
    }

    #[test]
    fn merge_caps_cluster_count() {
        // 12 singleton-ish points far apart → merged down to the cap.
        let embs: Vec<Vec<f32>> = (0..12).map(|i| vec![i as f32 * 10.0, 0.0]).collect();
        let st = vec![(1.0, 1.0); 12];
        let cfg = ClusterConfig {
            max_clusters: 4,
            ..ClusterConfig::default()
        };
        let c = cluster_nodes(&embs, &st, &cfg);
        assert_eq!(c.count, 4);
        assert!(c.assignment.iter().all(|&a| a < 4));
    }

    #[test]
    fn structure_influences_merging() {
        // Two pairs with identical embeddings but very different fanout;
        // with a high structure weight the merge order respects structure.
        let embs = vec![vec![0.0], vec![30.0], vec![60.0], vec![90.0]];
        let st = vec![(0.0, 0.0), (0.0, 500.0), (0.0, 0.0), (0.0, 500.0)];
        let cfg = ClusterConfig {
            eps: 0.1,
            min_pts: 1,
            max_clusters: 2,
            structure_weight: 10.0,
        };
        let c = cluster_nodes(&embs, &st, &cfg);
        assert_eq!(c.count, 2);
        assert_eq!(c.assignment[0], c.assignment[2], "low-fanout merge");
        assert_eq!(c.assignment[1], c.assignment[3], "high-fanout merge");
    }

    #[test]
    fn empty_input_is_fine() {
        let c = cluster_nodes(&[], &[], &ClusterConfig::default());
        assert_eq!(c.count, 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn deterministic() {
        let embs = blob((1.0, 2.0), 15, 1.0);
        let st: Vec<(f32, f32)> = (0..15).map(|i| (i as f32, 1.0)).collect();
        let a = cluster_nodes(&embs, &st, &ClusterConfig::default());
        let b = cluster_nodes(&embs, &st, &ClusterConfig::default());
        assert_eq!(a, b);
    }
}
