//! The MOSS circuit GNN: per-cluster attention aggregators with edge
//! positional encoding (Fig. 5) and two-phase asynchronous temporal
//! propagation (Fig. 4b), with a mean-pooling readout (Fig. 4c).
//!
//! Ablation switches mirror the paper's model variants: the adaptive
//! attention aggregator can be replaced by a uniform mean aggregator, and
//! the turnaround (feedback) phase can be disabled.

use moss_tensor::{Graph, ParamId, ParamStore, Tensor, Var};

use crate::circuit::{CircuitGraph, Group};
use crate::state_table::StateTable;

/// GNN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GnnConfig {
    /// Input feature width (structural ⊕ LLM features).
    pub d_in: usize,
    /// Hidden state width.
    pub d_hidden: usize,
    /// Number of two-phase propagation rounds (paper: e.g. 10).
    pub iterations: usize,
    /// Number of dedicated aggregators (≥ max cluster id + 1).
    pub aggregators: usize,
    /// Attention-based adaptive aggregation (`false` = uniform mean — the
    /// "w/o adaptive aggregator" ablation).
    pub attention: bool,
    /// Run the turnaround (DFF feedback) phase (`false` = single-phase).
    pub two_phase: bool,
}

impl GnnConfig {
    /// A small configuration for CPU experiments.
    pub fn small(d_in: usize) -> GnnConfig {
        GnnConfig {
            d_in,
            d_hidden: 16,
            iterations: 4,
            aggregators: 6,
            attention: true,
            two_phase: true,
        }
    }
}

/// Per-aggregator attention parameters.
#[derive(Debug, Clone)]
struct AggParams {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    pin_bias: ParamId,
}

/// The circuit GNN model: parameter handles + forward pass builder.
#[derive(Debug, Clone)]
pub struct CircuitGnn {
    config: GnnConfig,
    w_in: ParamId,
    b_in: ParamId,
    aggs: Vec<AggParams>,
    // Gated (GRU-style) combinational update: z = σ(hWz + mUz + h0Vz + bz),
    // h' = (1−z)∘h + z∘tanh(hWh + mUh + h0Vh + bh).
    wz: ParamId,
    uz: ParamId,
    vz: ParamId,
    bz: ParamId,
    wh: ParamId,
    uh: ParamId,
    vh: ParamId,
    bh: ParamId,
    // Gated turnaround (DFF) update.
    wdz: ParamId,
    udz: ParamId,
    bdz: ParamId,
    wdh: ParamId,
    udh: ParamId,
    bdh: ParamId,
    w_ro: ParamId,
    b_ro: ParamId,
}

/// Forward-pass outputs.
#[derive(Debug, Clone, Copy)]
pub struct GnnOutput {
    /// Final node states (`node_count × d_hidden`).
    pub states: Var,
    /// Mean-pooled graph embedding (`1 × d_hidden`).
    pub graph_embedding: Var,
    /// Initial projected features (`node_count × d_hidden`).
    pub h0: Var,
}

impl CircuitGnn {
    /// Registers all GNN parameters into `store`.
    pub fn new(config: GnnConfig, store: &mut ParamStore, seed: u64) -> CircuitGnn {
        let d = config.d_hidden;
        let mk = |store: &mut ParamStore, name: String, r: usize, c: usize, s: u64| {
            store.get_or_add(name, Tensor::xavier(r, c, s))
        };
        let w_in = mk(store, "gnn.w_in".into(), config.d_in, d, seed);
        let b_in = store.get_or_add("gnn.b_in", Tensor::zeros(1, d));
        let mut aggs = Vec::with_capacity(config.aggregators);
        for a in 0..config.aggregators {
            let s = seed.wrapping_add(10 + a as u64 * 7);
            aggs.push(AggParams {
                wq: mk(store, format!("gnn.agg{a}.wq"), d, d, s),
                // Keys start at zero so every attention score is 0 and the
                // softmax is uniform: the adaptive aggregator *begins* as
                // mean aggregation and learns to deviate only where the
                // data supports it. Random K init hands each pin an
                // arbitrary weight before any training signal arrives.
                wk: store.get_or_add(format!("gnn.agg{a}.wk"), Tensor::zeros(d, d)),
                wv: mk(store, format!("gnn.agg{a}.wv"), d, d, s + 2),
                pin_bias: store.get_or_add(format!("gnn.agg{a}.pin_bias"), Tensor::zeros(1, 3)),
            });
        }
        CircuitGnn {
            wz: mk(store, "gnn.up.wz".into(), d, d, seed + 101),
            uz: mk(store, "gnn.up.uz".into(), d, d, seed + 102),
            vz: mk(store, "gnn.up.vz".into(), d, d, seed + 103),
            bz: store.get_or_add("gnn.up.bz", Tensor::zeros(1, d)),
            wh: mk(store, "gnn.up.wh".into(), d, d, seed + 107),
            uh: mk(store, "gnn.up.uh".into(), d, d, seed + 108),
            vh: mk(store, "gnn.up.vh".into(), d, d, seed + 109),
            bh: store.get_or_add("gnn.up.bh", Tensor::zeros(1, d)),
            wdz: mk(store, "gnn.dff.wz".into(), d, d, seed + 104),
            udz: mk(store, "gnn.dff.uz".into(), d, d, seed + 110),
            bdz: store.get_or_add("gnn.dff.bz", Tensor::zeros(1, d)),
            wdh: mk(store, "gnn.dff.wh".into(), d, d, seed + 105),
            udh: mk(store, "gnn.dff.uh".into(), d, d, seed + 111),
            bdh: store.get_or_add("gnn.dff.bh", Tensor::zeros(1, d)),
            w_ro: mk(store, "gnn.w_ro".into(), d, d, seed + 106),
            b_ro: store.get_or_add("gnn.b_ro", Tensor::zeros(1, d)),
            config,
            w_in,
            b_in,
            aggs,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &GnnConfig {
        &self.config
    }

    /// Every parameter id belonging to this model.
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut out = vec![
            self.w_in, self.b_in, self.wz, self.uz, self.vz, self.bz, self.wh, self.uh, self.vh,
            self.bh, self.wdz, self.udz, self.bdz, self.wdh, self.udh, self.bdh, self.w_ro,
            self.b_ro,
        ];
        for a in &self.aggs {
            out.extend([a.wq, a.wk, a.wv, a.pin_bias]);
        }
        out
    }

    /// Builds the full two-phase propagation forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the circuit's feature width differs from `d_in` or a
    /// cluster id exceeds the aggregator count.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, circuit: &CircuitGraph) -> GnnOutput {
        let mut out = self.forward_batch(g, store, &[circuit]);
        out.pop().expect("one circuit in, one output out")
    }

    /// Builds the forward pass for several circuits on one shared tape,
    /// loading every parameter exactly once.
    ///
    /// Every tensor op in the pass is row-independent with respect to the
    /// circuit it serves (matmul row `i` depends only on input row `i` and
    /// the full weight with a fixed k-summation order; gates, softmax, and
    /// gathers are row-wise), so each circuit's outputs here are
    /// bit-identical to a standalone [`CircuitGnn::forward`] call — the
    /// batching a serving layer does never changes an answer. The win is
    /// amortization: one tape, and one load per parameter instead of one
    /// per circuit.
    ///
    /// # Panics
    ///
    /// Panics if any circuit's feature width differs from `d_in` or a
    /// cluster id exceeds the aggregator count.
    pub fn forward_batch(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        circuits: &[&CircuitGraph],
    ) -> Vec<GnnOutput> {
        let w_in = g.param(self.w_in, store);
        let b_in = g.param(self.b_in, store);

        let up = GateWeights {
            wz: g.param(self.wz, store),
            uz: g.param(self.uz, store),
            vz: Some(g.param(self.vz, store)),
            bz: g.param(self.bz, store),
            wh: g.param(self.wh, store),
            uh: g.param(self.uh, store),
            vh: Some(g.param(self.vh, store)),
            bh: g.param(self.bh, store),
        };
        let dff_up = GateWeights {
            wz: g.param(self.wdz, store),
            uz: g.param(self.udz, store),
            vz: None,
            bz: g.param(self.bdz, store),
            wh: g.param(self.wdh, store),
            uh: g.param(self.udh, store),
            vh: None,
            bh: g.param(self.bdh, store),
        };

        // Per-aggregator weights loaded once per forward pass.
        let aggs: Vec<(Var, Var, Var, Var)> = self
            .aggs
            .iter()
            .map(|a| {
                (
                    g.param(a.wq, store),
                    g.param(a.wk, store),
                    g.param(a.wv, store),
                    g.param(a.pin_bias, store),
                )
            })
            .collect();

        let w_ro = g.param(self.w_ro, store);
        let b_ro = g.param(self.b_ro, store);

        circuits
            .iter()
            .map(|circuit| {
                assert_eq!(
                    circuit.features.cols(),
                    self.config.d_in,
                    "feature width mismatch"
                );
                let x = g.input(circuit.features.clone());
                let proj = g.matmul(x, w_in);
                let proj = g.add_row(proj, b_in);
                let h0 = g.tanh(proj);

                let mut table = StateTable::new(h0, circuit.node_count);
                for _ in 0..self.config.iterations {
                    // Phase 1: forward propagation PI → DFF inputs, level
                    // by level.
                    for group in &circuit.comb_schedule {
                        self.update_group(g, group, &mut table, h0, &aggs, &up);
                    }
                    // Phase 2: turnaround — DFF outputs capture their
                    // D-side state.
                    if self.config.two_phase {
                        for group in &circuit.dff_schedule {
                            let h_v = table.gather(g, &group.nodes);
                            let h_d = table.gather(g, &group.fanins[0]);
                            let new = gated_update(g, h_v, h_d, None, &dff_up);
                            table.update(new, &group.nodes);
                        }
                    }
                }

                let states = table.assemble(g);
                let pooled = g.mean_rows(states);
                let ro = g.matmul(pooled, w_ro);
                let ro = g.add_row(ro, b_ro);
                let graph_embedding = g.tanh(ro);

                GnnOutput {
                    states,
                    graph_embedding,
                    h0,
                }
            })
            .collect()
    }

    fn update_group(
        &self,
        g: &mut Graph,
        group: &Group,
        table: &mut StateTable,
        h0: Var,
        aggs: &[(Var, Var, Var, Var)],
        up: &GateWeights,
    ) {
        assert!(
            group.cluster < aggs.len(),
            "cluster {} exceeds aggregator count {}",
            group.cluster,
            aggs.len()
        );
        let d = self.config.d_hidden;
        let h_v = table.gather(g, &group.nodes);
        let h0_v = g.gather_rows(h0, &group.nodes);

        let msg = if group.arity == 0 {
            None
        } else {
            let (wq, wk, wv, pin_bias) = aggs[group.cluster];
            let pin_states: Vec<Var> = (0..group.arity)
                .map(|p| table.gather(g, &group.fanins[p]))
                .collect();
            // Fuse the per-pin projections into one stacked matmul: matmul
            // is row-independent, so projecting the row-concatenation and
            // gathering it back per pin is exactly the per-pin result while
            // handing the backend one large matrix whose row blocks the
            // persistent pool can spread across workers.
            let rows = group.nodes.len();
            let stacked_pins = g.concat_rows(&pin_states);
            let stacked_values = g.matmul(stacked_pins, wv);
            let pin_rows: Vec<Vec<usize>> = (0..group.arity)
                .map(|p| (p * rows..(p + 1) * rows).collect())
                .collect();
            let values: Vec<Var> = pin_rows
                .iter()
                .map(|idx| g.gather_rows(stacked_values, idx))
                .collect();
            if self.config.attention && group.arity > 1 {
                // Additive-free dot-product attention with edge positional
                // encoding: score_p = (q·k_p)/√d + bias_p.
                let q = g.matmul(h_v, wq);
                let ones = g.input(Tensor::full(d, 1, 1.0));
                let stacked_keys = g.matmul(stacked_pins, wk);
                let mut scores: Vec<Var> = Vec::with_capacity(group.arity);
                for idx in &pin_rows {
                    let k = g.gather_rows(stacked_keys, idx);
                    let qk = g.mul(q, k);
                    let s = g.matmul(qk, ones);
                    scores.push(g.scale(s, 1.0 / (d as f32).sqrt()));
                }
                let mut stacked = scores[0];
                for &s in &scores[1..] {
                    stacked = g.concat_cols(stacked, s);
                }
                let bias = g.slice_cols(pin_bias, 0, group.arity);
                let stacked = g.add_row(stacked, bias);
                let alpha = g.softmax_rows(stacked);
                let mut acc: Option<Var> = None;
                for (p, &v) in values.iter().enumerate() {
                    let a_p = g.slice_cols(alpha, p, 1);
                    let contrib = g.mul_col(v, a_p);
                    acc = Some(match acc {
                        Some(prev) => g.add(prev, contrib),
                        None => contrib,
                    });
                }
                acc
            } else {
                // Uniform mean aggregation (ablation path / single fanin).
                let mut acc = values[0];
                for &v in &values[1..] {
                    acc = g.add(acc, v);
                }
                Some(g.scale(acc, 1.0 / group.arity as f32))
            }
        };

        let msg = msg.unwrap_or(h0_v);
        let new = gated_update(g, h_v, msg, Some(h0_v), up);
        table.update(new, &group.nodes);
    }
}

/// Parameter handles for one gated update.
#[derive(Debug, Clone, Copy)]
struct GateWeights {
    wz: Var,
    uz: Var,
    vz: Option<Var>,
    bz: Var,
    wh: Var,
    uh: Var,
    vh: Option<Var>,
    bh: Var,
}

/// GRU-style gated state update:
/// `z = σ(hWz + mUz [+ h0Vz] + bz)`, `h̃ = tanh(hWh + mUh [+ h0Vh] + bh)`,
/// `h' = (1−z)∘h + z∘h̃` — the asynchronous-update family the DeepSeq line
/// established and MOSS adopts (§IV-B).
fn gated_update(g: &mut Graph, h: Var, m: Var, h0: Option<Var>, w: &GateWeights) -> Var {
    let (n, d) = g.value(h).shape();
    let mut zsum = {
        let a = g.matmul(h, w.wz);
        let b = g.matmul(m, w.uz);
        g.add(a, b)
    };
    if let (Some(h0), Some(vz)) = (h0, w.vz) {
        let c = g.matmul(h0, vz);
        zsum = g.add(zsum, c);
    }
    let zsum = g.add_row(zsum, w.bz);
    let z = g.sigmoid(zsum);
    let mut hsum = {
        let a = g.matmul(h, w.wh);
        let b = g.matmul(m, w.uh);
        g.add(a, b)
    };
    if let (Some(h0), Some(vh)) = (h0, w.vh) {
        let c = g.matmul(h0, vh);
        hsum = g.add(hsum, c);
    }
    let hsum = g.add_row(hsum, w.bh);
    let cand = g.tanh(hsum);
    let ones = g.input(Tensor::full(n, d, 1.0));
    let keep = g.sub(ones, z);
    let a = g.mul(keep, h);
    let b = g.mul(z, cand);
    g.add(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitGraph;
    use crate::clustering::Clustering;
    use moss_netlist::{CellKind, Netlist};
    use moss_tensor::Adam;

    fn ring_counter() -> Netlist {
        let mut nl = Netlist::new("ring");
        let a = nl.add_input("en");
        let f1 = nl.add_cell(CellKind::Dff, "r1", &[a]).unwrap();
        let inv = nl.add_cell(CellKind::Inv, "u1", &[f1]).unwrap();
        let x = nl.add_cell(CellKind::Xor2, "u2", &[inv, a]).unwrap();
        let f2 = nl.add_cell(CellKind::Dff, "r2", &[x]).unwrap();
        nl.add_output("q", f2);
        nl
    }

    fn graph_for(nl: &Netlist, d_in: usize) -> CircuitGraph {
        let n = nl.node_count();
        let mut features = Tensor::zeros(n, d_in);
        for i in 0..n {
            for j in 0..d_in {
                features.set(i, j, ((i * 31 + j * 7) % 13) as f32 / 13.0 - 0.5);
            }
        }
        let clusters = Clustering {
            assignment: (0..n).map(|i| i % 2).collect(),
            count: 2,
        };
        CircuitGraph::new(nl, features, clusters).unwrap()
    }

    #[test]
    fn forward_shapes() {
        let nl = ring_counter();
        let circuit = graph_for(&nl, 8);
        let mut store = ParamStore::new();
        let gnn = CircuitGnn::new(GnnConfig::small(8), &mut store, 3);
        let mut g = Graph::new();
        let out = gnn.forward(&mut g, &store, &circuit);
        assert_eq!(g.value(out.states).shape(), (nl.node_count(), 16));
        assert_eq!(g.value(out.graph_embedding).shape(), (1, 16));
    }

    #[test]
    fn two_phase_moves_dff_states() {
        let nl = ring_counter();
        let circuit = graph_for(&nl, 8);
        let mut store = ParamStore::new();
        let mut cfg = GnnConfig::small(8);
        let gnn = CircuitGnn::new(cfg, &mut store, 3);
        let mut g = Graph::new();
        let out = gnn.forward(&mut g, &store, &circuit);
        let dff = nl.find("r2").unwrap().index();
        let with_phase = g.value(out.states).row_slice(dff).to_vec();
        let h0 = g.value(out.h0).row_slice(dff).to_vec();
        assert_ne!(with_phase, h0, "turnaround updated the DFF");

        // Without the turnaround phase DFF states stay at h0.
        cfg.two_phase = false;
        let mut store2 = ParamStore::new();
        let gnn2 = CircuitGnn::new(cfg, &mut store2, 3);
        let mut g2 = Graph::new();
        let out2 = gnn2.forward(&mut g2, &store2, &circuit);
        assert_eq!(
            g2.value(out2.states).row_slice(dff),
            g2.value(out2.h0).row_slice(dff)
        );
    }

    #[test]
    fn attention_starts_uniform_then_diverges_with_nonzero_keys() {
        let nl = ring_counter();
        let circuit = graph_for(&nl, 8);
        let mut cfg = GnnConfig::small(8);
        let mut store = ParamStore::new();
        let gnn = CircuitGnn::new(cfg, &mut store, 3);
        let mut g = Graph::new();
        let attn_out = gnn.forward(&mut g, &store, &circuit);
        let attn_emb = g.value(attn_out.graph_embedding).clone();

        cfg.attention = false;
        let mut store2 = ParamStore::new();
        let gnn2 = CircuitGnn::new(cfg, &mut store2, 3);
        let mut g2 = Graph::new();
        let mean_out = gnn2.forward(&mut g2, &store2, &circuit);
        let mean_emb = g2.value(mean_out.graph_embedding).clone();
        // Zero-initialized keys ⇒ uniform attention ⇒ identical to the
        // mean aggregator at initialization…
        assert!(attn_emb.distance(&mean_emb) < 1e-6, "starts as mean");

        // …and different once the keys move off zero (set every
        // aggregator's keys; only clusters with multi-pin groups engage).
        for a in 0..6 {
            let wk = store.find(&format!("gnn.agg{a}.wk")).unwrap();
            store.set(wk, Tensor::xavier(16, 16, 99 + a as u64));
        }
        let mut g3 = Graph::new();
        let moved = gnn.forward(&mut g3, &store, &circuit);
        let moved_emb = g3.value(moved.graph_embedding).clone();
        assert!(
            moved_emb.distance(&mean_emb) > 1e-7,
            "keys engage attention"
        );
    }

    #[test]
    fn trainable_end_to_end() {
        let nl = ring_counter();
        let circuit = graph_for(&nl, 8);
        let mut store = ParamStore::new();
        let gnn = CircuitGnn::new(GnnConfig::small(8), &mut store, 5);
        let mut opt = Adam::new(5e-3);
        let target = Tensor::full(1, 16, 0.3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let mut g = Graph::new();
            let out = gnn.forward(&mut g, &store, &circuit);
            let loss = g.smooth_l1(out.graph_embedding, target.clone());
            last = g.value(loss).get(0, 0);
            first.get_or_insert(last);
            let grads = g.backward(loss);
            opt.step(&mut store, &grads);
        }
        let first = first.unwrap();
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn batched_forward_is_bit_identical_to_single() {
        let nl1 = ring_counter();
        let mut nl2 = Netlist::new("chain");
        let a = nl2.add_input("a");
        let b = nl2.add_input("b");
        let g1 = nl2.add_cell(CellKind::Nand2, "u1", &[a, b]).unwrap();
        let f = nl2.add_cell(CellKind::Dff, "r1", &[g1]).unwrap();
        let g2 = nl2.add_cell(CellKind::Xor2, "u2", &[f, b]).unwrap();
        nl2.add_output("y", g2);
        let c1 = graph_for(&nl1, 8);
        let c2 = graph_for(&nl2, 8);

        let mut store = ParamStore::new();
        let gnn = CircuitGnn::new(GnnConfig::small(8), &mut store, 21);

        let mut gb = Graph::new();
        let batched = gnn.forward_batch(&mut gb, &store, &[&c1, &c2]);
        assert_eq!(batched.len(), 2);

        for (circuit, out) in [(&c1, &batched[0]), (&c2, &batched[1])] {
            let mut gs = Graph::new();
            let single = gnn.forward(&mut gs, &store, circuit);
            assert_eq!(gb.value(out.states), gs.value(single.states));
            assert_eq!(
                gb.value(out.graph_embedding),
                gs.value(single.graph_embedding)
            );
        }
    }

    #[test]
    fn deterministic_forward() {
        let nl = ring_counter();
        let circuit = graph_for(&nl, 8);
        let mut store = ParamStore::new();
        let gnn = CircuitGnn::new(GnnConfig::small(8), &mut store, 9);
        let mut g1 = Graph::new();
        let o1 = gnn.forward(&mut g1, &store, &circuit);
        let mut g2 = Graph::new();
        let o2 = gnn.forward(&mut g2, &store, &circuit);
        assert_eq!(g1.value(o1.states), g2.value(o2.states));
    }
}
