//! # moss-gnn
//!
//! The graph-neural-network modality of the MOSS reproduction (§IV-B):
//!
//! - [`cluster_nodes`]: DBSCAN + agglomerative refinement over LLM-derived
//!   node embeddings and fan-in/fan-out structure — the *adaptive
//!   aggregator* assignment of Fig. 5;
//! - [`CircuitGraph`]: a netlist preprocessed into a level-ordered,
//!   cluster/arity-batched update schedule with DFFs as sequential
//!   boundaries (pseudo primary inputs/outputs);
//! - [`CircuitGnn`]: per-cluster attention aggregators with edge positional
//!   encoding, *two-phase asynchronous temporal propagation* (forward
//!   PI→DFF, then turnaround feedback; Fig. 4b), and mean-pooling readout
//!   (Fig. 4c). Ablation switches reproduce the paper's "w/o adaptive
//!   aggregator" and single-phase variants.
//!
//! ## Example
//!
//! ```
//! use moss_gnn::{CircuitGnn, CircuitGraph, Clustering, GnnConfig};
//! use moss_netlist::{CellKind, Netlist};
//! use moss_tensor::{Graph, ParamStore, Tensor};
//!
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let ff = nl.add_cell(CellKind::Dff, "r", &[a])?;
//! nl.add_output("q", ff);
//! let n = nl.node_count();
//! let clusters = Clustering { assignment: vec![0; n], count: 1 };
//! let circuit = CircuitGraph::new(&nl, Tensor::zeros(n, 4), clusters)?;
//!
//! let mut store = ParamStore::new();
//! let gnn = CircuitGnn::new(GnnConfig::small(4), &mut store, 1);
//! let mut g = Graph::new();
//! let out = gnn.forward(&mut g, &store, &circuit);
//! assert_eq!(g.value(out.graph_embedding).shape(), (1, 16));
//! # Ok::<(), moss_netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod clustering;
mod model;
mod state_table;

pub use circuit::{CircuitGraph, Group};
pub use clustering::{cluster_nodes, ClusterConfig, Clustering};
pub use model::{CircuitGnn, GnnConfig, GnnOutput};
pub use state_table::StateTable;
