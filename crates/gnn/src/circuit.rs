//! Preprocessed circuit structure for GNN propagation: the level-ordered
//! update schedule (paper Fig. 4) grouped by (level, cluster, arity).

use moss_netlist::{Levelization, Netlist, NetlistError, NodeId};
use moss_tensor::Tensor;

use crate::clustering::Clustering;

/// One batched update group: nodes at the same level, in the same cluster,
/// with the same fanin arity, so a single set of matrix ops updates all of
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Aggregator (cluster) id.
    pub cluster: usize,
    /// Fanin count of every node in this group (0–3).
    pub arity: usize,
    /// Node indices updated by this group.
    pub nodes: Vec<usize>,
    /// Per-pin fanin node indices: `fanins[p][i]` drives pin `p` of
    /// `nodes[i]`. Only the first `arity` entries are meaningful.
    pub fanins: [Vec<usize>; 3],
}

/// A netlist prepared for propagation: features, clustering, and the
/// two-phase schedule.
#[derive(Debug, Clone)]
pub struct CircuitGraph {
    /// Node feature matrix (`node_count × d_in`).
    pub features: Tensor,
    /// Node-to-aggregator assignment.
    pub clusters: Clustering,
    /// Combinational groups in ascending level order (forward phase).
    pub comb_schedule: Vec<Group>,
    /// DFF groups (turnaround phase).
    pub dff_schedule: Vec<Group>,
    /// Indices of DFF nodes, ascending.
    pub dff_nodes: Vec<usize>,
    /// Total node count (states matrix height).
    pub node_count: usize,
}

impl CircuitGraph {
    /// Builds the propagation schedule.
    ///
    /// `features` must have one row per netlist node; `clusters` must assign
    /// every node.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist is invalid or combinationally cyclic.
    ///
    /// # Panics
    ///
    /// Panics if `features`/`clusters` sizes do not match the netlist.
    pub fn new(
        netlist: &Netlist,
        features: Tensor,
        clusters: Clustering,
    ) -> Result<CircuitGraph, NetlistError> {
        let n = netlist.node_count();
        assert_eq!(features.rows(), n, "one feature row per node");
        assert_eq!(clusters.assignment.len(), n, "one cluster per node");
        let levels = Levelization::of(netlist)?;

        // Forward phase: combinational cells in level order, grouped by
        // (level, cluster, arity). Primary outputs ride along as arity-1
        // "wire" updates at their driver's level + 1.
        let mut keyed: Vec<(u32, usize, usize, NodeId)> = Vec::new();
        for &id in levels.topo_combinational() {
            let arity = netlist.fanins(id).len().min(3);
            keyed.push((levels.level(id), clusters.assignment[id.index()], arity, id));
        }
        for id in netlist.primary_outputs() {
            keyed.push((levels.level(id) + 1, clusters.assignment[id.index()], 1, id));
        }
        keyed.sort();
        let mut comb_schedule: Vec<Group> = Vec::new();
        let mut last_key: Option<(u32, usize, usize)> = None;
        for (level, cluster, arity, id) in keyed {
            if last_key != Some((level, cluster, arity)) {
                comb_schedule.push(Group {
                    cluster,
                    arity,
                    nodes: Vec::new(),
                    fanins: [Vec::new(), Vec::new(), Vec::new()],
                });
                last_key = Some((level, cluster, arity));
            }
            let g = comb_schedule.last_mut().expect("just pushed");
            g.nodes.push(id.index());
            for (p, &f) in netlist.fanins(id).iter().take(3).enumerate() {
                g.fanins[p].push(f.index());
            }
        }

        // Turnaround phase: DFFs grouped by cluster (all arity 1).
        let dff_nodes: Vec<usize> = netlist.dffs().iter().map(|d| d.index()).collect();
        let mut dff_schedule: Vec<Group> = Vec::new();
        let mut dff_sorted: Vec<(usize, NodeId)> = netlist
            .dffs()
            .into_iter()
            .map(|d| (clusters.assignment[d.index()], d))
            .collect();
        dff_sorted.sort();
        for (cluster, id) in dff_sorted {
            if dff_schedule.last().map(|g| g.cluster) != Some(cluster) {
                dff_schedule.push(Group {
                    cluster,
                    arity: 1,
                    nodes: Vec::new(),
                    fanins: [Vec::new(), Vec::new(), Vec::new()],
                });
            }
            let g = dff_schedule.last_mut().expect("just pushed");
            g.nodes.push(id.index());
            g.fanins[0].push(netlist.fanins(id)[0].index());
        }

        Ok(CircuitGraph {
            features,
            clusters,
            comb_schedule,
            dff_schedule,
            dff_nodes,
            node_count: n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster_nodes, ClusterConfig};
    use moss_netlist::CellKind;

    fn pipeline_netlist() -> Netlist {
        let mut nl = Netlist::new("p");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_cell(CellKind::Nand2, "u1", &[a, b]).unwrap();
        let g2 = nl.add_cell(CellKind::Inv, "u2", &[g1]).unwrap();
        let ff = nl.add_cell(CellKind::Dff, "r0", &[g2]).unwrap();
        let g3 = nl.add_cell(CellKind::Xor2, "u3", &[ff, a]).unwrap();
        let ff2 = nl.add_cell(CellKind::Dff, "r1", &[g3]).unwrap();
        nl.add_output("y", ff2);
        nl
    }

    fn trivial_clustering(n: usize) -> Clustering {
        Clustering {
            assignment: vec![0; n],
            count: 1,
        }
    }

    #[test]
    fn schedule_covers_all_comb_cells_and_outputs() {
        let nl = pipeline_netlist();
        let n = nl.node_count();
        let cg = CircuitGraph::new(&nl, Tensor::zeros(n, 4), trivial_clustering(n)).unwrap();
        let scheduled: usize = cg.comb_schedule.iter().map(|g| g.nodes.len()).sum();
        // 3 comb cells + 1 primary output.
        assert_eq!(scheduled, 4);
        assert_eq!(cg.dff_nodes.len(), 2);
        let dff_scheduled: usize = cg.dff_schedule.iter().map(|g| g.nodes.len()).sum();
        assert_eq!(dff_scheduled, 2);
    }

    #[test]
    fn groups_respect_level_order() {
        let nl = pipeline_netlist();
        let n = nl.node_count();
        let cg = CircuitGraph::new(&nl, Tensor::zeros(n, 4), trivial_clustering(n)).unwrap();
        // u1 (level 1) must be scheduled before u2 (level 2).
        let pos = |name: &str| {
            let id = nl.find(name).unwrap().index();
            cg.comb_schedule
                .iter()
                .position(|g| g.nodes.contains(&id))
                .unwrap()
        };
        assert!(pos("u1") < pos("u2"));
    }

    #[test]
    fn fanins_align_with_nodes() {
        let nl = pipeline_netlist();
        let n = nl.node_count();
        let cg = CircuitGraph::new(&nl, Tensor::zeros(n, 4), trivial_clustering(n)).unwrap();
        for g in &cg.comb_schedule {
            for p in 0..g.arity {
                assert_eq!(g.fanins[p].len(), g.nodes.len(), "pin {p} aligned");
            }
        }
    }

    #[test]
    fn clustered_groups_split_by_cluster() {
        let nl = pipeline_netlist();
        let n = nl.node_count();
        // Cluster by arbitrary two-group embedding.
        let embs: Vec<Vec<f32>> = (0..n)
            .map(|i| vec![if i % 2 == 0 { 0.0 } else { 10.0 }])
            .collect();
        let st = vec![(1.0, 1.0); n];
        let clusters = cluster_nodes(
            &embs,
            &st,
            &ClusterConfig {
                eps: 0.5,
                min_pts: 1,
                max_clusters: 4,
                structure_weight: 0.0,
            },
        );
        let cg = CircuitGraph::new(&nl, Tensor::zeros(n, 4), clusters.clone()).unwrap();
        for g in &cg.comb_schedule {
            for &node in &g.nodes {
                assert_eq!(clusters.assignment[node], g.cluster);
            }
        }
    }
}
