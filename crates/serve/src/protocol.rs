//! The length-prefixed wire protocol (dep-free, `std::net`).
//!
//! Every frame, in both directions, is
//!
//! ```text
//! ┌──────────────┬──────────┬─────────────────────┐
//! │ len: u32 LE  │ op: u8   │ payload: len bytes  │
//! └──────────────┴──────────┴─────────────────────┘
//! ```
//!
//! where `len` counts the payload only and is capped at [`MAX_FRAME`].
//! Client→server opcodes: [`OP_EMBED`] (payload = structural Verilog,
//! UTF-8), [`OP_STATS`] (empty payload), [`OP_RELOAD`] (UTF-8 checkpoint
//! path, or empty for the configured watch path), and [`OP_HEALTH`]
//! (empty payload). Server→client: [`OP_EMBEDDING`] (`u32 LE` dimension
//! then that many `f32 LE` values), [`OP_ERROR`] (`u16 LE` [`ErrorCode`]
//! then a UTF-8 message), [`OP_STATS_REPLY`] (UTF-8 JSON),
//! [`OP_RELOAD_REPLY`] (`u64 LE` new generation), and
//! [`OP_HEALTH_REPLY`] (UTF-8 JSON).
//!
//! Malformed input never panics the reader: a truncated frame or transport
//! error surfaces as [`FrameReadError::Io`], an absurd length prefix as
//! [`FrameReadError::Oversized`] *before* any allocation, and a clean
//! close at a frame boundary as `Ok(None)`.

use std::io::{self, ErrorKind, Read, Write};

/// Maximum payload bytes per frame (8 MiB — a multi-hundred-thousand-cell
/// netlist; anything larger is rejected before allocation).
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Client→server: embed the structural-Verilog payload.
pub const OP_EMBED: u8 = 0x01;
/// Client→server: return server statistics.
pub const OP_STATS: u8 = 0x02;
/// Client→server: hot-reload the serving checkpoint. The payload is a
/// UTF-8 checkpoint path, or empty to reload the server's configured
/// watch path (`MOSS_SERVE_CKPT`). The swap is validated first; a bad
/// checkpoint is rejected with [`ErrorCode::Reload`] and the previous
/// generation keeps serving.
pub const OP_RELOAD: u8 = 0x03;
/// Client→server: return liveness/health (empty payload).
pub const OP_HEALTH: u8 = 0x04;
/// Server→client: an embedding (`u32 LE` dim + dim × `f32 LE`).
pub const OP_EMBEDDING: u8 = 0x81;
/// Server→client: a typed error (`u16 LE` code + UTF-8 message).
pub const OP_ERROR: u8 = 0x82;
/// Server→client: statistics as UTF-8 JSON.
pub const OP_STATS_REPLY: u8 = 0x83;
/// Server→client: reload succeeded (`u64 LE` new generation number).
pub const OP_RELOAD_REPLY: u8 = 0x84;
/// Server→client: health snapshot as UTF-8 JSON (uptime, generation,
/// reload and respawn counters, queue depth).
pub const OP_HEALTH_REPLY: u8 = 0x85;

/// Typed error categories carried in [`OP_ERROR`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame itself was malformed (bad opcode, non-UTF-8 payload,
    /// oversized length prefix).
    BadFrame = 1,
    /// The netlist payload failed to parse as structural Verilog.
    Parse = 2,
    /// The netlist parsed but cannot be embedded (e.g. a combinational
    /// cycle).
    Graph = 3,
    /// A deterministic `moss-faults` injection (`MOSS_FAULTS=serve:…`)
    /// poisoned this request — a rehearsed failure, not an organic one.
    Fault = 4,
    /// The scheduler queue is full; retry later.
    Overload = 5,
    /// The server failed internally (e.g. a forward pass panicked).
    Internal = 6,
    /// A checkpoint hot-reload was rejected (corrupt, truncated,
    /// shape-mismatched, or non-finite checkpoint; or the file could not
    /// be read). The previous generation is still serving.
    Reload = 7,
}

impl ErrorCode {
    /// The wire value.
    pub fn as_u16(self) -> u16 {
        self as u16
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Opcode byte.
    pub op: u8,
    /// Payload bytes (`len` of them).
    pub payload: Vec<u8>,
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameReadError {
    /// Transport failure: disconnect mid-frame, read timeout, reset.
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`] (the stream is considered
    /// desynchronized and must be dropped after an optional error frame).
    Oversized(u64),
}

/// Reads one frame. Returns `Ok(None)` on a clean close at a frame
/// boundary; any mid-frame close, timeout, or transport error is
/// [`FrameReadError::Io`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, FrameReadError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameReadError::Io(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let len = u64::from(u32::from_le_bytes(len_buf));
    if len > MAX_FRAME as u64 {
        return Err(FrameReadError::Oversized(len));
    }
    let mut op = [0u8; 1];
    r.read_exact(&mut op).map_err(FrameReadError::Io)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(FrameReadError::Io)?;
    Ok(Some(Frame { op: op[0], payload }))
}

/// Writes one frame and flushes.
///
/// # Errors
///
/// Propagates transport errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame<W: Write>(w: &mut W, op: u8, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidInput,
            "frame payload exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&[op])?;
    w.write_all(payload)?;
    w.flush()
}

/// Encodes an [`OP_ERROR`] payload.
pub fn error_payload(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + message.len());
    out.extend_from_slice(&code.as_u16().to_le_bytes());
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes an [`OP_ERROR`] payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Option<(u16, String)> {
    if payload.len() < 2 {
        return None;
    }
    let code = u16::from_le_bytes([payload[0], payload[1]]);
    let message = String::from_utf8_lossy(&payload[2..]).into_owned();
    Some((code, message))
}

/// Encodes an [`OP_EMBEDDING`] payload.
pub fn embedding_payload(embedding: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 * embedding.len());
    out.extend_from_slice(&(embedding.len() as u32).to_le_bytes());
    for v in embedding {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encodes an [`OP_RELOAD_REPLY`] payload.
pub fn reload_payload(generation: u64) -> Vec<u8> {
    generation.to_le_bytes().to_vec()
}

/// Decodes an [`OP_RELOAD_REPLY`] payload; `None` on a wrong length.
pub fn decode_reload(payload: &[u8]) -> Option<u64> {
    let bytes: [u8; 8] = payload.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

/// Decodes an [`OP_EMBEDDING`] payload; `None` if the dimension header
/// disagrees with the payload length.
pub fn decode_embedding(payload: &[u8]) -> Option<Vec<f32>> {
    if payload.len() < 4 {
        return None;
    }
    let dim = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
    let body = &payload[4..];
    if body.len() != dim * 4 {
        return None;
    }
    Some(
        body.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_EMBED, b"module m (); endmodule").unwrap();
        let f = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(f.op, OP_EMBED);
        assert_eq!(f.payload, b"module m (); endmodule");
    }

    #[test]
    fn clean_close_is_none_and_midframe_close_is_io() {
        assert!(matches!(read_frame(&mut Cursor::new(&[])), Ok(None)));
        // Partial header.
        assert!(matches!(
            read_frame(&mut Cursor::new(&[1u8, 0])),
            Err(FrameReadError::Io(_))
        ));
        // Header promises more payload than arrives.
        let mut buf = Vec::new();
        write_frame(&mut buf, OP_EMBED, b"abcdef").unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameReadError::Io(_))
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.push(OP_EMBED);
        match read_frame(&mut Cursor::new(&buf)) {
            Err(FrameReadError::Oversized(n)) => assert_eq!(n, u64::from(u32::MAX)),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn embedding_payload_round_trips() {
        let emb = [0.25f32, -1.5, 3.75e-5, f32::MIN_POSITIVE];
        let p = embedding_payload(&emb);
        assert_eq!(decode_embedding(&p).unwrap(), emb);
        assert_eq!(decode_embedding(&p[..p.len() - 1]), None);
        assert_eq!(decode_embedding(&[]), None);
    }

    #[test]
    fn reload_payload_round_trips() {
        assert_eq!(decode_reload(&reload_payload(0)), Some(0));
        assert_eq!(decode_reload(&reload_payload(u64::MAX)), Some(u64::MAX));
        assert_eq!(decode_reload(&[1, 2, 3]), None);
        assert_eq!(decode_reload(&[]), None);
    }

    #[test]
    fn error_payload_round_trips() {
        let p = error_payload(ErrorCode::Parse, "bad verilog");
        assert_eq!(decode_error(&p).unwrap(), (2, "bad verilog".to_string()));
        assert_eq!(decode_error(&[1]), None);
    }
}
