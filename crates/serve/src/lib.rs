//! # moss-serve
//!
//! A micro-batching TCP embedding server over MOSS checkpoints.
//!
//! A [`Server`] loads a MOSSCKP2 checkpoint once (as a
//! [`moss::NetlistEmbedder`]), listens on a plain `std::net` socket, and
//! answers length-prefixed requests carrying structural Verilog with
//! alignment-space embeddings. Concurrent requests are micro-batched:
//! the scheduler collects jobs for a short window, runs one fused GNN
//! forward over the whole batch, and fans the results back — with the
//! guarantee (pinned by the integration tests) that batched, cached,
//! and direct-forward embeddings are **bit-identical**.
//!
//! The server is **self-healing**: checkpoints hot-reload through a
//! validated `RELOAD` op (or an `MOSS_SERVE_CKPT` mtime watcher) with
//! atomic generation swap and rollback-on-rejection, panicked core
//! threads are respawned under a bounded budget, and a `HEALTH` op
//! exposes uptime/generation/respawn/queue-depth. On the client side,
//! [`RetryingClient`] + [`RetryPolicy`] add bounded connects, read
//! deadlines, and jittered-backoff retries for connect failures, EOF,
//! and `Overload` sheds — never for `Parse`/`Graph` rejections. The
//! whole stack is soak-tested by `cargo xtask chaos-check` under
//! randomized `MOSS_FAULTS` schedules (including the `net` site's
//! partial writes, disconnects, and stalls).
//!
//! ```no_run
//! use moss_serve::{Client, Reply, ServeConfig, Server};
//!
//! let embedder = moss::NetlistEmbedder::from_checkpoint_file("model.mossckp")?;
//! let server = Server::start("127.0.0.1:0", embedder, ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! if let Reply::Embedding(e) = client.embed("module t (input a, output y);
//!                                              wire n_u1;
//!                                              INV_X1 u1 (.A(a), .Y(n_u1));
//!                                              assign y = n_u1;
//!                                            endmodule")? {
//!     println!("dim = {}", e.len());
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod client;
pub mod protocol;
mod reload;
mod server;

pub use client::{Client, ReloadOutcome, Reply, RetryPolicy, RetryingClient};
pub use server::{ServeConfig, ServeStats, Server, PANIC_MARKER};

use std::io;
use std::path::Path;

use moss::{MossConfig, MossVariant};
use moss_llm::{EncoderConfig, TextEncoder};
use moss_tensor::ParamStore;

/// Writes a small deterministically-initialized MOSSCKP2 checkpoint —
/// enough model to serve real embeddings without a training run. Used by
/// `--demo`, the integration tests, and the load generator.
///
/// # Errors
///
/// Propagates checkpoint I/O errors.
pub fn write_demo_checkpoint<P: AsRef<Path>>(path: P) -> io::Result<()> {
    let config = MossConfig::small(16, MossVariant::Full);
    let mut store = ParamStore::new();
    // Materialize the encoder parameters so the checkpoint carries the
    // exact cell-kind embedding tables the embedder will rebuild from.
    let _encoder = TextEncoder::new(
        EncoderConfig {
            d_model: 16,
            ..EncoderConfig::tiny()
        },
        &mut store,
        1,
    );
    let _model = moss::MossModel::new(config, &mut store, 2);
    moss::save_checkpoint_file(path, &config, &store)
}
