//! The `moss-serve` daemon: load a checkpoint, bind a socket, serve
//! embeddings until killed.
//!
//! ```text
//! moss-serve --checkpoint model.mossckp [--listen 127.0.0.1:7744]
//! moss-serve --demo                     # deterministic demo weights
//! ```

use std::process::ExitCode;

use moss::NetlistEmbedder;
use moss_serve::{ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!(
        "usage: moss-serve (--checkpoint PATH | --demo) [--listen ADDR]\n\
         \n\
         options:\n\
         \x20 --checkpoint PATH   MOSSCKP2 checkpoint to serve\n\
         \x20 --demo              serve deterministic demo weights instead\n\
         \x20 --listen ADDR       bind address (default 127.0.0.1:7744)\n\
         \n\
         protocol ops: EMBED, STATS, HEALTH (liveness JSON), RELOAD (validated\n\
         checkpoint hot-swap; empty payload reloads MOSS_SERVE_CKPT, which\n\
         defaults to the --checkpoint path)\n\
         \n\
         tuning (environment): MOSS_SERVE_BATCH_MS, MOSS_SERVE_MAX_BATCH,\n\
         MOSS_SERVE_CACHE_CAP, MOSS_SERVE_QUEUE_CAP, MOSS_SERVE_READ_TIMEOUT_MS,\n\
         MOSS_SERVE_CKPT, MOSS_SERVE_WATCH_MS (mtime-poll hot-reload, 0 = off),\n\
         MOSS_SERVE_RESPAWN_BUDGET"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut checkpoint: Option<String> = None;
    let mut demo = false;
    let mut listen = "127.0.0.1:7744".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--checkpoint" => match args.next() {
                Some(p) => checkpoint = Some(p),
                None => return usage(),
            },
            "--demo" => demo = true,
            "--listen" => match args.next() {
                Some(a) => listen = a,
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let mut ckpt_for_reload: Option<String> = None;
    let embedder = match (checkpoint, demo) {
        (Some(path), false) => match NetlistEmbedder::from_checkpoint_file(&path) {
            Ok(e) => {
                ckpt_for_reload = Some(path);
                e
            }
            Err(e) => {
                eprintln!("moss-serve: cannot load {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, true) => {
            let dir = std::env::temp_dir().join(format!("moss-serve-demo-{}", std::process::id()));
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("moss-serve: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let path = dir.join("demo.mossckp");
            if let Err(e) = moss_serve::write_demo_checkpoint(&path) {
                eprintln!("moss-serve: cannot write demo checkpoint: {e}");
                return ExitCode::FAILURE;
            }
            match NetlistEmbedder::from_checkpoint_file(&path) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("moss-serve: cannot load demo checkpoint: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => return usage(),
    };

    let _obs = moss_obs::session();
    let mut config = ServeConfig::from_env();
    // An empty-payload RELOAD (and the mtime watcher) should "reload the
    // checkpoint I was started on" unless MOSS_SERVE_CKPT says otherwise.
    if config.ckpt_path.is_none() {
        config.ckpt_path = ckpt_for_reload.map(std::path::PathBuf::from);
    }
    let server = match Server::start(&listen, embedder, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("moss-serve: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("moss-serve: listening on {}", server.addr());
    // Serve until killed; the accept/scheduler threads do all the work
    // and `server` must stay alive (its Drop shuts them down).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
